//! Deterministic parallel trial execution with per-trial fault isolation.
//!
//! Two engines live here:
//!
//! * [`parallel_try_map`] — the default path: scoped workers, an atomic
//!   claiming cursor, per-trial `catch_unwind`. Zero supervision
//!   overhead, used whenever no [`RunPolicy`] is active, and guaranteed
//!   bit-identical to the single-threaded run.
//! * [`supervised_try_map`] — the self-healing path: the same claiming
//!   discipline plus a supervisor that **retries** failed trials with
//!   exponential backoff (the caller re-derives each attempt's seed
//!   deterministically from the attempt number) and a **watchdog** that
//!   abandons trials exceeding a deadline, recording them as structured
//!   [`TrialFault::Timeout`]s instead of hanging the sweep. A watchdog
//!   abort never cancels other work: the queue keeps draining, every
//!   completed trial is kept, and the sweep layer still flushes its
//!   checkpoint entry, so a timeout never loses finished results.
//!
//! Both engines parallelize *across* trials. Parallelism *inside* one
//! survey — row-band tiles of a single big lattice — lives in
//! `abp-survey`'s tile scheduler (`crates/survey/src/tiles.rs`), which
//! mirrors [`parallel_try_map`]'s claiming-and-panic discipline; it is
//! re-implemented there rather than shared because `abp-sim` depends on
//! `abp-survey`, not the other way around.

use std::collections::{HashMap, HashSet, VecDeque};
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Resolves a thread-count setting: `0` means one thread per available
/// core.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// A trial that panicked instead of producing a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// The task index passed to the closure.
    pub index: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads are
    /// preserved; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trial {} panicked: {}", self.index, self.message)
    }
}

/// The outcome of a fault-tolerant map: every task either succeeded or is
/// accounted for in `failures`. Both vectors are in ascending index order.
#[derive(Debug)]
pub struct TryMapOutcome<T> {
    /// `(index, value)` for every task that completed.
    pub successes: Vec<(usize, T)>,
    /// Every task whose closure panicked.
    pub failures: Vec<TrialFailure>,
}

impl<T> TryMapOutcome<T> {
    /// Discards indices and returns the surviving values in index order.
    pub fn into_values(self) -> Vec<T> {
        self.successes.into_iter().map(|(_, v)| v).collect()
    }

    /// Whether every task completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(0..n)` across `threads` workers, catching per-task panics so a
/// single bad trial cannot abort a long sweep.
///
/// Work is claimed dynamically (an atomic cursor), so stragglers balance;
/// results are reassembled by index, so the output — and therefore every
/// downstream statistic — is **independent of the thread count and
/// scheduling**. Each task must derive its own randomness from its index.
pub fn parallel_try_map<T, F>(n: usize, threads: usize, f: F) -> TryMapOutcome<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_one = |i: usize| -> (usize, Result<T, String>) {
        match panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(v) => (i, Ok(v)),
            Err(payload) => (i, Err(panic_message(payload))),
        }
    };

    let threads = resolve_threads(threads).min(n.max(1));
    let mut raw: Vec<(usize, Result<T, String>)> = if threads <= 1 || n <= 1 {
        (0..n).map(run_one).collect()
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let run_one = &run_one;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push(run_one(i));
                        }
                        local
                    })
                })
                .collect();
            let mut merged = Vec::with_capacity(n);
            for handle in handles {
                merged.extend(handle.join().expect("worker itself never panics"));
            }
            merged
        })
    };
    raw.sort_unstable_by_key(|(i, _)| *i);

    let mut outcome = TryMapOutcome {
        successes: Vec::with_capacity(raw.len()),
        failures: Vec::new(),
    };
    for (i, r) in raw {
        match r {
            Ok(v) => outcome.successes.push((i, v)),
            Err(message) => outcome.failures.push(TrialFailure { index: i, message }),
        }
    }
    outcome
}

/// Runs `f(0..n)` across `threads` workers and returns the results in
/// index order.
///
/// Same scheduling guarantees as [`parallel_try_map`]. A panic in `f`
/// propagates after all workers stop — use [`parallel_try_map`] to survive
/// it instead.
///
/// # Example
///
/// ```
/// use abp_sim::runner::parallel_map;
/// let squares = parallel_map(8, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let outcome = parallel_try_map(n, threads, f);
    if let Some(first) = outcome.failures.first() {
        panic!("{first}");
    }
    outcome.into_values()
}

/// Retry/watchdog settings for [`supervised_try_map`].
///
/// The inactive default (`retries == 0`, no timeout) routes sweeps
/// through the unsupervised [`parallel_try_map`], keeping the healthy
/// path bit-identical to previous releases and free of supervision
/// overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Additional attempts granted to a failed trial (0 = fail fast).
    pub retries: u32,
    /// Wall-clock budget per trial attempt; `None` disables the
    /// watchdog.
    pub trial_timeout: Option<Duration>,
    /// Base delay of the exponential backoff between attempts (the
    /// `k`-th retry waits `backoff * 2^(k-1)`).
    pub backoff: Duration,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            retries: 0,
            trial_timeout: None,
            backoff: Duration::from_millis(250),
        }
    }
}

impl RunPolicy {
    /// Whether any supervision (retry or watchdog) is requested.
    pub fn is_active(&self) -> bool {
        self.retries > 0 || self.trial_timeout.is_some()
    }

    /// Backoff before attempt `attempt` (attempt 0 starts immediately;
    /// attempt `k >= 1` waits `backoff * 2^(k-1)`, saturating).
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        self.backoff
            .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
    }
}

/// The retry deadline `now + backoff`, saturated to the farthest
/// representable `Instant` instead of panicking.
///
/// [`RunPolicy::backoff_before`] saturates toward `backoff * u32::MAX`,
/// which at pathological `--retry`/backoff combinations overflows
/// `Instant` addition (`Instant::now() + backoff` panics). Halving the
/// delay until the addition is representable keeps the deadline as far
/// out as the clock can express — the retry still waits "effectively
/// forever", it just no longer aborts the whole sweep.
pub fn retry_deadline(now: Instant, backoff: Duration) -> Instant {
    let mut delay = backoff;
    loop {
        if let Some(deadline) = now.checked_add(delay) {
            return deadline;
        }
        delay /= 2;
    }
}

/// Why a supervised trial ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialFault {
    /// The trial closure panicked.
    Panic {
        /// The panic payload rendered as text.
        message: String,
    },
    /// The trial exceeded the watchdog deadline and was abandoned.
    Timeout {
        /// The deadline that was exceeded.
        limit: Duration,
    },
}

impl std::fmt::Display for TrialFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrialFault::Panic { message } => write!(f, "panicked: {message}"),
            TrialFault::Timeout { limit } => {
                write!(f, "timed out after {:.3}s", limit.as_secs_f64())
            }
        }
    }
}

/// A trial that exhausted its attempts under [`supervised_try_map`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisedFailure {
    /// The task index passed to the closure.
    pub index: usize,
    /// Attempts consumed (1 + retries granted).
    pub attempts: u32,
    /// The final attempt's fault.
    pub fault: TrialFault,
}

impl std::fmt::Display for SupervisedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trial {} {} (after {} attempt{})",
            self.index,
            self.fault,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" }
        )
    }
}

/// The outcome of a supervised map. Both vectors are in ascending index
/// order; `successes` holds exactly one entry per trial that eventually
/// succeeded, no matter how many attempts it took.
#[derive(Debug)]
pub struct SupervisedOutcome<T> {
    /// `(index, value)` for every task whose (first successful) attempt
    /// completed.
    pub successes: Vec<(usize, T)>,
    /// Every task that exhausted its attempts.
    pub failures: Vec<SupervisedFailure>,
    /// Total retry dispatches across all tasks.
    pub retries: u32,
}

impl<T> SupervisedOutcome<T> {
    /// Discards indices and returns the surviving values in index order.
    pub fn into_values(self) -> Vec<T> {
        self.successes.into_iter().map(|(_, v)| v).collect()
    }

    /// Whether every task eventually completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Progress callbacks emitted by [`supervised_try_map`] on the calling
/// thread (safe to borrow probes and other non-`'static` state).
#[derive(Debug)]
pub enum TrialEvent<'a> {
    /// An attempt completed successfully.
    Done {
        /// Task index.
        index: usize,
        /// The attempt that succeeded (0 = first try).
        attempt: u32,
        /// Wall-clock time the successful attempt took.
        busy: Duration,
    },
    /// An attempt failed and a retry was scheduled.
    Retry {
        /// Task index.
        index: usize,
        /// The attempt that failed (0-based).
        failed_attempt: u32,
        /// Why it failed.
        fault: &'a TrialFault,
        /// Delay before the next attempt starts.
        backoff: Duration,
    },
    /// A task exhausted its attempts.
    Failed {
        /// Task index.
        index: usize,
        /// Attempts consumed.
        attempts: u32,
        /// The final fault.
        fault: &'a TrialFault,
    },
}

/// A unit of work in the supervised queue.
struct Task {
    index: usize,
    attempt: u32,
    not_before: Option<Instant>,
}

/// Shared worker queue: pending tasks + shutdown flag, with a condvar
/// for idle workers.
struct TaskQueue {
    inner: Mutex<(VecDeque<Task>, bool)>,
    available: Condvar,
}

impl TaskQueue {
    fn push(&self, task: Task) {
        self.inner.lock().expect("task queue").0.push_back(task);
        self.available.notify_one();
    }

    /// Blocks until a task is available or shutdown is signalled.
    fn pop(&self) -> Option<Task> {
        let mut guard = self.inner.lock().expect("task queue");
        loop {
            if let Some(task) = guard.0.pop_front() {
                return Some(task);
            }
            if guard.1 {
                return None;
            }
            guard = self.available.wait(guard).expect("task queue");
        }
    }

    fn shutdown(&self) {
        self.inner.lock().expect("task queue").1 = true;
        self.available.notify_all();
    }
}

/// Messages from workers to the supervisor.
enum WorkerMsg<T> {
    Started {
        index: usize,
        attempt: u32,
        at: Instant,
    },
    Finished {
        index: usize,
        attempt: u32,
        result: Result<T, String>,
        busy: Duration,
    },
}

fn spawn_worker<T, F>(
    queue: Arc<TaskQueue>,
    f: Arc<F>,
    tx: mpsc::Sender<WorkerMsg<T>>,
) -> std::thread::JoinHandle<()>
where
    T: Send + 'static,
    F: Fn(usize, u32) -> T + Send + Sync + 'static,
{
    std::thread::spawn(move || {
        while let Some(task) = queue.pop() {
            if let Some(not_before) = task.not_before {
                let now = Instant::now();
                if now < not_before {
                    std::thread::sleep(not_before - now);
                }
            }
            let started = Instant::now();
            // A send failure means the supervisor is gone (all tasks
            // settled while this one ran long); just stop quietly.
            if tx
                .send(WorkerMsg::Started {
                    index: task.index,
                    attempt: task.attempt,
                    at: started,
                })
                .is_err()
            {
                return;
            }
            let result = match panic::catch_unwind(AssertUnwindSafe(|| f(task.index, task.attempt)))
            {
                Ok(v) => Ok(v),
                Err(payload) => Err(panic_message(payload)),
            };
            let finished = WorkerMsg::Finished {
                index: task.index,
                attempt: task.attempt,
                result,
                busy: started.elapsed(),
            };
            if tx.send(finished).is_err() {
                return;
            }
        }
    })
}

/// Runs `f(index, attempt)` for `0..n` under a supervisor that retries
/// failures and aborts attempts exceeding the watchdog deadline.
///
/// * `f` receives the *attempt number* (0 = first try) so the caller can
///   re-derive attempt seeds deterministically — attempt 0 must use the
///   same seed as the unsupervised path, keeping healthy sweeps
///   bit-identical under any policy.
/// * A failed attempt (panic or timeout) is re-queued up to
///   `policy.retries` times, delayed by `policy.backoff * 2^(k-1)`.
/// * A timed-out attempt is *abandoned*: its worker thread keeps running
///   (safe Rust cannot kill it) but its eventual result is discarded, a
///   replacement worker keeps the pool at strength, and the trial is
///   recorded as a structured [`TrialFault::Timeout`] once its attempts
///   are exhausted. Other in-flight and queued trials are unaffected —
///   the sweep drains completely and every completed result is kept.
/// * `on_event` fires on the calling thread for every settled attempt,
///   so probes can stream progress without `Sync + 'static` bounds.
///
/// Successes are recorded exactly once per trial (whichever attempt
/// succeeds first); results are sorted by index, so downstream
/// statistics are independent of thread count and scheduling. Note that
/// *which* attempt of a wall-clock-limited trial succeeds can depend on
/// machine speed; determinism holds whenever trials fail (or succeed)
/// deterministically, which is the case for seed-derived panics and for
/// the healthy path.
pub fn supervised_try_map<T, F>(
    n: usize,
    threads: usize,
    policy: RunPolicy,
    f: F,
    mut on_event: impl FnMut(TrialEvent<'_>),
) -> SupervisedOutcome<T>
where
    T: Send + 'static,
    F: Fn(usize, u32) -> T + Send + Sync + 'static,
{
    let mut outcome = SupervisedOutcome {
        successes: Vec::with_capacity(n),
        failures: Vec::new(),
        retries: 0,
    };
    if n == 0 {
        return outcome;
    }

    let queue = Arc::new(TaskQueue {
        inner: Mutex::new((VecDeque::with_capacity(n), false)),
        available: Condvar::new(),
    });
    for index in 0..n {
        queue.inner.lock().expect("task queue").0.push_back(Task {
            index,
            attempt: 0,
            not_before: None,
        });
    }
    let f = Arc::new(f);
    let (tx, rx) = mpsc::channel::<WorkerMsg<T>>();
    let workers = resolve_threads(threads).min(n);
    for _ in 0..workers {
        spawn_worker(Arc::clone(&queue), Arc::clone(&f), tx.clone());
    }

    // Supervisor state: running attempts (for the watchdog) and attempts
    // abandoned by it (whose late results must be discarded).
    let mut running: HashMap<usize, (u32, Instant)> = HashMap::new();
    let mut abandoned: HashSet<(usize, u32)> = HashSet::new();
    let mut settled = 0usize;

    while settled < n {
        let msg = match policy.trial_timeout {
            Some(limit) => {
                let next_deadline = running.values().map(|&(_, at)| at + limit).min();
                match next_deadline {
                    Some(deadline) => {
                        let wait = deadline.saturating_duration_since(Instant::now());
                        match rx.recv_timeout(wait) {
                            Ok(m) => Some(m),
                            Err(mpsc::RecvTimeoutError::Timeout) => None,
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                unreachable!("supervisor holds a sender")
                            }
                        }
                    }
                    None => Some(rx.recv().expect("supervisor holds a sender")),
                }
            }
            None => Some(rx.recv().expect("supervisor holds a sender")),
        };

        match msg {
            Some(WorkerMsg::Started { index, attempt, at }) => {
                if !abandoned.contains(&(index, attempt)) {
                    running.insert(index, (attempt, at));
                }
            }
            Some(WorkerMsg::Finished {
                index,
                attempt,
                result,
                busy,
            }) => {
                if abandoned.remove(&(index, attempt)) {
                    // The watchdog already charged this attempt; whatever
                    // it eventually produced is void.
                    continue;
                }
                running.remove(&index);
                match result {
                    Ok(value) => {
                        outcome.successes.push((index, value));
                        settled += 1;
                        on_event(TrialEvent::Done {
                            index,
                            attempt,
                            busy,
                        });
                    }
                    Err(message) => {
                        let fault = TrialFault::Panic { message };
                        settled += settle_failure(
                            &mut outcome,
                            &queue,
                            &policy,
                            index,
                            attempt,
                            fault,
                            &mut on_event,
                        );
                    }
                }
            }
            None => {
                // Watchdog tick: abandon every running attempt past its
                // deadline. The queue keeps draining regardless.
                let limit = policy.trial_timeout.expect("timeout armed");
                let now = Instant::now();
                let expired: Vec<(usize, u32)> = running
                    .iter()
                    .filter(|&(_, &(_, at))| now.saturating_duration_since(at) >= limit)
                    .map(|(&index, &(attempt, _))| (index, attempt))
                    .collect();
                for (index, attempt) in expired {
                    running.remove(&index);
                    abandoned.insert((index, attempt));
                    // The abandoned worker may be stuck for good; keep
                    // the pool at strength so the sweep still drains.
                    spawn_worker(Arc::clone(&queue), Arc::clone(&f), tx.clone());
                    let fault = TrialFault::Timeout { limit };
                    settled += settle_failure(
                        &mut outcome,
                        &queue,
                        &policy,
                        index,
                        attempt,
                        fault,
                        &mut on_event,
                    );
                }
            }
        }
    }

    queue.shutdown();
    outcome.successes.sort_unstable_by_key(|(i, _)| *i);
    outcome
        .failures
        .sort_unstable_by_key(|failure| failure.index);
    outcome
}

/// Handles a failed attempt: schedules a retry if the policy allows,
/// otherwise records the failure. Returns how many trials settled (0 or
/// 1) so the supervisor can track completion.
fn settle_failure<T>(
    outcome: &mut SupervisedOutcome<T>,
    queue: &TaskQueue,
    policy: &RunPolicy,
    index: usize,
    attempt: u32,
    fault: TrialFault,
    on_event: &mut impl FnMut(TrialEvent<'_>),
) -> usize {
    if attempt < policy.retries {
        let next = attempt + 1;
        let backoff = policy.backoff_before(next);
        on_event(TrialEvent::Retry {
            index,
            failed_attempt: attempt,
            fault: &fault,
            backoff,
        });
        outcome.retries += 1;
        queue.push(Task {
            index,
            attempt: next,
            not_before: Some(retry_deadline(Instant::now(), backoff)),
        });
        0
    } else {
        let attempts = attempt + 1;
        on_event(TrialEvent::Failed {
            index,
            attempts,
            fault: &fault,
        });
        outcome.failures.push(SupervisedFailure {
            index,
            attempts,
            fault,
        });
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_index_order() {
        let out = parallel_map(100, 8, |i| i * 3);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn zero_and_one_tasks() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn single_thread_equals_multi_thread() {
        let seq = parallel_map(64, 1, |i| (i as f64).sqrt());
        let par = parallel_map(64, 8, |i| (i as f64).sqrt());
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = parallel_map(500, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn resolve_threads_defaults_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = parallel_map(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn try_map_isolates_panicking_trials() {
        let outcome = parallel_try_map(50, 4, |i| {
            if i == 17 {
                panic!("injected fault at {i}");
            }
            i * 2
        });
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 17);
        assert!(outcome.failures[0].message.contains("injected fault"));
        assert_eq!(outcome.successes.len(), 49);
        assert!(!outcome.is_complete());
        for (i, v) in &outcome.successes {
            assert_eq!(*v, i * 2);
        }
        assert!(outcome.successes.iter().all(|(i, _)| *i != 17));
    }

    #[test]
    fn try_map_sequential_path_catches_too() {
        let outcome = parallel_try_map(3, 1, |i| {
            if i == 1 {
                panic!("boom");
            }
            i
        });
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 1);
        assert_eq!(outcome.into_values(), vec![0, 2]);
    }

    #[test]
    fn try_map_string_and_nonstring_payloads() {
        let outcome = parallel_try_map(2, 1, |i| {
            if i == 0 {
                panic!("{}", String::from("owned message"));
            }
            std::panic::panic_any(42_u32);
        });
        assert_eq!(outcome.failures[0].message, "owned message");
        assert_eq!(outcome.failures[1].message, "non-string panic payload");
    }

    #[test]
    #[should_panic(expected = "trial 5 panicked")]
    fn parallel_map_propagates_first_failure() {
        parallel_map(10, 1, |i| {
            if i >= 5 {
                panic!("bad trial");
            }
            i
        });
    }

    #[test]
    fn thread_count_invariance_with_failures() {
        let run = |threads| {
            parallel_try_map(40, threads, |i| {
                if i % 13 == 0 {
                    panic!("fault {i}");
                }
                i as f64 * 1.5
            })
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.failures, b.failures);
    }

    fn quiet_policy(retries: u32) -> RunPolicy {
        RunPolicy {
            retries,
            trial_timeout: None,
            backoff: Duration::from_millis(1),
        }
    }

    #[test]
    fn supervised_healthy_run_matches_unsupervised() {
        let plain = parallel_try_map(50, 4, |i| i * 3);
        let supervised = supervised_try_map(50, 4, quiet_policy(2), |i, _attempt| i * 3, |_| {});
        assert_eq!(plain.successes, supervised.successes);
        assert!(supervised.is_complete());
        assert_eq!(supervised.retries, 0);
    }

    #[test]
    fn panic_twice_then_succeed_is_counted_exactly_once() {
        // The acceptance scenario: a trial that fails its first two
        // attempts deterministically must be retried and contribute
        // exactly one sample to the final statistics.
        let calls = Arc::new(AtomicU64::new(0));
        let calls_in = Arc::clone(&calls);
        let mut retry_events = 0u32;
        let outcome = supervised_try_map(
            10,
            4,
            quiet_policy(2),
            move |i, attempt| {
                if i == 4 {
                    calls_in.fetch_add(1, Ordering::Relaxed);
                    if attempt < 2 {
                        panic!("flaky trial, attempt {attempt}");
                    }
                }
                i + 100
            },
            |event| {
                if matches!(event, TrialEvent::Retry { index: 4, .. }) {
                    retry_events += 1;
                }
            },
        );
        assert!(outcome.is_complete());
        assert_eq!(outcome.retries, 2);
        assert_eq!(retry_events, 2);
        assert_eq!(calls.load(Ordering::Relaxed), 3, "attempts 0, 1, 2");
        // Exactly one success for index 4, from the third attempt.
        let fours: Vec<_> = outcome.successes.iter().filter(|(i, _)| *i == 4).collect();
        assert_eq!(fours.len(), 1);
        assert_eq!(outcome.successes.len(), 10);
        assert_eq!(outcome.into_values(), (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn exhausted_retries_record_the_final_panic() {
        let outcome = supervised_try_map(
            6,
            3,
            quiet_policy(1),
            |i, attempt| {
                if i == 2 {
                    panic!("always bad (attempt {attempt})");
                }
                i
            },
            |_| {},
        );
        assert_eq!(outcome.failures.len(), 1);
        let failure = &outcome.failures[0];
        assert_eq!(failure.index, 2);
        assert_eq!(failure.attempts, 2, "1 try + 1 retry");
        assert!(
            matches!(&failure.fault, TrialFault::Panic { message } if message.contains("attempt 1"))
        );
        assert_eq!(outcome.successes.len(), 5);
        assert_eq!(outcome.retries, 1);
    }

    #[test]
    fn watchdog_times_out_stuck_trial_and_drains_the_rest() {
        // Satellite 6: one stuck trial must neither hang the sweep nor
        // lose any completed result.
        let policy = RunPolicy {
            retries: 0,
            trial_timeout: Some(Duration::from_millis(100)),
            backoff: Duration::from_millis(1),
        };
        let started = Instant::now();
        let outcome = supervised_try_map(
            8,
            4,
            policy,
            |i, _attempt| {
                if i == 3 {
                    // Far longer than the deadline: the watchdog must
                    // abandon it, not wait it out.
                    std::thread::sleep(Duration::from_secs(30));
                }
                i * 2
            },
            |_| {},
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "watchdog failed to abort the stuck trial"
        );
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 3);
        assert!(matches!(
            outcome.failures[0].fault,
            TrialFault::Timeout { .. }
        ));
        // Every other trial drained and kept its result.
        let indices: Vec<usize> = outcome.successes.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, vec![0, 1, 2, 4, 5, 6, 7]);
        for (i, v) in &outcome.successes {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn timed_out_attempt_is_retried_with_new_attempt_number() {
        let policy = RunPolicy {
            retries: 1,
            trial_timeout: Some(Duration::from_millis(100)),
            backoff: Duration::from_millis(1),
        };
        let outcome = supervised_try_map(
            4,
            2,
            policy,
            |i, attempt| {
                if i == 1 && attempt == 0 {
                    std::thread::sleep(Duration::from_secs(30));
                }
                (i, attempt)
            },
            |_| {},
        );
        assert!(outcome.is_complete(), "retry must rescue the stuck trial");
        assert_eq!(outcome.retries, 1);
        let rescued = outcome
            .successes
            .iter()
            .find(|(i, _)| *i == 1)
            .expect("index 1 present");
        assert_eq!(rescued.1, (1, 1), "success must come from attempt 1");
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let policy = RunPolicy {
            retries: 4,
            trial_timeout: None,
            backoff: Duration::from_millis(100),
        };
        assert_eq!(policy.backoff_before(0), Duration::ZERO);
        assert_eq!(policy.backoff_before(1), Duration::from_millis(100));
        assert_eq!(policy.backoff_before(2), Duration::from_millis(200));
        assert_eq!(policy.backoff_before(3), Duration::from_millis(400));
        assert!(policy.is_active());
        assert!(!RunPolicy::default().is_active());
    }

    #[test]
    fn retry_deadline_saturates_instead_of_panicking() {
        // Pathological policies saturate `backoff_before` toward
        // `backoff * u32::MAX`; the deadline must clamp, not panic
        // (regression: `Instant::now() + backoff` overflowed).
        let policy = RunPolicy {
            retries: u32::MAX,
            trial_timeout: None,
            backoff: Duration::MAX,
        };
        let now = Instant::now();
        for attempt in [1, 2, 31, 32, 63, u32::MAX] {
            let backoff = policy.backoff_before(attempt);
            let deadline = retry_deadline(now, backoff);
            assert!(deadline >= now, "deadline must not precede now");
        }
        // The saturated deadline still orders after any sane deadline.
        let sane = retry_deadline(now, Duration::from_secs(1));
        let saturated = retry_deadline(now, Duration::MAX);
        assert!(saturated >= sane);
        // And ordinary backoffs are exact.
        assert_eq!(sane, now + Duration::from_secs(1));
    }

    #[test]
    fn supervised_zero_tasks() {
        let outcome = supervised_try_map::<usize, _>(0, 4, quiet_policy(1), |i, _| i, |_| {});
        assert!(outcome.successes.is_empty());
        assert!(outcome.is_complete());
    }
}
