//! Deterministic parallel trial execution with per-trial fault isolation.

use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count setting: `0` means one thread per available
/// core.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// A trial that panicked instead of producing a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// The task index passed to the closure.
    pub index: usize,
    /// The panic payload rendered as text (`&str`/`String` payloads are
    /// preserved; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trial {} panicked: {}", self.index, self.message)
    }
}

/// The outcome of a fault-tolerant map: every task either succeeded or is
/// accounted for in `failures`. Both vectors are in ascending index order.
#[derive(Debug)]
pub struct TryMapOutcome<T> {
    /// `(index, value)` for every task that completed.
    pub successes: Vec<(usize, T)>,
    /// Every task whose closure panicked.
    pub failures: Vec<TrialFailure>,
}

impl<T> TryMapOutcome<T> {
    /// Discards indices and returns the surviving values in index order.
    pub fn into_values(self) -> Vec<T> {
        self.successes.into_iter().map(|(_, v)| v).collect()
    }

    /// Whether every task completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(0..n)` across `threads` workers, catching per-task panics so a
/// single bad trial cannot abort a long sweep.
///
/// Work is claimed dynamically (an atomic cursor), so stragglers balance;
/// results are reassembled by index, so the output — and therefore every
/// downstream statistic — is **independent of the thread count and
/// scheduling**. Each task must derive its own randomness from its index.
pub fn parallel_try_map<T, F>(n: usize, threads: usize, f: F) -> TryMapOutcome<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_one = |i: usize| -> (usize, Result<T, String>) {
        match panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(v) => (i, Ok(v)),
            Err(payload) => (i, Err(panic_message(payload))),
        }
    };

    let threads = resolve_threads(threads).min(n.max(1));
    let mut raw: Vec<(usize, Result<T, String>)> = if threads <= 1 || n <= 1 {
        (0..n).map(run_one).collect()
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let run_one = &run_one;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push(run_one(i));
                        }
                        local
                    })
                })
                .collect();
            let mut merged = Vec::with_capacity(n);
            for handle in handles {
                merged.extend(handle.join().expect("worker itself never panics"));
            }
            merged
        })
    };
    raw.sort_unstable_by_key(|(i, _)| *i);

    let mut outcome = TryMapOutcome {
        successes: Vec::with_capacity(raw.len()),
        failures: Vec::new(),
    };
    for (i, r) in raw {
        match r {
            Ok(v) => outcome.successes.push((i, v)),
            Err(message) => outcome.failures.push(TrialFailure { index: i, message }),
        }
    }
    outcome
}

/// Runs `f(0..n)` across `threads` workers and returns the results in
/// index order.
///
/// Same scheduling guarantees as [`parallel_try_map`]. A panic in `f`
/// propagates after all workers stop — use [`parallel_try_map`] to survive
/// it instead.
///
/// # Example
///
/// ```
/// use abp_sim::runner::parallel_map;
/// let squares = parallel_map(8, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let outcome = parallel_try_map(n, threads, f);
    if let Some(first) = outcome.failures.first() {
        panic!("{first}");
    }
    outcome.into_values()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_index_order() {
        let out = parallel_map(100, 8, |i| i * 3);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn zero_and_one_tasks() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn single_thread_equals_multi_thread() {
        let seq = parallel_map(64, 1, |i| (i as f64).sqrt());
        let par = parallel_map(64, 8, |i| (i as f64).sqrt());
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = parallel_map(500, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn resolve_threads_defaults_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = parallel_map(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn try_map_isolates_panicking_trials() {
        let outcome = parallel_try_map(50, 4, |i| {
            if i == 17 {
                panic!("injected fault at {i}");
            }
            i * 2
        });
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 17);
        assert!(outcome.failures[0].message.contains("injected fault"));
        assert_eq!(outcome.successes.len(), 49);
        assert!(!outcome.is_complete());
        for (i, v) in &outcome.successes {
            assert_eq!(*v, i * 2);
        }
        assert!(outcome.successes.iter().all(|(i, _)| *i != 17));
    }

    #[test]
    fn try_map_sequential_path_catches_too() {
        let outcome = parallel_try_map(3, 1, |i| {
            if i == 1 {
                panic!("boom");
            }
            i
        });
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].index, 1);
        assert_eq!(outcome.into_values(), vec![0, 2]);
    }

    #[test]
    fn try_map_string_and_nonstring_payloads() {
        let outcome = parallel_try_map(2, 1, |i| {
            if i == 0 {
                panic!("{}", String::from("owned message"));
            }
            std::panic::panic_any(42_u32);
        });
        assert_eq!(outcome.failures[0].message, "owned message");
        assert_eq!(outcome.failures[1].message, "non-string panic payload");
    }

    #[test]
    #[should_panic(expected = "trial 5 panicked")]
    fn parallel_map_propagates_first_failure() {
        parallel_map(10, 1, |i| {
            if i >= 5 {
                panic!("bad trial");
            }
            i
        });
    }

    #[test]
    fn thread_count_invariance_with_failures() {
        let run = |threads| {
            parallel_try_map(40, threads, |i| {
                if i % 13 == 0 {
                    panic!("fault {i}");
                }
                i as f64 * 1.5
            })
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.failures, b.failures);
    }
}
