//! Deterministic parallel trial execution.

use crossbeam::channel;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count setting: `0` means one thread per available
/// core.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Runs `f(0..n)` across `threads` workers and returns the results in
/// index order.
///
/// Work is claimed dynamically (an atomic cursor), so stragglers balance;
/// results are reassembled by index, so the output — and therefore every
/// downstream statistic — is **independent of the thread count and
/// scheduling**. Each task must derive its own randomness from its index.
///
/// Panics in `f` propagate after all workers stop.
///
/// # Example
///
/// ```
/// use abp_sim::runner::parallel_map;
/// let squares = parallel_map(8, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = channel::bounded::<(usize, T)>(threads * 2);
    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A send failure means the collector stopped (a panic is
                // unwinding); just stop producing.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, v) in rx {
            results[i] = Some(v);
        }
    });
    results
        .into_iter()
        .map(|v| v.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_index_order() {
        let out = parallel_map(100, 8, |i| i * 3);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn zero_and_one_tasks() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn single_thread_equals_multi_thread() {
        let seq = parallel_map(64, 1, |i| (i as f64).sqrt());
        let par = parallel_map(64, 8, |i| (i as f64).sqrt());
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = parallel_map(500, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn resolve_threads_defaults_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = parallel_map(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
