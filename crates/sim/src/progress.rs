//! Observability for long Monte-Carlo runs: probes, progress reporting,
//! and run metrics.
//!
//! The experiment drivers accept a [`Ctx`] carrying a [`Probe`] (and
//! optionally a [`crate::checkpoint::SweepCheckpoint`]). Probes receive
//! figure/sweep/trial lifecycle events from whatever thread completed the
//! work, so implementations must be `Sync` and cheap. Three are provided:
//!
//! * [`NoopProbe`] — the default; zero overhead,
//! * [`ProgressProbe`] — live `completed/total`, throughput, and ETA on
//!   stderr (the CLI's `--progress`),
//! * [`MetricsRecorder`] — per-figure wall-clock, trial throughput, and
//!   worker utilization, rendered as JSON (the CLI's `--metrics-json`).

use crate::checkpoint::{CheckpointOpen, SweepCheckpoint};
use crate::runner::RunPolicy;
use std::fmt;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A trial that panicked during a sweep, with enough context to reproduce
/// it in isolation: the experiment, the density point, the trial index,
/// and the exact derived seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailureReport {
    /// Which experiment family the trial belonged to.
    pub experiment: &'static str,
    /// Index into `cfg.beacon_counts`.
    pub density_index: usize,
    /// Beacon count at that density.
    pub beacons: usize,
    /// Trial index within the density.
    pub trial: usize,
    /// The derived trial seed (`cfg.trial_seed(density_index, trial)`).
    pub seed: u64,
    /// The panic payload rendered as text.
    pub message: String,
}

impl fmt::Display for TrialFailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: trial {} at density #{} ({} beacons, seed {:#018x}) panicked: {}",
            self.experiment, self.trial, self.density_index, self.beacons, self.seed, self.message
        )
    }
}

/// A trial attempt that failed but will be re-run with a re-derived seed
/// (the engine was given `--retry`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialRetryReport {
    /// Which experiment family the trial belonged to.
    pub experiment: &'static str,
    /// Index into `cfg.beacon_counts`.
    pub density_index: usize,
    /// Beacon count at that density.
    pub beacons: usize,
    /// Trial index within the density.
    pub trial: usize,
    /// The attempt number that just failed (0 = first run).
    pub failed_attempt: u32,
    /// The fault rendered as text (panic payload or watchdog timeout).
    pub fault: String,
    /// Delay before the next attempt is allowed to start.
    pub backoff: Duration,
}

impl fmt::Display for TrialRetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: trial {} at density #{} ({} beacons) attempt {} failed ({}); retrying after {:?}",
            self.experiment,
            self.trial,
            self.density_index,
            self.beacons,
            self.failed_attempt,
            self.fault,
            self.backoff
        )
    }
}

/// A trial attempt aborted by the watchdog for exceeding
/// `--trial-timeout`. Emitted for *every* watchdog abort — the attempt
/// may still be retried afterwards (see [`TrialRetryReport`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialTimeoutReport {
    /// Which experiment family the trial belonged to.
    pub experiment: &'static str,
    /// Index into `cfg.beacon_counts`.
    pub density_index: usize,
    /// Beacon count at that density.
    pub beacons: usize,
    /// Trial index within the density.
    pub trial: usize,
    /// The attempt number that was aborted (0 = first run).
    pub attempt: u32,
    /// The configured per-trial wall-clock limit that was exceeded.
    pub limit: Duration,
}

impl fmt::Display for TrialTimeoutReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: trial {} at density #{} ({} beacons) attempt {} exceeded the {:?} watchdog limit",
            self.experiment, self.trial, self.density_index, self.beacons, self.attempt, self.limit
        )
    }
}

/// Receives experiment lifecycle events.
///
/// All methods have empty defaults; implement only what you observe.
/// `trial_done` is called from worker threads on every finished trial —
/// keep it cheap.
pub trait Probe: Sync {
    /// A named figure (or table) regeneration began.
    fn figure_start(&self, id: &str) {
        let _ = id;
    }

    /// A named figure finished; `wall` is its total wall-clock time.
    fn figure_done(&self, id: &str, wall: Duration) {
        let _ = (id, wall);
    }

    /// A per-density sweep of `trials` trials began.
    fn sweep_start(&self, experiment: &str, beacons: usize, trials: usize) {
        let _ = (experiment, beacons, trials);
    }

    /// A per-density sweep finished. `from_checkpoint` marks sweeps whose
    /// results were restored rather than recomputed.
    fn sweep_done(&self, experiment: &str, beacons: usize, wall: Duration, from_checkpoint: bool) {
        let _ = (experiment, beacons, wall, from_checkpoint);
    }

    /// One trial finished; `busy` is the time the worker spent on it.
    fn trial_done(&self, busy: Duration) {
        let _ = busy;
    }

    /// One trial panicked (the sweep continues without it).
    fn trial_failed(&self, failure: &TrialFailureReport) {
        let _ = failure;
    }

    /// One trial attempt failed and will be retried with a re-derived
    /// seed after a backoff delay.
    fn trial_retried(&self, retry: &TrialRetryReport) {
        let _ = retry;
    }

    /// The watchdog aborted a trial attempt for exceeding the configured
    /// per-trial timeout. Fires once per abort, before any retry decision.
    fn trial_timed_out(&self, timeout: &TrialTimeoutReport) {
        let _ = timeout;
    }

    /// A sweep checkpoint file was opened. `open` says whether the store
    /// started fresh, resumed (possibly quarantining damaged entries), or
    /// ignored an incompatible existing file.
    fn checkpoint_opened(&self, path: &Path, open: &CheckpointOpen) {
        let _ = (path, open);
    }
}

/// Builds the `on_event` callback experiments hand to
/// [`crate::runner::supervised_try_map`]: forwards successes, retries,
/// and watchdog timeouts to `probe` with full experiment context.
/// Terminal failures are *not* forwarded here — sweeps report them in
/// index order after the run, via [`Probe::trial_failed`].
pub(crate) fn forward_trial_events<'a>(
    probe: &'a dyn Probe,
    experiment: &'static str,
    density_index: usize,
    beacons: usize,
) -> impl FnMut(crate::runner::TrialEvent<'_>) + 'a {
    use crate::runner::{TrialEvent, TrialFault};
    move |event| match event {
        TrialEvent::Done { busy, .. } => probe.trial_done(busy),
        TrialEvent::Retry {
            index,
            failed_attempt,
            fault,
            backoff,
        } => {
            if let TrialFault::Timeout { limit } = fault {
                probe.trial_timed_out(&TrialTimeoutReport {
                    experiment,
                    density_index,
                    beacons,
                    trial: index,
                    attempt: failed_attempt,
                    limit: *limit,
                });
            }
            probe.trial_retried(&TrialRetryReport {
                experiment,
                density_index,
                beacons,
                trial: index,
                failed_attempt,
                fault: fault.to_string(),
                backoff,
            });
        }
        TrialEvent::Failed {
            index,
            attempts,
            fault,
        } => {
            if let TrialFault::Timeout { limit } = fault {
                probe.trial_timed_out(&TrialTimeoutReport {
                    experiment,
                    density_index,
                    beacons,
                    trial: index,
                    attempt: attempts.saturating_sub(1),
                    limit: *limit,
                });
            }
        }
    }
}

/// The default probe: observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

static NOOP: NoopProbe = NoopProbe;

/// The observability context threaded through experiments and figures.
///
/// Cheap to copy; [`Ctx::noop`] is the zero-overhead default used by the
/// plain `run(...)` entry points.
#[derive(Clone, Copy)]
pub struct Ctx<'a> {
    /// Receives lifecycle events.
    pub probe: &'a dyn Probe,
    /// When present, completed sweeps are persisted here and restored on
    /// the next run.
    pub checkpoint: Option<&'a SweepCheckpoint>,
    /// Retry/watchdog policy. The inert default keeps sweeps on the plain
    /// engine; an active policy routes them through the supervised one.
    pub policy: RunPolicy,
}

impl Ctx<'static> {
    /// A context that observes nothing and checkpoints nowhere.
    pub fn noop() -> Self {
        Ctx {
            probe: &NOOP,
            checkpoint: None,
            policy: RunPolicy::default(),
        }
    }
}

impl<'a> Ctx<'a> {
    /// A context reporting to `probe`.
    pub fn new(probe: &'a dyn Probe) -> Self {
        Ctx {
            probe,
            checkpoint: None,
            policy: RunPolicy::default(),
        }
    }

    /// Adds a checkpoint store.
    pub fn with_checkpoint(self, checkpoint: &'a SweepCheckpoint) -> Self {
        Ctx {
            checkpoint: Some(checkpoint),
            ..self
        }
    }

    /// Sets the retry/watchdog policy.
    pub fn with_policy(self, policy: RunPolicy) -> Self {
        Ctx { policy, ..self }
    }
}

impl fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("checkpoint", &self.checkpoint.is_some())
            .finish_non_exhaustive()
    }
}

/// Forwards every event to each inner probe, in order.
pub struct Fanout<'a> {
    probes: Vec<&'a dyn Probe>,
}

impl<'a> Fanout<'a> {
    /// Combines any number of probes into one.
    pub fn new(probes: Vec<&'a dyn Probe>) -> Self {
        Fanout { probes }
    }
}

impl Probe for Fanout<'_> {
    fn figure_start(&self, id: &str) {
        for p in &self.probes {
            p.figure_start(id);
        }
    }

    fn figure_done(&self, id: &str, wall: Duration) {
        for p in &self.probes {
            p.figure_done(id, wall);
        }
    }

    fn sweep_start(&self, experiment: &str, beacons: usize, trials: usize) {
        for p in &self.probes {
            p.sweep_start(experiment, beacons, trials);
        }
    }

    fn sweep_done(&self, experiment: &str, beacons: usize, wall: Duration, from_checkpoint: bool) {
        for p in &self.probes {
            p.sweep_done(experiment, beacons, wall, from_checkpoint);
        }
    }

    fn trial_done(&self, busy: Duration) {
        for p in &self.probes {
            p.trial_done(busy);
        }
    }

    fn trial_failed(&self, failure: &TrialFailureReport) {
        for p in &self.probes {
            p.trial_failed(failure);
        }
    }

    fn trial_retried(&self, retry: &TrialRetryReport) {
        for p in &self.probes {
            p.trial_retried(retry);
        }
    }

    fn trial_timed_out(&self, timeout: &TrialTimeoutReport) {
        for p in &self.probes {
            p.trial_timed_out(timeout);
        }
    }

    fn checkpoint_opened(&self, path: &Path, open: &CheckpointOpen) {
        for p in &self.probes {
            p.checkpoint_opened(path, open);
        }
    }
}

struct ProgressState {
    label: String,
    done: usize,
    failed: usize,
    total: usize,
    sweep_started: Instant,
    last_render: Option<Instant>,
    line_open: bool,
}

impl ProgressState {
    /// Trials that no longer need running — successes plus failures. The
    /// progress fraction and ETA are based on this, so a sweep with panics
    /// still converges to `total` instead of stalling below it.
    fn settled(&self) -> usize {
        self.done + self.failed
    }
}

/// Live progress on stderr: one updating line per sweep with
/// `completed/total`, trial throughput, and ETA; a summary line per
/// completed sweep.
pub struct ProgressProbe {
    state: Mutex<ProgressState>,
}

impl ProgressProbe {
    /// Creates the probe (no output until the first event).
    pub fn new() -> Self {
        ProgressProbe {
            state: Mutex::new(ProgressState {
                label: String::new(),
                done: 0,
                failed: 0,
                total: 0,
                sweep_started: Instant::now(),
                last_render: None,
                line_open: false,
            }),
        }
    }

    fn render(state: &ProgressState) {
        let elapsed = state.sweep_started.elapsed().as_secs_f64();
        let settled = state.settled();
        let rate = settled as f64 / elapsed.max(1e-9);
        let eta = if settled == 0 {
            "--".to_string()
        } else {
            let left = state.total.saturating_sub(settled) as f64 / rate.max(1e-9);
            format!("{left:.0}s")
        };
        let progress = if state.failed > 0 {
            format!("{}(+{})/{}", state.done, state.failed, state.total)
        } else {
            format!("{}/{}", state.done, state.total)
        };
        eprint!(
            "\r{}: {progress} trials ({:.0}%, {:.1}/s, ETA {eta})   ",
            state.label,
            100.0 * settled as f64 / state.total.max(1) as f64,
            rate,
        );
    }
}

impl Default for ProgressProbe {
    fn default() -> Self {
        ProgressProbe::new()
    }
}

impl Probe for ProgressProbe {
    fn figure_start(&self, id: &str) {
        eprintln!("== {id} ==");
    }

    fn figure_done(&self, id: &str, wall: Duration) {
        let mut s = self.state.lock().expect("progress state");
        if s.line_open {
            eprintln!();
            s.line_open = false;
        }
        eprintln!("== {id} done in {:.2}s ==", wall.as_secs_f64());
    }

    fn sweep_start(&self, experiment: &str, beacons: usize, trials: usize) {
        let mut s = self.state.lock().expect("progress state");
        if s.line_open {
            eprintln!();
        }
        s.label = format!("{experiment} @ {beacons} beacons");
        s.done = 0;
        s.failed = 0;
        s.total = trials;
        s.sweep_started = Instant::now();
        s.last_render = None;
        s.line_open = true;
        Self::render(&s);
    }

    fn sweep_done(&self, experiment: &str, beacons: usize, wall: Duration, from_checkpoint: bool) {
        let mut s = self.state.lock().expect("progress state");
        if s.line_open {
            eprint!("\r");
            s.line_open = false;
        }
        if from_checkpoint {
            eprintln!("{experiment} @ {beacons} beacons: restored from checkpoint");
        } else {
            let rate = s.done as f64 / wall.as_secs_f64().max(1e-9);
            let failed = if s.failed > 0 {
                format!(" ({} failed)", s.failed)
            } else {
                String::new()
            };
            eprintln!(
                "{experiment} @ {beacons} beacons: {} trials in {:.2}s ({rate:.1}/s){failed}      ",
                s.done,
                wall.as_secs_f64(),
            );
        }
    }

    fn trial_done(&self, _busy: Duration) {
        let mut s = self.state.lock().expect("progress state");
        s.done += 1;
        // Throttle terminal writes; always render the final trial.
        let due = match s.last_render {
            None => true,
            Some(t) => t.elapsed() >= Duration::from_millis(100),
        };
        if due || s.settled() == s.total {
            s.last_render = Some(Instant::now());
            Self::render(&s);
        }
    }

    fn trial_failed(&self, failure: &TrialFailureReport) {
        let mut s = self.state.lock().expect("progress state");
        if s.line_open {
            eprintln!();
        }
        eprintln!("FAILED {failure}");
        // Failed trials still count toward progress: re-render so the line
        // keeps converging to `total` (shown as `done(+failed)/total`).
        s.failed += 1;
        if s.line_open {
            s.last_render = Some(Instant::now());
            Self::render(&s);
        }
    }

    fn trial_retried(&self, retry: &TrialRetryReport) {
        let mut s = self.state.lock().expect("progress state");
        if s.line_open {
            eprintln!();
        }
        eprintln!("RETRY {retry}");
        // A retried attempt settles nothing: the trial is still pending,
        // so no counter moves — just repaint the line we broke.
        if s.line_open {
            s.last_render = Some(Instant::now());
            Self::render(&s);
        }
    }

    fn trial_timed_out(&self, timeout: &TrialTimeoutReport) {
        let s = self.state.lock().expect("progress state");
        if s.line_open {
            eprintln!();
        }
        eprintln!("TIMEOUT {timeout}");
        // The retry-or-fail decision follows as its own event; that event
        // owns the counters and the repaint.
    }

    fn checkpoint_opened(&self, path: &Path, open: &CheckpointOpen) {
        match open {
            CheckpointOpen::Created => {}
            CheckpointOpen::Resumed {
                entries,
                quarantined,
            } => {
                if *quarantined > 0 {
                    eprintln!(
                        "checkpoint {}: resumed {entries} entries, quarantined {quarantined} damaged",
                        path.display()
                    );
                }
            }
            ignored => eprintln!("checkpoint {}: {ignored}", path.display()),
        }
    }
}

/// Metrics for one completed figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureMetrics {
    /// Figure id (e.g. `fig4`).
    pub figure: String,
    /// Wall-clock seconds for the whole figure.
    pub wall_seconds: f64,
    /// Trials executed (checkpoint-restored sweeps contribute none).
    pub trials: usize,
    /// Trials per wall-clock second.
    pub trials_per_sec: f64,
    /// Total worker busy-time divided by `wall x threads`: 1.0 means every
    /// worker computed the whole time.
    pub worker_utilization: f64,
    /// Trials that panicked.
    pub failures: usize,
    /// The derived seed of every failed trial, in failure order — enough
    /// to re-run each panicking trial in isolation.
    pub failed_seeds: Vec<u64>,
    /// Attempts that failed but were re-run under `--retry`.
    pub retries: usize,
    /// Attempts aborted by the `--trial-timeout` watchdog (including
    /// aborts that were subsequently retried).
    pub timeouts: usize,
}

#[derive(Default)]
struct OpenFigure {
    id: String,
    trials: usize,
    busy: Duration,
    failed_seeds: Vec<u64>,
    retries: usize,
    timeouts: usize,
}

struct MetricsState {
    figures: Vec<FigureMetrics>,
    current: Option<OpenFigure>,
    run_started: Instant,
}

/// Accumulates per-figure runtime metrics; render with
/// [`MetricsRecorder::to_json`].
pub struct MetricsRecorder {
    threads: usize,
    state: Mutex<MetricsState>,
}

impl MetricsRecorder {
    /// `threads` is the resolved worker count (used for the utilization
    /// denominator).
    pub fn new(threads: usize) -> Self {
        MetricsRecorder {
            threads: threads.max(1),
            state: Mutex::new(MetricsState {
                figures: Vec::new(),
                current: None,
                run_started: Instant::now(),
            }),
        }
    }

    /// The metrics collected so far (completed figures only).
    pub fn figures(&self) -> Vec<FigureMetrics> {
        self.state.lock().expect("metrics state").figures.clone()
    }

    /// Renders the run metrics as a JSON document.
    ///
    /// Schema (all numbers finite):
    ///
    /// ```json
    /// {
    ///   "threads": 8,
    ///   "total_wall_seconds": 12.5,
    ///   "figures": [
    ///     {
    ///       "figure": "fig4",
    ///       "wall_seconds": 3.2,
    ///       "trials": 240,
    ///       "trials_per_sec": 75.0,
    ///       "worker_utilization": 0.93,
    ///       "failures": 1,
    ///       "failed_seeds": ["0x00000000deadbeef"],
    ///       "retries": 2,
    ///       "timeouts": 1
    ///     }
    ///   ]
    /// }
    /// ```
    ///
    /// `failed_seeds` lists the derived seed of every panicked trial (hex,
    /// failure order), so partial-failure runs stay reproducible from the
    /// metrics file alone.
    pub fn to_json(&self) -> String {
        let state = self.state.lock().expect("metrics state");
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"total_wall_seconds\": {},\n",
            json_f64(state.run_started.elapsed().as_secs_f64())
        ));
        out.push_str("  \"figures\": [");
        for (i, m) in state.figures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let seeds = m
                .failed_seeds
                .iter()
                .map(|s| format!("\"{s:#018x}\""))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "\n    {{\"figure\": {}, \"wall_seconds\": {}, \"trials\": {}, \
                 \"trials_per_sec\": {}, \"worker_utilization\": {}, \"failures\": {}, \
                 \"failed_seeds\": [{seeds}], \"retries\": {}, \"timeouts\": {}}}",
                json_string(&m.figure),
                json_f64(m.wall_seconds),
                m.trials,
                json_f64(m.trials_per_sec),
                json_f64(m.worker_utilization),
                m.failures,
                m.retries,
                m.timeouts,
            ));
        }
        if !state.figures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl Probe for MetricsRecorder {
    fn figure_start(&self, id: &str) {
        let mut s = self.state.lock().expect("metrics state");
        s.current = Some(OpenFigure {
            id: id.to_string(),
            ..OpenFigure::default()
        });
    }

    fn figure_done(&self, id: &str, wall: Duration) {
        let mut s = self.state.lock().expect("metrics state");
        let Some(open) = s.current.take() else {
            return;
        };
        debug_assert_eq!(open.id, id, "mismatched figure_done");
        let wall_seconds = wall.as_secs_f64();
        s.figures.push(FigureMetrics {
            figure: open.id,
            wall_seconds,
            trials: open.trials,
            trials_per_sec: open.trials as f64 / wall_seconds.max(1e-9),
            worker_utilization: (open.busy.as_secs_f64()
                / (wall_seconds.max(1e-9) * self.threads as f64))
                .clamp(0.0, 1.0),
            failures: open.failed_seeds.len(),
            failed_seeds: open.failed_seeds,
            retries: open.retries,
            timeouts: open.timeouts,
        });
    }

    fn trial_done(&self, busy: Duration) {
        let mut s = self.state.lock().expect("metrics state");
        if let Some(open) = s.current.as_mut() {
            open.trials += 1;
            open.busy += busy;
        }
    }

    fn trial_failed(&self, failure: &TrialFailureReport) {
        let mut s = self.state.lock().expect("metrics state");
        if let Some(open) = s.current.as_mut() {
            open.failed_seeds.push(failure.seed);
        }
    }

    fn trial_retried(&self, _retry: &TrialRetryReport) {
        let mut s = self.state.lock().expect("metrics state");
        if let Some(open) = s.current.as_mut() {
            open.retries += 1;
        }
    }

    fn trial_timed_out(&self, _timeout: &TrialTimeoutReport) {
        let mut s = self.state.lock().expect("metrics state");
        if let Some(open) = s.current.as_mut() {
            open.timeouts += 1;
        }
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip representation; always a valid JSON number.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn noop_ctx_constructs() {
        let ctx = Ctx::noop();
        assert!(ctx.checkpoint.is_none());
        ctx.probe.trial_done(Duration::ZERO);
    }

    #[test]
    fn fanout_forwards_to_all() {
        struct Counter(AtomicUsize);
        impl Probe for Counter {
            fn trial_done(&self, _busy: Duration) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let a = Counter(AtomicUsize::new(0));
        let b = Counter(AtomicUsize::new(0));
        let fan = Fanout::new(vec![&a, &b]);
        fan.trial_done(Duration::ZERO);
        fan.trial_done(Duration::ZERO);
        assert_eq!(a.0.load(Ordering::Relaxed), 2);
        assert_eq!(b.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn metrics_recorder_tracks_figures() {
        let rec = MetricsRecorder::new(4);
        rec.figure_start("fig4");
        rec.trial_done(Duration::from_millis(40));
        rec.trial_done(Duration::from_millis(40));
        rec.trial_failed(&TrialFailureReport {
            experiment: "density-error",
            density_index: 0,
            beacons: 20,
            trial: 2,
            seed: 7,
            message: "boom".into(),
        });
        rec.figure_done("fig4", Duration::from_millis(100));
        let figs = rec.figures();
        assert_eq!(figs.len(), 1);
        let m = &figs[0];
        assert_eq!(m.figure, "fig4");
        assert_eq!(m.trials, 2);
        assert_eq!(m.failures, 1);
        assert!((m.wall_seconds - 0.1).abs() < 1e-9);
        assert!((m.trials_per_sec - 20.0).abs() < 1e-6);
        // busy 80ms over 100ms x 4 workers = 0.2 utilization.
        assert!((m.worker_utilization - 0.2).abs() < 1e-6);
    }

    #[test]
    fn json_output_is_wellformed() {
        let rec = MetricsRecorder::new(2);
        rec.figure_start("fig\"odd\\name");
        rec.trial_done(Duration::from_millis(5));
        rec.figure_done("fig\"odd\\name", Duration::from_millis(10));
        let json = rec.to_json();
        assert!(json.contains("\"fig\\\"odd\\\\name\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"figures\": ["));
        // Balanced braces/brackets (cheap well-formedness check; the CLI
        // test does a full structural parse).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_numbers_are_plain() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert_eq!(json_f64(f64::INFINITY), "0.0");
    }

    fn failure(seed: u64) -> TrialFailureReport {
        TrialFailureReport {
            experiment: "density-error",
            density_index: 0,
            beacons: 20,
            trial: 1,
            seed,
            message: "boom".into(),
        }
    }

    #[test]
    fn fanout_preserves_event_and_probe_order() {
        use std::sync::Mutex;
        struct Tagged<'a> {
            tag: &'static str,
            log: &'a Mutex<Vec<String>>,
        }
        impl Probe for Tagged<'_> {
            fn figure_start(&self, id: &str) {
                self.log
                    .lock()
                    .unwrap()
                    .push(format!("{}:start:{id}", self.tag));
            }
            fn trial_done(&self, _busy: Duration) {
                self.log.lock().unwrap().push(format!("{}:done", self.tag));
            }
            fn trial_failed(&self, f: &TrialFailureReport) {
                self.log
                    .lock()
                    .unwrap()
                    .push(format!("{}:failed:{}", self.tag, f.trial));
            }
            fn figure_done(&self, id: &str, _wall: Duration) {
                self.log
                    .lock()
                    .unwrap()
                    .push(format!("{}:end:{id}", self.tag));
            }
        }
        let log = Mutex::new(Vec::new());
        let a = Tagged {
            tag: "a",
            log: &log,
        };
        let b = Tagged {
            tag: "b",
            log: &log,
        };
        let fan = Fanout::new(vec![&a, &b]);
        fan.figure_start("fig4");
        fan.trial_done(Duration::ZERO);
        fan.trial_failed(&failure(7));
        fan.figure_done("fig4", Duration::ZERO);
        // Events arrive in emission order; within an event, probes fire in
        // registration order.
        assert_eq!(
            *log.lock().unwrap(),
            vec![
                "a:start:fig4",
                "b:start:fig4",
                "a:done",
                "b:done",
                "a:failed:1",
                "b:failed:1",
                "a:end:fig4",
                "b:end:fig4",
            ]
        );
    }

    #[test]
    fn failure_report_seed_hex_round_trips() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let text = failure(seed).to_string();
            let token = text
                .split_whitespace()
                .find(|t| t.starts_with("0x"))
                .expect("hex seed in display")
                .trim_end_matches(')');
            let parsed =
                u64::from_str_radix(token.trim_start_matches("0x"), 16).expect("seed parses back");
            assert_eq!(parsed, seed, "display: {text}");
        }
    }

    #[test]
    fn progress_probe_counts_successes() {
        let p = ProgressProbe::new();
        p.sweep_start("density-error", 20, 3);
        p.trial_done(Duration::ZERO);
        p.trial_done(Duration::ZERO);
        let s = p.state.lock().unwrap();
        assert_eq!(s.done, 2);
        assert_eq!(s.failed, 0);
        assert_eq!(s.total, 3);
        assert_eq!(s.settled(), 2);
    }

    #[test]
    fn progress_probe_counts_failures_toward_progress() {
        let p = ProgressProbe::new();
        p.sweep_start("density-error", 20, 4);
        p.trial_done(Duration::ZERO);
        p.trial_failed(&failure(0xBAD));
        p.trial_done(Duration::ZERO);
        p.trial_done(Duration::ZERO);
        {
            let s = p.state.lock().unwrap();
            assert_eq!(s.done, 3);
            assert_eq!(s.failed, 1);
            // The sweep is complete: 3 successes + 1 failure = 4 trials,
            // so the progress line converged to total (the bug this guards
            // against left settled() stuck at done < total forever).
            assert_eq!(s.settled(), s.total);
        }
        p.sweep_done("density-error", 20, Duration::from_millis(10), false);
        // A new sweep starts from a clean slate.
        p.sweep_start("density-error", 40, 2);
        let s = p.state.lock().unwrap();
        assert_eq!((s.done, s.failed, s.total), (0, 0, 2));
    }

    #[test]
    fn metrics_json_records_failed_seeds() {
        let rec = MetricsRecorder::new(1);
        rec.figure_start("fig4");
        rec.trial_done(Duration::from_millis(1));
        rec.trial_failed(&failure(0xDEAD_BEEF));
        rec.trial_failed(&failure(0x1234));
        rec.figure_done("fig4", Duration::from_millis(10));
        let figs = rec.figures();
        assert_eq!(figs[0].failures, 2);
        assert_eq!(figs[0].failed_seeds, vec![0xDEAD_BEEF, 0x1234]);
        let json = rec.to_json();
        assert!(
            json.contains("\"failed_seeds\": [\"0x00000000deadbeef\", \"0x0000000000001234\"]"),
            "{json}"
        );
    }

    #[test]
    fn metrics_recorder_counts_retries_and_timeouts() {
        let rec = MetricsRecorder::new(1);
        rec.figure_start("robustness-failure");
        rec.trial_timed_out(&TrialTimeoutReport {
            experiment: "fault-robustness",
            density_index: 0,
            beacons: 20,
            trial: 3,
            attempt: 0,
            limit: Duration::from_secs(30),
        });
        rec.trial_retried(&TrialRetryReport {
            experiment: "fault-robustness",
            density_index: 0,
            beacons: 20,
            trial: 3,
            failed_attempt: 0,
            fault: "timed out after 30s".into(),
            backoff: Duration::from_millis(250),
        });
        rec.trial_done(Duration::from_millis(2));
        rec.figure_done("robustness-failure", Duration::from_millis(10));
        let m = &rec.figures()[0];
        assert_eq!((m.retries, m.timeouts, m.failures), (1, 1, 0));
        let json = rec.to_json();
        assert!(json.contains("\"retries\": 1"), "{json}");
        assert!(json.contains("\"timeouts\": 1"), "{json}");
    }

    #[test]
    fn fanout_forwards_new_events() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Counter {
            retries: AtomicUsize,
            timeouts: AtomicUsize,
            opens: AtomicUsize,
        }
        impl Probe for Counter {
            fn trial_retried(&self, _r: &TrialRetryReport) {
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            fn trial_timed_out(&self, _t: &TrialTimeoutReport) {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            fn checkpoint_opened(&self, _path: &Path, _open: &CheckpointOpen) {
                self.opens.fetch_add(1, Ordering::Relaxed);
            }
        }
        let a = Counter::default();
        let b = Counter::default();
        let fan = Fanout::new(vec![&a, &b]);
        fan.trial_retried(&TrialRetryReport {
            experiment: "fault-robustness",
            density_index: 0,
            beacons: 20,
            trial: 0,
            failed_attempt: 0,
            fault: "boom".into(),
            backoff: Duration::ZERO,
        });
        fan.trial_timed_out(&TrialTimeoutReport {
            experiment: "fault-robustness",
            density_index: 0,
            beacons: 20,
            trial: 0,
            attempt: 1,
            limit: Duration::from_secs(1),
        });
        fan.checkpoint_opened(Path::new("x.ckpt"), &CheckpointOpen::Created);
        for c in [&a, &b] {
            assert_eq!(c.retries.load(Ordering::Relaxed), 1);
            assert_eq!(c.timeouts.load(Ordering::Relaxed), 1);
            assert_eq!(c.opens.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn retry_and_timeout_reports_display_context() {
        let r = TrialRetryReport {
            experiment: "fault-robustness",
            density_index: 2,
            beacons: 60,
            trial: 9,
            failed_attempt: 1,
            fault: "timed out after 30s".into(),
            backoff: Duration::from_millis(500),
        };
        let text = r.to_string();
        for needle in [
            "fault-robustness",
            "trial 9",
            "#2",
            "60",
            "attempt 1",
            "retrying",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        let t = TrialTimeoutReport {
            experiment: "fault-robustness",
            density_index: 2,
            beacons: 60,
            trial: 9,
            attempt: 0,
            limit: Duration::from_secs(30),
        };
        let text = t.to_string();
        for needle in ["fault-robustness", "trial 9", "watchdog", "30s"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn ctx_policy_defaults_inert() {
        let ctx = Ctx::noop();
        assert!(!ctx.policy.is_active());
        let policy = RunPolicy {
            retries: 2,
            ..RunPolicy::default()
        };
        let ctx = ctx.with_policy(policy);
        assert!(ctx.policy.is_active());
        assert_eq!(ctx.policy.retries, 2);
    }

    #[test]
    fn failure_report_displays_context() {
        let r = TrialFailureReport {
            experiment: "density-error",
            density_index: 3,
            beacons: 120,
            trial: 17,
            seed: 0xDEAD_BEEF,
            message: "index out of bounds".into(),
        };
        let text = r.to_string();
        for needle in [
            "density-error",
            "17",
            "#3",
            "120",
            "0x00000000deadbeef",
            "index out of bounds",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
