//! Named regenerators: one entry point per table/figure of the paper.
//!
//! Each function runs the corresponding experiment at the given
//! [`SimConfig`] and returns render-ready [`Figure`]s (long-format CSV via
//! [`Figure::to_csv`], aligned text via [`Figure::render`]). The mapping
//! to the paper is recorded in DESIGN.md; paper-vs-measured outcomes live
//! in EXPERIMENTS.md.

use crate::config::{AlgorithmKind, PaperConfig, SimConfig};
use crate::experiments::{
    density_error, fault_robustness, granularity, improvement, localizer_compare, multi_beacon,
    multilat_placement, net_sim, overlap_bound, robustness, solution_space,
};
use crate::progress::Ctx;
use crate::report::{Figure, Series, SeriesPoint};
use abp_stats::ConfidenceInterval;
use std::time::Instant;

/// Runs `body` bracketed by `figure_start`/`figure_done` probe events.
fn timed<T>(ctx: Ctx<'_>, id: &str, body: impl FnOnce() -> T) -> T {
    ctx.probe.figure_start(id);
    let started = Instant::now();
    let out = body();
    ctx.probe.figure_done(id, started.elapsed());
    out
}

/// Table 1 — the simulation parameters, rendered.
pub fn table1() -> String {
    PaperConfig.to_string()
}

/// Figure 1 — beacon density vs granularity of localization regions.
///
/// Quantified as a sweep of uniform `k × k` beacon grids: region count,
/// mean region size, and mean error per grid.
pub fn fig1(cfg: &SimConfig, per_sides: &[usize]) -> Figure {
    fig1_with(cfg, per_sides, Ctx::noop())
}

/// [`fig1`] with observability: figure/sweep events go to `ctx.probe`.
pub fn fig1_with(cfg: &SimConfig, per_sides: &[usize], ctx: Ctx<'_>) -> Figure {
    timed(ctx, "fig1", || fig1_inner(cfg, per_sides, ctx))
}

fn fig1_inner(cfg: &SimConfig, per_sides: &[usize], ctx: Ctx<'_>) -> Figure {
    let rows = granularity::run_with(cfg, per_sides, ctx);
    let exact = |v: f64| ConfidenceInterval {
        estimate: v,
        half_width: 0.0,
    };
    Figure::new(
        "fig1",
        "Beacon density vs granularity of localization regions (uniform k x k grids, ideal radio)",
        "beacons",
        "regions / points-per-region / mean LE (m)",
    )
    .with_series(Series::new(
        "regions",
        rows.iter()
            .map(|r| SeriesPoint {
                x: r.beacons as f64,
                y: exact(r.regions as f64),
            })
            .collect(),
    ))
    .with_series(Series::new(
        "mean-region-size",
        rows.iter()
            .map(|r| SeriesPoint {
                x: r.beacons as f64,
                y: exact(r.mean_region_size),
            })
            .collect(),
    ))
    .with_series(Series::new(
        "mean-error",
        rows.iter()
            .map(|r| SeriesPoint {
                x: r.beacons as f64,
                y: exact(r.mean_error),
            })
            .collect(),
    ))
}

fn density_series(cfg: &SimConfig, noise: f64, name: &str, ctx: Ctx<'_>) -> Series {
    // Failed trials were already reported through the probe; the series
    // aggregates the survivors.
    Series::new(
        name,
        density_error::run_sweep(cfg, noise, ctx)
            .points
            .iter()
            .map(|p| SeriesPoint {
                x: p.density,
                y: p.mean_error,
            })
            .collect(),
    )
}

/// Figure 4 — mean localization error vs beacon density under ideal
/// propagation.
pub fn fig4(cfg: &SimConfig) -> Figure {
    fig4_with(cfg, Ctx::noop())
}

/// [`fig4`] with observability and checkpointing via `ctx`.
pub fn fig4_with(cfg: &SimConfig, ctx: Ctx<'_>) -> Figure {
    timed(ctx, "fig4", || {
        Figure::new(
            "fig4",
            "Mean localization error vs beacon density (Ideal)",
            "density (/m^2)",
            "mean localization error (m)",
        )
        .with_series(density_series(cfg, 0.0, "Ideal", ctx))
    })
}

/// Figure 6 — mean localization error vs beacon density across the
/// paper's noise levels (0, 0.1, 0.3, 0.5).
pub fn fig6(cfg: &SimConfig) -> Figure {
    fig6_with(cfg, Ctx::noop())
}

/// [`fig6`] with observability and checkpointing via `ctx`.
pub fn fig6_with(cfg: &SimConfig, ctx: Ctx<'_>) -> Figure {
    timed(ctx, "fig6", || {
        let mut fig = Figure::new(
            "fig6",
            "Mean localization error vs beacon density (Noise)",
            "density (/m^2)",
            "mean localization error (m)",
        );
        for &noise in &PaperConfig::NOISE_LEVELS {
            let name = if noise == 0.0 {
                "Ideal".to_string()
            } else {
                format!("Noise={noise}")
            };
            fig.series.push(density_series(cfg, noise, &name, ctx));
        }
        fig
    })
}

/// Figure 5 — improvement in mean and median localization error vs beacon
/// density for Random, Max and Grid under ideal propagation. Returns the
/// (mean, median) figure pair.
pub fn fig5(cfg: &SimConfig) -> (Figure, Figure) {
    fig5_with(cfg, Ctx::noop())
}

/// [`fig5`] with observability and checkpointing via `ctx`.
pub fn fig5_with(cfg: &SimConfig, ctx: Ctx<'_>) -> (Figure, Figure) {
    timed(ctx, "fig5", || fig5_inner(cfg, ctx))
}

fn fig5_inner(cfg: &SimConfig, ctx: Ctx<'_>) -> (Figure, Figure) {
    let curves = improvement::run_sweep(cfg, 0.0, &AlgorithmKind::PAPER, ctx).curves;
    let mut mean_fig = Figure::new(
        "fig5-mean",
        "Improvement in mean error vs beacon density (Ideal)",
        "density (/m^2)",
        "improvement in mean error (m)",
    );
    let mut median_fig = Figure::new(
        "fig5-median",
        "Improvement in median error vs beacon density (Ideal)",
        "density (/m^2)",
        "improvement in median error (m)",
    );
    for curve in &curves {
        let cap = capitalized(curve.algorithm.name());
        mean_fig.series.push(Series::new(
            cap.clone(),
            curve
                .points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.density,
                    y: p.mean_improvement,
                })
                .collect(),
        ));
        median_fig.series.push(Series::new(
            cap,
            curve
                .points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.density,
                    y: p.median_improvement,
                })
                .collect(),
        ));
    }
    (mean_fig, median_fig)
}

/// Figures 7, 8, 9 — one algorithm's improvement in mean and median error
/// across the paper's noise levels. `fig_id` is 7 (Random), 8 (Max) or
/// 9 (Grid); other algorithms are accepted for ablations.
pub fn fig_noise(cfg: &SimConfig, algorithm: AlgorithmKind) -> (Figure, Figure) {
    fig_noise_with(cfg, algorithm, Ctx::noop())
}

/// [`fig_noise`] with observability and checkpointing via `ctx`.
pub fn fig_noise_with(cfg: &SimConfig, algorithm: AlgorithmKind, ctx: Ctx<'_>) -> (Figure, Figure) {
    let fig_id = match algorithm {
        AlgorithmKind::Random => "fig7",
        AlgorithmKind::Max => "fig8",
        AlgorithmKind::Grid => "fig9",
        AlgorithmKind::WeightedGrid => "figx-weighted-grid",
        AlgorithmKind::LocusBreak => "figx-locus-break",
    };
    timed(ctx, fig_id, || fig_noise_inner(cfg, algorithm, fig_id, ctx))
}

fn fig_noise_inner(
    cfg: &SimConfig,
    algorithm: AlgorithmKind,
    fig_id: &str,
    ctx: Ctx<'_>,
) -> (Figure, Figure) {
    let cap = capitalized(algorithm.name());
    let mut mean_fig = Figure::new(
        format!("{fig_id}-mean"),
        format!("Performance of the {cap} algorithm with Noise (mean error)"),
        "density (/m^2)",
        "improvement in mean error (m)",
    );
    let mut median_fig = Figure::new(
        format!("{fig_id}-median"),
        format!("Performance of the {cap} algorithm with Noise (median error)"),
        "density (/m^2)",
        "improvement in median error (m)",
    );
    for &noise in &PaperConfig::NOISE_LEVELS {
        let name = if noise == 0.0 {
            "Ideal".to_string()
        } else {
            format!("Noise={noise}")
        };
        let curves = improvement::run_sweep(cfg, noise, &[algorithm], ctx).curves;
        let curve = &curves[0];
        mean_fig.series.push(Series::new(
            name.clone(),
            curve
                .points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.density,
                    y: p.mean_improvement,
                })
                .collect(),
        ));
        median_fig.series.push(Series::new(
            name,
            curve
                .points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.density,
                    y: p.median_improvement,
                })
                .collect(),
        ));
    }
    (mean_fig, median_fig)
}

/// The §2.2 error-bound analysis: max and mean centroid error (as a
/// fraction of the beacon separation `d`) vs range-overlap ratio `R/d`.
pub fn bound(cfg: &overlap_bound::BoundConfig) -> Figure {
    bound_with(cfg, Ctx::noop())
}

/// [`bound`] with figure timing via `ctx`.
pub fn bound_with(cfg: &overlap_bound::BoundConfig, ctx: Ctx<'_>) -> Figure {
    timed(ctx, "bound", || bound_inner(cfg))
}

fn bound_inner(cfg: &overlap_bound::BoundConfig) -> Figure {
    let points = overlap_bound::run(cfg);
    let exact = |v: f64| ConfidenceInterval {
        estimate: v,
        half_width: 0.0,
    };
    Figure::new(
        "bound",
        "Centroid error vs range-overlap ratio R/d (uniform grid, interior)",
        "R/d",
        "error / d",
    )
    .with_series(Series::new(
        "max-error/d",
        points
            .iter()
            .map(|p| SeriesPoint {
                x: p.ratio,
                y: exact(p.max_error_over_d),
            })
            .collect(),
    ))
    .with_series(Series::new(
        "mean-error/d",
        points
            .iter()
            .map(|p| SeriesPoint {
                x: p.ratio,
                y: exact(p.mean_error_over_d),
            })
            .collect(),
    ))
}

/// Ablation: the paper's three algorithms plus the workspace extensions
/// (weighted grid, locus-break), compared on mean-error improvement at one
/// noise level.
pub fn ablation_algorithms(cfg: &SimConfig, noise: f64) -> Figure {
    ablation_algorithms_with(cfg, noise, Ctx::noop())
}

/// [`ablation_algorithms`] with observability and checkpointing via `ctx`.
pub fn ablation_algorithms_with(cfg: &SimConfig, noise: f64, ctx: Ctx<'_>) -> Figure {
    timed(ctx, "ablation-algorithms", || {
        ablation_algorithms_inner(cfg, noise, ctx)
    })
}

fn ablation_algorithms_inner(cfg: &SimConfig, noise: f64, ctx: Ctx<'_>) -> Figure {
    let all = [
        AlgorithmKind::Random,
        AlgorithmKind::Max,
        AlgorithmKind::Grid,
        AlgorithmKind::WeightedGrid,
        AlgorithmKind::LocusBreak,
    ];
    let curves = improvement::run_sweep(cfg, noise, &all, ctx).curves;
    let mut fig = Figure::new(
        "ablation-algorithms",
        format!("All placement algorithms, improvement in mean error (noise {noise})"),
        "density (/m^2)",
        "improvement in mean error (m)",
    );
    for curve in &curves {
        fig.series.push(Series::new(
            capitalized(curve.algorithm.name()),
            curve
                .points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.density,
                    y: p.mean_improvement,
                })
                .collect(),
        ));
    }
    fig
}

/// Ablation: the three readings of the noise model's `u` draw
/// ([`abp_radio::NoiseStyle`]), compared on mean error vs density at one
/// noise level, with the ideal curve for reference. Documents the
/// noise-model interpretation question discussed in EXPERIMENTS.md.
pub fn ablation_noise_styles(cfg: &SimConfig, noise: f64) -> Figure {
    ablation_noise_styles_with(cfg, noise, Ctx::noop())
}

/// [`ablation_noise_styles`] with observability and checkpointing via
/// `ctx`.
pub fn ablation_noise_styles_with(cfg: &SimConfig, noise: f64, ctx: Ctx<'_>) -> Figure {
    use abp_radio::NoiseStyle;
    timed(ctx, "ablation-noise-styles", || {
        let mut fig = Figure::new(
            "ablation-noise-styles",
            format!("Noise-model readings, mean error vs density (noise {noise})"),
            "density (/m^2)",
            "mean localization error (m)",
        );
        fig.series.push(density_series(cfg, 0.0, "Ideal", ctx));
        for style in [
            NoiseStyle::Speckled,
            NoiseStyle::CoherentRadius,
            NoiseStyle::Lossy,
        ] {
            let mut styled = cfg.clone();
            styled.noise_style = style;
            fig.series
                .push(density_series(&styled, noise, &style.to_string(), ctx));
        }
        fig
    })
}

/// §3.1 generalization: Grid's improvement when it sees only a fraction
/// of the survey, and when measurements pass through a noisy GPS.
pub fn robustness(cfg: &SimConfig, beacons: usize) -> (Figure, Figure) {
    robustness_with(cfg, beacons, Ctx::noop())
}

/// [`robustness()`] with observability via `ctx`.
pub fn robustness_with(cfg: &SimConfig, beacons: usize, ctx: Ctx<'_>) -> (Figure, Figure) {
    let fractions = [0.02, 0.05, 0.1, 0.25, 0.5, 1.0];
    let sigmas = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];
    let to_points = |pts: &[robustness::RobustnessPoint]| {
        pts.iter()
            .map(|p| SeriesPoint {
                x: p.x,
                y: p.mean_improvement,
            })
            .collect()
    };
    let exploration = timed(ctx, "robustness-exploration", || {
        Figure::new(
            "robustness-exploration",
            format!("Grid improvement vs exploration fraction ({beacons} beacons, ideal radio)"),
            "fraction of lattice measured",
            "improvement in mean error (m)",
        )
        .with_series(Series::new(
            "Grid",
            to_points(&robustness::exploration_sweep_with(
                cfg, beacons, &fractions, ctx,
            )),
        ))
    });
    let gps = timed(ctx, "robustness-gps", || {
        Figure::new(
            "robustness-gps",
            format!("Grid improvement vs GPS error ({beacons} beacons, ideal radio)"),
            "GPS sigma (m)",
            "improvement in mean error (m)",
        )
        .with_series(Series::new(
            "Grid",
            to_points(&robustness::gps_noise_sweep_with(
                cfg, beacons, &sigmas, ctx,
            )),
        ))
    });
    (exploration, gps)
}

/// §6 future work: localization error and placement-algorithm ranking
/// under injected faults — permanent beacon death (first figure) and
/// Gilbert–Elliott burst loss (second figure), each layered with a light
/// survey-GPS outage.
pub fn faults(cfg: &SimConfig, beacons: usize) -> (Figure, Figure) {
    faults_with(cfg, beacons, Ctx::noop())
}

/// [`faults()`] with observability, checkpointing, and retry policy via
/// `ctx`.
pub fn faults_with(cfg: &SimConfig, beacons: usize, ctx: Ctx<'_>) -> (Figure, Figure) {
    let failure = fault_figure(
        cfg,
        &fault_robustness::FaultSweepSpec::failure_axis(beacons),
        "robustness-failure",
        format!("Error and placement gains vs beacon failure rate ({beacons} beacons)"),
        "fraction of beacons dead",
        ctx,
    );
    let burst = fault_figure(
        cfg,
        &fault_robustness::FaultSweepSpec::burst_axis(beacons),
        "robustness-burst",
        format!("Error and placement gains vs burst-loss intensity ({beacons} beacons)"),
        "stationary bad-state fraction",
        ctx,
    );
    (failure, burst)
}

fn fault_figure(
    cfg: &SimConfig,
    spec: &fault_robustness::FaultSweepSpec,
    id: &str,
    title: String,
    x_label: &str,
    ctx: Ctx<'_>,
) -> Figure {
    timed(ctx, id, || {
        let outcome = fault_robustness::run_sweep(cfg, 0.0, spec, ctx);
        let mut fig = Figure::new(id, title, x_label, "meters");
        fig.series.push(Series::new(
            "Error",
            outcome
                .points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.x,
                    y: p.mean_error,
                })
                .collect(),
        ));
        for (ai, kind) in spec.algorithms.iter().enumerate() {
            fig.series.push(Series::new(
                kind.name(),
                outcome
                    .points
                    .iter()
                    .map(|p| SeriesPoint {
                        x: p.x,
                        y: p.improvements[ai],
                    })
                    .collect(),
            ));
        }
        fig
    })
}

/// §1 contribution 3: the solution-space density sweep. `threshold` is
/// the relative error reduction that counts as "satisfying".
pub fn solution_space(cfg: &SimConfig, noise: f64, candidates: usize, threshold: f64) -> Figure {
    solution_space_with(cfg, noise, candidates, threshold, Ctx::noop())
}

/// [`solution_space()`] with figure timing via `ctx`.
pub fn solution_space_with(
    cfg: &SimConfig,
    noise: f64,
    candidates: usize,
    threshold: f64,
    ctx: Ctx<'_>,
) -> Figure {
    timed(ctx, "solution-space", || {
        solution_space_inner(cfg, noise, candidates, threshold)
    })
}

fn solution_space_inner(cfg: &SimConfig, noise: f64, candidates: usize, threshold: f64) -> Figure {
    let points = solution_space::run(cfg, noise, candidates, threshold);
    let mut fig = Figure::new(
        "solution-space",
        format!(
            "Solution-space density (noise {noise}, {candidates} candidates, \
             satisfying = -{:.0}% mean error)",
            threshold * 100.0
        ),
        "density (/m^2)",
        "fraction / meters",
    );
    fig.series.push(Series::new(
        "satisfying-fraction",
        points
            .iter()
            .map(|p| SeriesPoint {
                x: p.density,
                y: p.satisfying_fraction,
            })
            .collect(),
    ));
    fig.series.push(Series::new(
        "positive-fraction",
        points
            .iter()
            .map(|p| SeriesPoint {
                x: p.density,
                y: p.positive_fraction,
            })
            .collect(),
    ));
    fig.series.push(Series::new(
        "best-improvement (m)",
        points
            .iter()
            .map(|p| SeriesPoint {
                x: p.density,
                y: p.best_improvement,
            })
            .collect(),
    ));
    fig
}

/// §6 future work: gains from adding `k` beacons at once — greedy with
/// re-measurement vs one-shot top-k (Grid algorithm).
pub fn multi_beacon(cfg: &SimConfig, noise: f64, beacons: usize, ks: &[usize]) -> Figure {
    multi_beacon_with(cfg, noise, beacons, ks, Ctx::noop())
}

/// [`multi_beacon()`] with figure timing via `ctx`.
pub fn multi_beacon_with(
    cfg: &SimConfig,
    noise: f64,
    beacons: usize,
    ks: &[usize],
    ctx: Ctx<'_>,
) -> Figure {
    timed(ctx, "multi-beacon", || {
        multi_beacon_inner(cfg, noise, beacons, ks)
    })
}

fn multi_beacon_inner(cfg: &SimConfig, noise: f64, beacons: usize, ks: &[usize]) -> Figure {
    let points = multi_beacon::run(cfg, noise, beacons, ks);
    let mut fig = Figure::new(
        "multi-beacon",
        format!("Adding k beacons at once ({beacons} initial beacons, noise {noise})"),
        "beacons added (k)",
        "total improvement in mean error (m)",
    );
    fig.series.push(Series::new(
        "greedy (re-measure)",
        points
            .iter()
            .map(|p| SeriesPoint {
                x: p.k as f64,
                y: p.greedy,
            })
            .collect(),
    ));
    fig.series.push(Series::new(
        "one-shot top-k",
        points
            .iter()
            .map(|p| SeriesPoint {
                x: p.k as f64,
                y: p.oneshot,
            })
            .collect(),
    ));
    fig
}

/// Estimator ablation: mean error vs density for the paper's centroid,
/// the weighted centroid, the locus centroid, and multilateration, on
/// identical fields. Point-major surveys — keep the step coarse.
pub fn localizers(cfg: &SimConfig, range_sigma: f64) -> Figure {
    localizers_with(cfg, range_sigma, Ctx::noop())
}

/// [`localizers`] with figure timing via `ctx`.
pub fn localizers_with(cfg: &SimConfig, range_sigma: f64, ctx: Ctx<'_>) -> Figure {
    timed(ctx, "localizers", || localizers_inner(cfg, range_sigma))
}

fn localizers_inner(cfg: &SimConfig, range_sigma: f64) -> Figure {
    let points = localizer_compare::run(cfg, range_sigma);
    let mut fig = Figure::new(
        "localizers",
        format!("Localizer comparison, mean error vs density (range sigma {range_sigma})"),
        "density (/m^2)",
        "mean localization error (m)",
    );
    for (k, name) in localizer_compare::LOCALIZER_NAMES.iter().enumerate() {
        fig.series.push(Series::new(
            *name,
            points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.density,
                    y: p.mean_errors[k],
                })
                .collect(),
        ));
    }
    fig
}

/// §6 future work: the paper's algorithms recast for multilateration
/// localization (mean-error improvement only; the median figure mirrors
/// it).
pub fn multilateration(cfg: &SimConfig, range_sigma: f64) -> Figure {
    multilateration_with(cfg, range_sigma, Ctx::noop())
}

/// [`multilateration`] with figure timing via `ctx`.
pub fn multilateration_with(cfg: &SimConfig, range_sigma: f64, ctx: Ctx<'_>) -> Figure {
    timed(ctx, "multilateration", || {
        multilateration_inner(cfg, range_sigma)
    })
}

fn multilateration_inner(cfg: &SimConfig, range_sigma: f64) -> Figure {
    let curves = multilat_placement::run(cfg, range_sigma, &AlgorithmKind::PAPER);
    let mut fig = Figure::new(
        "multilateration",
        format!("Improvement in mean error under multilateration (range sigma {range_sigma})"),
        "density (/m^2)",
        "improvement in mean error (m)",
    );
    for curve in &curves {
        fig.series.push(Series::new(
            capitalized(curve.algorithm.name()),
            curve
                .points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.density,
                    y: p.mean_improvement,
                })
                .collect(),
        ));
    }
    fig
}

/// Converts a net sweep's two metric streams into figure series.
fn net_series(outcome: &net_sim::NetSweepOutcome, primary: &str, secondary: &str) -> [Series; 2] {
    [
        Series::new(
            primary,
            outcome
                .points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.x,
                    y: p.primary,
                })
                .collect(),
        ),
        Series::new(
            secondary,
            outcome
                .points
                .iter()
                .map(|p| SeriesPoint {
                    x: p.x,
                    y: p.secondary,
                })
                .collect(),
        ),
    ]
}

/// Time-domain axis 1 — localization error vs beacon interval `T`
/// (`abp-net` schedule surveyed through the §2.2 message-counting
/// oracle).
pub fn net_interval(cfg: &SimConfig, axes: &net_sim::NetAxes) -> Figure {
    net_interval_with(cfg, axes, Ctx::noop())
}

/// [`net_interval`] with observability via `ctx`.
pub fn net_interval_with(cfg: &SimConfig, axes: &net_sim::NetAxes, ctx: Ctx<'_>) -> Figure {
    timed(ctx, net_sim::NET_INTERVAL, || {
        let outcome = net_sim::interval_sweep(cfg, axes, ctx);
        let [a, b] = net_series(&outcome, "mean-error (m)", "unheard-fraction");
        Figure::new(
            net_sim::NET_INTERVAL,
            format!(
                "Localization error vs beacon interval ({} beacons, listen {} s, CMthresh {})",
                axes.beacons, axes.interval.listen, axes.interval.cmthresh
            ),
            "beacon period T (s)",
            "mean localization error (m) / unheard fraction",
        )
        .with_series(a)
        .with_series(b)
    })
}

/// Time-domain axis 2 — collision rate vs beacon density on a contended
/// CSMA channel.
pub fn net_collisions(cfg: &SimConfig, axes: &net_sim::NetAxes) -> Figure {
    net_collisions_with(cfg, axes, Ctx::noop())
}

/// [`net_collisions`] with observability via `ctx`.
pub fn net_collisions_with(cfg: &SimConfig, axes: &net_sim::NetAxes, ctx: Ctx<'_>) -> Figure {
    timed(ctx, net_sim::NET_COLLISIONS, || {
        let outcome = net_sim::collision_sweep(cfg, axes, ctx);
        let [a, b] = net_series(&outcome, "collision-rate", "backoffs-per-message");
        Figure::new(
            net_sim::NET_COLLISIONS,
            format!(
                "Collision rate vs beacon density (period {} s, airtime {} ms)",
                axes.collision.period,
                axes.collision.airtime * 1e3
            ),
            "density (/m^2)",
            "fraction / count",
        )
        .with_series(a)
        .with_series(b)
    })
}

/// Time-domain axis 3 — network lifetime vs receiver duty cycle on a
/// finite battery.
pub fn net_lifetime(cfg: &SimConfig, axes: &net_sim::NetAxes) -> Figure {
    net_lifetime_with(cfg, axes, Ctx::noop())
}

/// [`net_lifetime`] with observability via `ctx`.
pub fn net_lifetime_with(cfg: &SimConfig, axes: &net_sim::NetAxes, ctx: Ctx<'_>) -> Figure {
    timed(ctx, net_sim::NET_LIFETIME, || {
        let outcome = net_sim::lifetime_sweep(cfg, axes, ctx);
        let [a, b] = net_series(&outcome, "first-death (s)", "alive-fraction");
        Figure::new(
            net_sim::NET_LIFETIME,
            format!(
                "Network lifetime vs duty cycle ({} beacons, battery {} J)",
                axes.beacons, axes.lifetime.battery
            ),
            "receiver duty cycle",
            "seconds / fraction",
        )
        .with_series(a)
        .with_series(b)
    })
}

fn capitalized(name: &str) -> String {
    let mut chars = name.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            trials: 6,
            beacon_counts: vec![30, 120, 240],
            ..SimConfig::tiny()
        }
    }

    #[test]
    fn table1_contains_parameters() {
        let t = table1();
        assert!(t.contains("Side"));
        assert!(t.contains("400"));
    }

    #[test]
    fn fig1_has_three_series() {
        let fig = fig1(&cfg(), &[2, 3]);
        assert_eq!(fig.series.len(), 3);
        assert_eq!(fig.series[0].points.len(), 2);
        assert!(fig.to_csv().contains("fig1,regions,4,"));
    }

    #[test]
    fn fig4_shape() {
        let fig = fig4(&cfg());
        assert_eq!(fig.series.len(), 1);
        let pts = &fig.series[0].points;
        assert_eq!(pts.len(), 3);
        assert!(pts[0].y.estimate > pts[2].y.estimate, "error must fall");
    }

    #[test]
    fn fig5_pair_has_paper_algorithms() {
        let (mean_fig, median_fig) = fig5(&cfg());
        let names: Vec<&str> = mean_fig.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["Random", "Max", "Grid"]);
        assert_eq!(median_fig.series.len(), 3);
    }

    #[test]
    fn fig_noise_ids_match_paper() {
        let mut c = cfg();
        c.beacon_counts = vec![60];
        c.trials = 3;
        let (mean_fig, median_fig) = fig_noise(&c, AlgorithmKind::Random);
        assert_eq!(mean_fig.id, "fig7-mean");
        assert_eq!(median_fig.id, "fig7-median");
        assert_eq!(mean_fig.series.len(), 4); // 4 noise levels
    }

    #[test]
    fn fig4_with_records_metrics() {
        let c = cfg();
        let recorder = crate::progress::MetricsRecorder::new(c.threads.max(1));
        let fig = fig4_with(&c, Ctx::new(&recorder));
        assert_eq!(fig.series.len(), 1);
        let metrics = recorder.figures();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].figure, "fig4");
        // 3 densities × 6 trials, all observed.
        assert_eq!(metrics[0].trials, 18);
        assert_eq!(metrics[0].failures, 0);
        assert!(metrics[0].trials_per_sec > 0.0);
        let json = recorder.to_json();
        assert!(json.contains("\"figure\": \"fig4\""));
        assert!(json.contains("\"trials\": 18"));
    }

    #[test]
    fn net_figures_have_two_series_each() {
        let mut c = cfg();
        c.trials = 2;
        c.beacon_counts = vec![60];
        let mut axes = crate::experiments::net_sim::NetAxes::for_config(&c);
        axes.interval.duration = 4.0;
        axes.collision.duration = 4.0;
        axes.lifetime.duration = 6.0;
        axes.lifetime.battery = 0.012;
        axes.periods = vec![0.5, 2.0];
        axes.duty_cycles = vec![0.5, 1.0];
        let fig_i = net_interval(&c, &axes);
        assert_eq!(fig_i.id, "net-interval");
        assert_eq!(fig_i.series.len(), 2);
        assert_eq!(fig_i.series[0].points.len(), 2);
        let fig_c = net_collisions(&c, &axes);
        assert_eq!(fig_c.id, "net-collisions");
        assert_eq!(fig_c.series.len(), 2);
        let fig_l = net_lifetime(&c, &axes);
        assert_eq!(fig_l.id, "net-lifetime");
        assert!(fig_l.to_csv().contains("net-lifetime,first-death (s),"));
    }

    #[test]
    fn bound_figure_series() {
        let bc = overlap_bound::BoundConfig {
            step: 2.0,
            ratios: vec![1.0, 4.0],
            ..Default::default()
        };
        let fig = bound(&bc);
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].points.len(), 2);
    }
}
