//! Render-ready result containers: series, figures, CSV, text tables.

use abp_stats::ConfidenceInterval;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One `(x, y ± ci)` point of a figure series.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// The x coordinate (beacon deployment density in most figures).
    pub x: f64,
    /// The y estimate with its 95 % confidence interval.
    pub y: ConfidenceInterval,
}

/// A named curve: what one line in a paper figure plots.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    /// Legend label ("Ideal", "Noise=0.3", "Grid", …).
    pub name: String,
    /// The points, in increasing x.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates a named series.
    pub fn new(name: impl Into<String>, points: Vec<SeriesPoint>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// The point with the largest y estimate, if any.
    pub fn peak(&self) -> Option<SeriesPoint> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.y.estimate.partial_cmp(&b.y.estimate).expect("finite"))
    }
}

/// A reproduced figure (or table): labelled series plus axis metadata.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Figure {
    /// Stable identifier ("fig4", "fig5-mean", "bound", …).
    pub id: String,
    /// Human title, usually the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure with metadata.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Long-format CSV: `figure,series,x,y,ci95` — one row per point,
    /// trivially loadable by any plotting tool.
    ///
    /// Text fields (figure id, series name) are quoted per RFC 4180 when
    /// they contain commas, quotes, or line breaks, so hostile names
    /// (`"Noise, coherent"`, names with embedded `"`) round-trip through
    /// standard CSV parsers instead of shifting columns.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("figure,series,x,y,ci95\n");
        for s in &self.series {
            for p in &s.points {
                out.push_str(&format!(
                    "{},{},{},{},{}\n",
                    csv_field(&self.id),
                    csv_field(&s.name),
                    p.x,
                    p.y.estimate,
                    p.y.half_width
                ));
            }
        }
        out
    }

    /// An aligned text table: the x grid as rows, one `value ± ci` column
    /// per series — the form the figures are eyeballed in.
    pub fn render(&self) -> String {
        let mut out = format!("{} — {}\n", self.id, self.title);
        out.push_str(&format!("  y: {}\n", self.y_label));
        // Collect the union of x values, sorted.
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let x_width = self.x_label.len().max(10);
        out.push_str(&format!("  {:>x_width$}", self.x_label));
        let col = 20;
        for s in &self.series {
            out.push_str(&format!(" | {:>col$}", s.name));
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("  {x:>x_width$.4}"));
            for s in &self.series {
                let cell = s
                    .points
                    .iter()
                    .find(|p| (p.x - x).abs() < 1e-12)
                    .map(|p| format!("{:.4} ± {:.4}", p.y.estimate, p.y.half_width))
                    .unwrap_or_default();
                out.push_str(&format!(" | {cell:>col$}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Quotes a CSV field per RFC 4180: fields containing `,`, `"`, CR or LF
/// are wrapped in double quotes with embedded quotes doubled; all other
/// fields pass through unchanged.
fn csv_field(raw: &str) -> std::borrow::Cow<'_, str> {
    if raw.contains(['"', ',', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", raw.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let s1 = Series::new(
            "Ideal",
            vec![
                SeriesPoint {
                    x: 0.002,
                    y: ConfidenceInterval {
                        estimate: 20.0,
                        half_width: 0.5,
                    },
                },
                SeriesPoint {
                    x: 0.01,
                    y: ConfidenceInterval {
                        estimate: 4.0,
                        half_width: 0.1,
                    },
                },
            ],
        );
        let s2 = Series::new(
            "Noise=0.5",
            vec![SeriesPoint {
                x: 0.002,
                y: ConfidenceInterval {
                    estimate: 24.0,
                    half_width: 0.6,
                },
            }],
        );
        Figure::new("fig4", "Mean error vs density", "density", "mean LE (m)")
            .with_series(s1)
            .with_series(s2)
    }

    #[test]
    fn csv_has_header_and_all_points() {
        let csv = sample_figure().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "figure,series,x,y,ci95");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("fig4,Ideal,0.002,20,0.5"));
    }

    #[test]
    fn render_aligns_series_columns() {
        let txt = sample_figure().render();
        assert!(txt.contains("fig4"));
        assert!(txt.contains("Ideal"));
        assert!(txt.contains("Noise=0.5"));
        assert!(txt.contains("20.0000 ± 0.5000"));
        // Missing cells render empty, not crash.
        assert!(txt.lines().count() >= 5);
    }

    /// A minimal RFC-4180 row parser for the round-trip test: splits one
    /// CSV record into fields, honoring quoted fields and doubled quotes.
    fn parse_csv_row(row: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut chars = row.chars().peekable();
        let mut in_quotes = false;
        while let Some(c) = chars.next() {
            match c {
                '"' if in_quotes => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '"' => in_quotes = true,
                ',' if !in_quotes => fields.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
        fields.push(field);
        fields
    }

    #[test]
    fn csv_quotes_hostile_names_round_trip() {
        let hostile = [
            "Noise, coherent",
            "say \"cheese\"",
            "both, \"at once\"",
            "line\nbreak",
            "plain",
        ];
        for name in hostile {
            let fig = Figure::new("fig,x", "t", "x", "y").with_series(Series::new(
                name,
                vec![SeriesPoint {
                    x: 1.0,
                    y: ConfidenceInterval {
                        estimate: 2.0,
                        half_width: 0.5,
                    },
                }],
            ));
            let csv = fig.to_csv();
            // Strip the header, keep the (possibly multi-line) record.
            let record = csv.strip_prefix("figure,series,x,y,ci95\n").unwrap();
            let fields = parse_csv_row(record.trim_end_matches('\n'));
            assert_eq!(fields.len(), 5, "{name:?} shifted columns: {record:?}");
            assert_eq!(fields[0], "fig,x");
            assert_eq!(fields[1], name, "{name:?} did not round-trip");
            assert_eq!(fields[2], "1");
        }
    }

    #[test]
    fn csv_leaves_clean_names_unquoted() {
        let csv = sample_figure().to_csv();
        assert!(csv.contains("fig4,Ideal,0.002,20,0.5"));
        assert!(!csv.contains('"'));
    }

    #[test]
    fn peak_finds_maximum() {
        let fig = sample_figure();
        let p = fig.series[0].peak().unwrap();
        assert_eq!(p.y.estimate, 20.0);
        assert!(Series::new("empty", vec![]).peak().is_none());
    }

    #[test]
    fn display_equals_render() {
        let fig = sample_figure();
        assert_eq!(fig.to_string(), fig.render());
    }
}
