//! Experiment configuration (Table 1).

use abp_field::BeaconField;
use abp_geom::{Lattice, Terrain};
use abp_localize::UnheardPolicy;
use abp_placement::{
    GridPlacement, LocusBreakPlacement, MaxPlacement, PlacementAlgorithm, RandomPlacement,
    WeightedGridPlacement,
};
use abp_radio::{IdealDisk, NoiseStyle, PerBeaconNoise, Propagation};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's fixed simulation parameters (Table 1), as named constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperConfig;

impl PaperConfig {
    /// Terrain side (m).
    pub const SIDE: f64 = 100.0;
    /// Nominal radio range `R` (m).
    pub const RANGE: f64 = 15.0;
    /// Survey step (m).
    pub const STEP: f64 = 1.0;
    /// Number of overlapping grids `NG`.
    pub const NUM_GRIDS: usize = 400;
    /// Beacon fields generated per density.
    pub const TRIALS: usize = 1000;
    /// Lowest beacon count evaluated.
    pub const MIN_BEACONS: usize = 20;
    /// Highest beacon count evaluated.
    pub const MAX_BEACONS: usize = 240;
    /// Beacon-count increment.
    pub const BEACON_STEP: usize = 10;
    /// Noise levels evaluated.
    pub const NOISE_LEVELS: [f64; 4] = [0.0, 0.1, 0.3, 0.5];

    /// Number of measured lattice points, `PT = (Side/step + 1)²`.
    pub const fn pt() -> usize {
        101 * 101
    }
}

impl fmt::Display for PaperConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1. Simulation Parameters")?;
        writeln!(f, "  Side   {:>8} m", Self::SIDE)?;
        writeln!(f, "  R      {:>8} m", Self::RANGE)?;
        writeln!(f, "  step   {:>8} m", Self::STEP)?;
        writeln!(f, "  NG     {:>8}", Self::NUM_GRIDS)?;
        writeln!(f, "  PT     {:>8}", Self::pt())?;
        writeln!(f, "  trials {:>8} fields per density", Self::TRIALS)?;
        writeln!(
            f,
            "  beacons {:>7}..{} step {}  (density {:.3}..{:.3} /m²)",
            Self::MIN_BEACONS,
            Self::MAX_BEACONS,
            Self::BEACON_STEP,
            Self::MIN_BEACONS as f64 / (Self::SIDE * Self::SIDE),
            Self::MAX_BEACONS as f64 / (Self::SIDE * Self::SIDE),
        )?;
        write!(f, "  noise  {:?}", Self::NOISE_LEVELS)
    }
}

/// Which placement algorithm an experiment exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// The paper's Random baseline (§3.2.1).
    Random,
    /// The paper's Max algorithm (§3.2.2).
    Max,
    /// The paper's Grid algorithm (§3.2.3).
    Grid,
    /// Distance-weighted Grid (ablation, §6-adjacent).
    WeightedGrid,
    /// Locus-breaking placement (future work, §6).
    LocusBreak,
}

impl AlgorithmKind {
    /// The three algorithms the paper evaluates, in its order.
    pub const PAPER: [AlgorithmKind; 3] = [
        AlgorithmKind::Random,
        AlgorithmKind::Max,
        AlgorithmKind::Grid,
    ];

    /// Stable lowercase name (matches `PlacementAlgorithm::name`).
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::Random => "random",
            AlgorithmKind::Max => "max",
            AlgorithmKind::Grid => "grid",
            AlgorithmKind::WeightedGrid => "weighted-grid",
            AlgorithmKind::LocusBreak => "locus-break",
        }
    }

    /// Instantiates the algorithm for a configuration.
    pub fn build(self, cfg: &SimConfig) -> Box<dyn PlacementAlgorithm> {
        match self {
            AlgorithmKind::Random => Box::new(RandomPlacement::new(cfg.terrain())),
            AlgorithmKind::Max => Box::new(MaxPlacement::new()),
            AlgorithmKind::Grid => Box::new(GridPlacement::new(
                cfg.terrain(),
                cfg.nominal_range,
                cfg.num_grids,
            )),
            AlgorithmKind::WeightedGrid => Box::new(WeightedGridPlacement::new(
                cfg.terrain(),
                cfg.nominal_range,
                cfg.num_grids,
            )),
            AlgorithmKind::LocusBreak => Box::new(LocusBreakPlacement::new()),
        }
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one experiment run.
///
/// [`SimConfig::paper`] reproduces Table 1 exactly. Smaller presets exist
/// for CI ([`SimConfig::quick`]) and unit tests ([`SimConfig::tiny`]);
/// they trade lattice resolution and trial count for speed while keeping
/// the paper's terrain and radio geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Terrain side in meters.
    pub side: f64,
    /// Nominal radio range `R` in meters.
    pub nominal_range: f64,
    /// Survey lattice step in meters.
    pub step: f64,
    /// Number of overlapping grids `NG` for the Grid algorithm.
    pub num_grids: usize,
    /// Beacon counts to sweep (the density axis).
    pub beacon_counts: Vec<usize>,
    /// Random beacon fields generated per density.
    pub trials: usize,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Estimate convention for unheard clients.
    pub policy: UnheardPolicy,
    /// How the noise model's `u` draw is scoped (see
    /// [`NoiseStyle`]); the default is the paper's printed formula.
    pub noise_style: NoiseStyle,
    /// Worker threads; `0` = one per available core.
    pub threads: usize,
}

impl SimConfig {
    /// The paper's full configuration (Table 1). A complete figure run at
    /// this setting takes minutes, not seconds; see [`SimConfig::quick`].
    pub fn paper() -> Self {
        SimConfig {
            side: PaperConfig::SIDE,
            nominal_range: PaperConfig::RANGE,
            step: PaperConfig::STEP,
            num_grids: PaperConfig::NUM_GRIDS,
            beacon_counts: (PaperConfig::MIN_BEACONS..=PaperConfig::MAX_BEACONS)
                .step_by(PaperConfig::BEACON_STEP)
                .collect(),
            trials: PaperConfig::TRIALS,
            seed: 0x1CDC_5200,
            policy: UnheardPolicy::TerrainCenter,
            noise_style: NoiseStyle::Speckled,
            threads: 0,
        }
    }

    /// A CI-sized preset: the paper's geometry at `step = 2 m` with 60
    /// trials and every other density. Reproduces all qualitative shapes
    /// in seconds.
    pub fn quick() -> Self {
        SimConfig {
            step: 2.0,
            trials: 60,
            beacon_counts: (PaperConfig::MIN_BEACONS..=PaperConfig::MAX_BEACONS)
                .step_by(2 * PaperConfig::BEACON_STEP)
                .collect(),
            ..SimConfig::paper()
        }
    }

    /// A unit-test preset: coarse lattice, 8 trials, three densities.
    pub fn tiny() -> Self {
        SimConfig {
            step: 5.0,
            trials: 8,
            beacon_counts: vec![20, 100, 240],
            num_grids: 100,
            ..SimConfig::paper()
        }
    }

    /// The terrain.
    pub fn terrain(&self) -> Terrain {
        Terrain::square(self.side)
    }

    /// The survey lattice.
    pub fn lattice(&self) -> Lattice {
        Lattice::new(self.terrain(), self.step)
    }

    /// Deployment density (per m²) for a beacon count under this terrain.
    pub fn density_of(&self, beacons: usize) -> f64 {
        self.terrain().density_of(beacons)
    }

    /// Beacons per nominal coverage area for a beacon count (the paper's
    /// secondary x-axis).
    pub fn per_coverage(&self, beacons: usize) -> f64 {
        self.density_of(beacons) * std::f64::consts::PI * self.nominal_range * self.nominal_range
    }

    /// The propagation model for a noise level, realized from `seed`.
    /// `noise == 0` uses the exact ideal-disk model.
    pub fn model(&self, noise: f64, seed: u64) -> Box<dyn Propagation> {
        if noise == 0.0 {
            Box::new(IdealDisk::new(self.nominal_range))
        } else {
            Box::new(PerBeaconNoise::with_style(
                self.nominal_range,
                noise,
                seed,
                self.noise_style,
            ))
        }
    }

    /// A stable digest of every result-affecting parameter, used to pair
    /// checkpoint files with the configuration that produced them.
    ///
    /// `threads` is deliberately excluded: results are thread-count
    /// invariant, so a sweep checkpointed on 4 cores may resume on 32.
    pub fn fingerprint(&self) -> u64 {
        use abp_geom::splitmix64;
        let policy_tag = match self.policy {
            UnheardPolicy::TerrainCenter => 0u64,
            UnheardPolicy::Origin => 1,
            UnheardPolicy::Exclude => 2,
        };
        let style_tag = match self.noise_style {
            NoiseStyle::Speckled => 0u64,
            NoiseStyle::CoherentRadius => 1,
            NoiseStyle::Lossy => 2,
        };
        let mut h = 0x4142_5043_5f76_3031; // "ABPC_v01"
        for v in [
            self.side.to_bits(),
            self.nominal_range.to_bits(),
            self.step.to_bits(),
            self.num_grids as u64,
            self.trials as u64,
            self.seed,
            policy_tag,
            style_tag,
            self.beacon_counts.len() as u64,
        ] {
            h = splitmix64(h ^ v);
        }
        for &beacons in &self.beacon_counts {
            h = splitmix64(h ^ beacons as u64);
        }
        h
    }

    /// Deterministic per-(density, trial) seed derivation.
    pub fn trial_seed(&self, density_index: usize, trial: usize) -> u64 {
        use abp_geom::splitmix64;
        splitmix64(
            splitmix64(self.seed ^ (density_index as u64).wrapping_mul(0x9E37_79B9))
                ^ (trial as u64).wrapping_mul(0x85EB_CA6B),
        )
    }

    /// Per-attempt seed for `--retry`: attempt 0 is exactly
    /// [`SimConfig::trial_seed`] (healthy runs stay bit-identical under
    /// any retry policy); later attempts re-derive deterministically so a
    /// retried trial explores a fresh-but-reproducible random stream.
    pub fn retry_seed(&self, density_index: usize, trial: usize, attempt: u32) -> u64 {
        use abp_geom::splitmix64;
        let base = self.trial_seed(density_index, trial);
        if attempt == 0 {
            base
        } else {
            splitmix64(base ^ (attempt as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        }
    }

    /// Generates the random beacon field for a trial.
    pub fn trial_field(&self, beacons: usize, trial_seed: u64) -> BeaconField {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(trial_seed);
        BeaconField::random_uniform(beacons, self.terrain(), &mut rng)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper()
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} side, R {}, step {}, NG {}, {} densities x {} trials, seed {:#x}",
            self.side,
            self.nominal_range,
            self.step,
            self.num_grids,
            self.beacon_counts.len(),
            self.trials,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let cfg = SimConfig::paper();
        assert_eq!(cfg.side, 100.0);
        assert_eq!(cfg.nominal_range, 15.0);
        assert_eq!(cfg.step, 1.0);
        assert_eq!(cfg.num_grids, 400);
        assert_eq!(cfg.trials, 1000);
        assert_eq!(cfg.beacon_counts.len(), 23); // 20, 30, ..., 240
        assert_eq!(cfg.beacon_counts[0], 20);
        assert_eq!(*cfg.beacon_counts.last().unwrap(), 240);
        assert_eq!(cfg.lattice().len(), PaperConfig::pt());
    }

    #[test]
    fn density_axis_matches_paper() {
        let cfg = SimConfig::paper();
        assert!((cfg.density_of(20) - 0.002).abs() < 1e-12);
        assert!((cfg.density_of(240) - 0.024).abs() < 1e-12);
        // "from 1.41 to 17" beacons per coverage area.
        assert!((cfg.per_coverage(20) - 1.41).abs() < 0.01);
        assert!((cfg.per_coverage(240) - 16.96).abs() < 0.05);
    }

    #[test]
    fn fingerprint_tracks_results_not_threads() {
        let base = SimConfig::tiny();
        let mut threads = base.clone();
        threads.threads = 13;
        assert_eq!(base.fingerprint(), threads.fingerprint());
        for tweak in [
            |c: &mut SimConfig| c.step = 4.0,
            |c: &mut SimConfig| c.trials += 1,
            |c: &mut SimConfig| c.seed ^= 1,
            |c: &mut SimConfig| c.beacon_counts.push(999),
            |c: &mut SimConfig| c.policy = UnheardPolicy::Exclude,
            |c: &mut SimConfig| c.noise_style = NoiseStyle::Lossy,
        ] {
            let mut changed = base.clone();
            tweak(&mut changed);
            assert_ne!(base.fingerprint(), changed.fingerprint());
        }
    }

    #[test]
    fn trial_seeds_are_distinct_and_stable() {
        let cfg = SimConfig::paper();
        let a = cfg.trial_seed(0, 0);
        assert_eq!(a, cfg.trial_seed(0, 0));
        assert_ne!(a, cfg.trial_seed(0, 1));
        assert_ne!(a, cfg.trial_seed(1, 0));
    }

    #[test]
    fn retry_seed_attempt_zero_matches_trial_seed() {
        let cfg = SimConfig::paper();
        assert_eq!(cfg.retry_seed(2, 7, 0), cfg.trial_seed(2, 7));
        let a1 = cfg.retry_seed(2, 7, 1);
        let a2 = cfg.retry_seed(2, 7, 2);
        assert_ne!(a1, cfg.trial_seed(2, 7));
        assert_ne!(a1, a2);
        // Deterministic: re-deriving gives the same stream.
        assert_eq!(a1, cfg.retry_seed(2, 7, 1));
    }

    #[test]
    fn trial_field_deterministic() {
        let cfg = SimConfig::tiny();
        let f1 = cfg.trial_field(50, 123);
        let f2 = cfg.trial_field(50, 123);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), 50);
    }

    #[test]
    fn model_selection_by_noise() {
        let cfg = SimConfig::tiny();
        assert_eq!(cfg.model(0.0, 1).nominal_range(), 15.0);
        assert_eq!(cfg.model(0.5, 1).nominal_range(), 15.0);
    }

    #[test]
    fn algorithm_kinds_build_and_name() {
        let cfg = SimConfig::tiny();
        for kind in [
            AlgorithmKind::Random,
            AlgorithmKind::Max,
            AlgorithmKind::Grid,
            AlgorithmKind::WeightedGrid,
            AlgorithmKind::LocusBreak,
        ] {
            let algo = kind.build(&cfg);
            assert_eq!(algo.name(), kind.name());
        }
    }

    #[test]
    fn table1_renders() {
        let s = PaperConfig.to_string();
        for token in ["Side", "100", "R", "15", "NG", "400", "1000"] {
            assert!(s.contains(token), "missing {token} in:\n{s}");
        }
    }
}
