//! Crash-safe checkpointing for long sweeps.
//!
//! A [`SweepCheckpoint`] is a small key-value store persisted to one file:
//! experiments write one entry per completed density sweep (keyed by
//! experiment, noise level, and density) and read entries back on the next
//! run, skipping whatever already completed. Values are opaque byte blobs
//! encoded by the experiment; every `f64` inside them travels as raw IEEE
//! bits, so a resumed run reproduces the uninterrupted run **bit for
//! bit**.
//!
//! The file format follows the `abp-survey` snapshot conventions:
//! big-endian, magic + version header, then a fingerprint of the
//! [`SimConfig`](crate::SimConfig) that produced the entries. A checkpoint
//! whose fingerprint does not match the current configuration is ignored
//! (stale results must never leak into a differently-parameterized run).
//! Saves go through a temp file + atomic rename, so an interrupt mid-save
//! leaves the previous checkpoint intact.
//!
//! Two defenses against silent data problems:
//!
//! * every entry carries a CRC32 of its key + value, so a torn or
//!   bit-rotted blob is **quarantined** — skipped and recomputed by the
//!   resumed sweep — instead of poisoning a resumed figure, while intact
//!   entries around it still load;
//! * [`SweepCheckpoint::opened`] reports exactly what `open` found
//!   ([`CheckpointOpen`]), and the run loop surfaces it through the
//!   `Probe::checkpoint_opened` event, so an operator can always tell a
//!   resumed run from one that silently started fresh.

use bytes::{Buf, BufMut, BytesMut};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// `"ABPC"` — adaptive beacon placement checkpoint.
const MAGIC: u32 = 0x4142_5043;
/// Version 2 added the per-entry CRC32; version-1 files are reported as
/// [`CheckpointOpen::IgnoredVersion`] and regenerated.
const VERSION: u16 = 2;

/// IEEE CRC-32 (reflected polynomial 0xEDB88320), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC32 over an entry's key and value together.
fn entry_crc(key: &str, value: &[u8]) -> u32 {
    let crc = crc32_update(0xFFFF_FFFF, key.as_bytes());
    crc32_update(crc, value) ^ 0xFFFF_FFFF
}

/// What [`SweepCheckpoint::open`] found at the path.
///
/// Anything other than `Created` / a clean `Resumed` deserves operator
/// attention: an `Ignored*` variant means an existing file was set aside
/// and the run will recompute everything, and a non-zero `quarantined`
/// count means some entries failed their CRC and will be recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointOpen {
    /// No file existed; a fresh checkpoint will be written.
    Created,
    /// The file matched and its intact entries were loaded.
    Resumed {
        /// Entries that passed their CRC and were loaded.
        entries: usize,
        /// Entries quarantined for CRC mismatch or torn encoding; the
        /// sweep recomputes them.
        quarantined: usize,
    },
    /// The file has a different format version; it was ignored.
    IgnoredVersion {
        /// The version found in the file.
        found: u16,
    },
    /// The file was produced by a differently-parameterized run; it was
    /// ignored.
    IgnoredFingerprint {
        /// The fingerprint found in the file.
        found: u64,
    },
    /// The file is not a checkpoint at all (bad magic or truncated
    /// header); it was ignored.
    IgnoredCorrupt,
}

impl CheckpointOpen {
    /// Whether an existing file was set aside rather than resumed.
    pub fn is_ignored(&self) -> bool {
        matches!(
            self,
            CheckpointOpen::IgnoredVersion { .. }
                | CheckpointOpen::IgnoredFingerprint { .. }
                | CheckpointOpen::IgnoredCorrupt
        )
    }

    /// Number of entries quarantined for failing their CRC.
    pub fn quarantined(&self) -> usize {
        match *self {
            CheckpointOpen::Resumed { quarantined, .. } => quarantined,
            _ => 0,
        }
    }
}

impl fmt::Display for CheckpointOpen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CheckpointOpen::Created => f.write_str("created (no existing file)"),
            CheckpointOpen::Resumed {
                entries,
                quarantined: 0,
            } => {
                write!(f, "resumed ({entries} entries)")
            }
            CheckpointOpen::Resumed {
                entries,
                quarantined,
            } => write!(
                f,
                "resumed ({entries} entries, {quarantined} quarantined by CRC and recomputing)"
            ),
            CheckpointOpen::IgnoredVersion { found } => write!(
                f,
                "existing file ignored: format version {found} (expected {VERSION}); starting fresh"
            ),
            CheckpointOpen::IgnoredFingerprint { found } => write!(
                f,
                "existing file ignored: config fingerprint {found:#018x} does not match; starting fresh"
            ),
            CheckpointOpen::IgnoredCorrupt => {
                f.write_str("existing file ignored: not a readable checkpoint; starting fresh")
            }
        }
    }
}

/// A persistent map of completed sweep results, safe to share across
/// worker threads.
#[derive(Debug)]
pub struct SweepCheckpoint {
    path: PathBuf,
    fingerprint: u64,
    opened: CheckpointOpen,
    entries: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl SweepCheckpoint {
    /// Opens (or creates) the checkpoint at `path` for a configuration
    /// with the given fingerprint.
    ///
    /// An existing file with a different fingerprint, an unknown version,
    /// or a corrupt header is treated as absent: the run starts fresh and
    /// overwrites it on the first save — and [`SweepCheckpoint::opened`]
    /// records which of those happened so the caller can tell the
    /// operator. Individual entries failing their CRC are quarantined
    /// (dropped and recomputed) without discarding the rest of the file.
    /// Only real I/O errors (permissions, directories, ...) are returned.
    pub fn open(path: impl Into<PathBuf>, fingerprint: u64) -> io::Result<Self> {
        let path = path.into();
        let (entries, opened) = match std::fs::read(&path) {
            Ok(raw) => match decode(&raw, fingerprint) {
                Decoded::Entries {
                    entries,
                    quarantined,
                } => {
                    let n = entries.len();
                    (
                        entries,
                        CheckpointOpen::Resumed {
                            entries: n,
                            quarantined,
                        },
                    )
                }
                Decoded::Ignored(open) => (BTreeMap::new(), open),
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                (BTreeMap::new(), CheckpointOpen::Created)
            }
            Err(e) => return Err(e),
        };
        Ok(SweepCheckpoint {
            path,
            fingerprint,
            opened,
            entries: Mutex::new(entries),
        })
    }

    /// What [`SweepCheckpoint::open`] found (resumed, created, ignored,
    /// quarantined entries).
    pub fn opened(&self) -> CheckpointOpen {
        self.opened
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("checkpoint entries").len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.entries
            .lock()
            .expect("checkpoint entries")
            .get(key)
            .cloned()
    }

    /// Stores `value` under `key` and persists the whole checkpoint
    /// atomically (temp file + rename).
    pub fn put(&self, key: &str, value: Vec<u8>) -> io::Result<()> {
        let encoded = {
            let mut entries = self.entries.lock().expect("checkpoint entries");
            entries.insert(key.to_string(), value);
            encode(self.fingerprint, &entries)
        };
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, &encoded)?;
        std::fs::rename(&tmp, &self.path)
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn encode(fingerprint: u64, entries: &BTreeMap<String, Vec<u8>>) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(
        22 + entries
            .iter()
            .map(|(k, v)| k.len() + v.len() + 10)
            .sum::<usize>(),
    );
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u64(fingerprint);
    buf.put_u64(entries.len() as u64);
    for (key, value) in entries {
        buf.put_u16(u16::try_from(key.len()).expect("checkpoint key under 64 KiB"));
        buf.put_slice(key.as_bytes());
        buf.put_u32(u32::try_from(value.len()).expect("checkpoint value under 4 GiB"));
        buf.put_slice(value);
        buf.put_u32(entry_crc(key, value));
    }
    buf.freeze().to_vec()
}

/// Outcome of decoding a checkpoint file.
enum Decoded {
    /// Header matched; intact entries loaded, damaged ones counted.
    Entries {
        entries: BTreeMap<String, Vec<u8>>,
        quarantined: usize,
    },
    /// The whole file was set aside for the stated reason.
    Ignored(CheckpointOpen),
}

fn decode(raw: &[u8], fingerprint: u64) -> Decoded {
    let mut buf = raw;
    if buf.remaining() < 4 + 2 + 8 + 8 {
        return Decoded::Ignored(CheckpointOpen::IgnoredCorrupt);
    }
    if buf.get_u32() != MAGIC {
        return Decoded::Ignored(CheckpointOpen::IgnoredCorrupt);
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Decoded::Ignored(CheckpointOpen::IgnoredVersion { found: version });
    }
    let found = buf.get_u64();
    if found != fingerprint {
        return Decoded::Ignored(CheckpointOpen::IgnoredFingerprint { found });
    }
    let n = buf.get_u64();
    let mut entries = BTreeMap::new();
    let mut quarantined = 0usize;
    for _ in 0..n {
        // A torn tail (truncated mid-entry) quarantines the remainder as
        // one damaged blob; everything decoded so far is kept.
        if buf.remaining() < 2 {
            quarantined += 1;
            return Decoded::Entries {
                entries,
                quarantined,
            };
        }
        let klen = buf.get_u16() as usize;
        if buf.remaining() < klen {
            quarantined += 1;
            return Decoded::Entries {
                entries,
                quarantined,
            };
        }
        let key_bytes = buf[..klen].to_vec();
        buf = &buf[klen..];
        if buf.remaining() < 4 {
            quarantined += 1;
            return Decoded::Entries {
                entries,
                quarantined,
            };
        }
        let vlen = buf.get_u32() as usize;
        if buf.remaining() < vlen + 4 {
            quarantined += 1;
            return Decoded::Entries {
                entries,
                quarantined,
            };
        }
        let value = buf[..vlen].to_vec();
        buf = &buf[vlen..];
        let stored_crc = buf.get_u32();
        match String::from_utf8(key_bytes) {
            Ok(key) if entry_crc(&key, &value) == stored_crc => {
                entries.insert(key, value);
            }
            // Bit rot: the blob decodes structurally but its CRC (or key
            // encoding) is wrong. Quarantine it and keep going — later
            // entries are validated independently.
            _ => quarantined += 1,
        }
    }
    if buf.remaining() != 0 {
        quarantined += 1;
    }
    Decoded::Entries {
        entries,
        quarantined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("abp-ckpt-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = SweepCheckpoint::open(&path, 42).unwrap();
            assert!(ckpt.is_empty());
            assert_eq!(ckpt.opened(), CheckpointOpen::Created);
            ckpt.put("a/0", vec![1, 2, 3]).unwrap();
            ckpt.put("a/1", 7.5_f64.to_bits().to_be_bytes().to_vec())
                .unwrap();
        }
        let ckpt = SweepCheckpoint::open(&path, 42).unwrap();
        assert_eq!(ckpt.len(), 2);
        assert_eq!(
            ckpt.opened(),
            CheckpointOpen::Resumed {
                entries: 2,
                quarantined: 0
            }
        );
        assert_eq!(ckpt.get("a/0"), Some(vec![1, 2, 3]));
        let bits = u64::from_be_bytes(ckpt.get("a/1").unwrap().try_into().unwrap());
        assert_eq!(f64::from_bits(bits), 7.5);
        assert_eq!(ckpt.get("missing"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_starts_fresh_and_reports_it() {
        let path = tmp_path("fingerprint");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = SweepCheckpoint::open(&path, 1).unwrap();
            ckpt.put("k", vec![9]).unwrap();
        }
        let stale = SweepCheckpoint::open(&path, 2).unwrap();
        assert!(stale.is_empty(), "stale entries must not be visible");
        assert_eq!(
            stale.opened(),
            CheckpointOpen::IgnoredFingerprint { found: 1 }
        );
        assert!(stale.opened().is_ignored());
        // And writing under the new fingerprint replaces the file.
        stale.put("k2", vec![1]).unwrap();
        let reread = SweepCheckpoint::open(&path, 2).unwrap();
        assert_eq!(reread.get("k2"), Some(vec![1]));
        assert_eq!(reread.get("k"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_reported() {
        let path = tmp_path("version");
        // Hand-build a version-1 header (pre-CRC format).
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC.to_be_bytes());
        raw.extend_from_slice(&1u16.to_be_bytes());
        raw.extend_from_slice(&7u64.to_be_bytes());
        raw.extend_from_slice(&0u64.to_be_bytes());
        std::fs::write(&path, &raw).unwrap();
        let ckpt = SweepCheckpoint::open(&path, 7).unwrap();
        assert!(ckpt.is_empty());
        assert_eq!(ckpt.opened(), CheckpointOpen::IgnoredVersion { found: 1 });
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_file_is_ignored() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let ckpt = SweepCheckpoint::open(&path, 0).unwrap();
        assert!(ckpt.is_empty());
        assert_eq!(ckpt.opened(), CheckpointOpen::IgnoredCorrupt);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_quarantined_but_prior_entries_survive() {
        let path = tmp_path("torn");
        let entries = BTreeMap::from([
            ("a".to_string(), vec![1u8; 10]),
            ("b".to_string(), vec![2u8; 100]),
        ]);
        let valid = encode(0, &entries);
        // Cut into the middle of entry "b" — a torn write.
        std::fs::write(&path, &valid[..valid.len() - 30]).unwrap();
        let ckpt = SweepCheckpoint::open(&path, 0).unwrap();
        assert_eq!(ckpt.get("a"), Some(vec![1u8; 10]));
        assert_eq!(ckpt.get("b"), None);
        assert_eq!(
            ckpt.opened(),
            CheckpointOpen::Resumed {
                entries: 1,
                quarantined: 1
            }
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_rot_quarantines_only_the_damaged_entry() {
        let path = tmp_path("bitrot");
        let entries = BTreeMap::from([
            ("a".to_string(), vec![1, 2, 3]),
            ("b".to_string(), vec![4, 5, 6]),
        ]);
        let mut raw = encode(0xF00D, &entries);
        // Entry "a" is first (BTreeMap order). Layout: 22-byte header,
        // then klen(2) + "a"(1) + vlen(4) → its value starts at 29.
        raw[29] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let ckpt = SweepCheckpoint::open(&path, 0xF00D).unwrap();
        assert_eq!(ckpt.get("a"), None, "rotted entry must be quarantined");
        assert_eq!(ckpt.get("b"), Some(vec![4, 5, 6]), "intact entry must load");
        assert_eq!(
            ckpt.opened(),
            CheckpointOpen::Resumed {
                entries: 1,
                quarantined: 1
            }
        );
        // Recomputing the quarantined key repairs the file in place.
        ckpt.put("a", vec![9, 9]).unwrap();
        let healed = SweepCheckpoint::open(&path, 0xF00D).unwrap();
        assert_eq!(healed.get("a"), Some(vec![9, 9]));
        assert_eq!(healed.get("b"), Some(vec![4, 5, 6]));
        assert_eq!(healed.opened().quarantined(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_fresh_store() {
        let path = tmp_path("missing");
        let _ = std::fs::remove_file(&path);
        let ckpt = SweepCheckpoint::open(&path, 0).unwrap();
        assert!(ckpt.is_empty());
        assert_eq!(ckpt.opened(), CheckpointOpen::Created);
        assert_eq!(ckpt.path(), path.as_path());
    }
}
