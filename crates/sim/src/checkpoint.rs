//! Crash-safe checkpointing for long sweeps.
//!
//! A [`SweepCheckpoint`] is a small key-value store persisted to one file:
//! experiments write one entry per completed density sweep (keyed by
//! experiment, noise level, and density) and read entries back on the next
//! run, skipping whatever already completed. Values are opaque byte blobs
//! encoded by the experiment; every `f64` inside them travels as raw IEEE
//! bits, so a resumed run reproduces the uninterrupted run **bit for
//! bit**.
//!
//! The file format follows the `abp-survey` snapshot conventions:
//! big-endian, magic + version header, then a fingerprint of the
//! [`SimConfig`](crate::SimConfig) that produced the entries. A checkpoint
//! whose fingerprint does not match the current configuration is ignored
//! (stale results must never leak into a differently-parameterized run).
//! Saves go through a temp file + atomic rename, so an interrupt mid-save
//! leaves the previous checkpoint intact.

use bytes::{Buf, BufMut, BytesMut};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// `"ABPC"` — adaptive beacon placement checkpoint.
const MAGIC: u32 = 0x4142_5043;
const VERSION: u16 = 1;

/// A persistent map of completed sweep results, safe to share across
/// worker threads.
#[derive(Debug)]
pub struct SweepCheckpoint {
    path: PathBuf,
    fingerprint: u64,
    entries: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl SweepCheckpoint {
    /// Opens (or creates) the checkpoint at `path` for a configuration
    /// with the given fingerprint.
    ///
    /// An existing file with a different fingerprint, an unknown version,
    /// or corrupt contents is treated as absent: the run starts fresh and
    /// overwrites it on the first save. Only real I/O errors (permissions,
    /// directories, ...) are returned.
    pub fn open(path: impl Into<PathBuf>, fingerprint: u64) -> io::Result<Self> {
        let path = path.into();
        let entries = match std::fs::read(&path) {
            Ok(raw) => decode(&raw, fingerprint).unwrap_or_default(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(e),
        };
        Ok(SweepCheckpoint {
            path,
            fingerprint,
            entries: Mutex::new(entries),
        })
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("checkpoint entries").len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.entries
            .lock()
            .expect("checkpoint entries")
            .get(key)
            .cloned()
    }

    /// Stores `value` under `key` and persists the whole checkpoint
    /// atomically (temp file + rename).
    pub fn put(&self, key: &str, value: Vec<u8>) -> io::Result<()> {
        let encoded = {
            let mut entries = self.entries.lock().expect("checkpoint entries");
            entries.insert(key.to_string(), value);
            encode(self.fingerprint, &entries)
        };
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, &encoded)?;
        std::fs::rename(&tmp, &self.path)
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn encode(fingerprint: u64, entries: &BTreeMap<String, Vec<u8>>) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(
        16 + entries
            .iter()
            .map(|(k, v)| k.len() + v.len() + 8)
            .sum::<usize>(),
    );
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u64(fingerprint);
    buf.put_u64(entries.len() as u64);
    for (key, value) in entries {
        buf.put_u16(u16::try_from(key.len()).expect("checkpoint key under 64 KiB"));
        buf.put_slice(key.as_bytes());
        buf.put_u32(u32::try_from(value.len()).expect("checkpoint value under 4 GiB"));
        buf.put_slice(value);
    }
    buf.freeze().to_vec()
}

fn decode(raw: &[u8], fingerprint: u64) -> Option<BTreeMap<String, Vec<u8>>> {
    let mut buf = raw;
    if buf.remaining() < 4 + 2 + 8 + 8 {
        return None;
    }
    if buf.get_u32() != MAGIC || buf.get_u16() != VERSION || buf.get_u64() != fingerprint {
        return None;
    }
    let n = buf.get_u64();
    let mut entries = BTreeMap::new();
    for _ in 0..n {
        if buf.remaining() < 2 {
            return None;
        }
        let klen = buf.get_u16() as usize;
        if buf.remaining() < klen {
            return None;
        }
        let key = String::from_utf8(buf[..klen].to_vec()).ok()?;
        buf = &buf[klen..];
        if buf.remaining() < 4 {
            return None;
        }
        let vlen = buf.get_u32() as usize;
        if buf.remaining() < vlen {
            return None;
        }
        let value = buf[..vlen].to_vec();
        buf = &buf[vlen..];
        entries.insert(key, value);
    }
    if buf.remaining() != 0 {
        return None;
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("abp-ckpt-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = SweepCheckpoint::open(&path, 42).unwrap();
            assert!(ckpt.is_empty());
            ckpt.put("a/0", vec![1, 2, 3]).unwrap();
            ckpt.put("a/1", 7.5_f64.to_bits().to_be_bytes().to_vec())
                .unwrap();
        }
        let ckpt = SweepCheckpoint::open(&path, 42).unwrap();
        assert_eq!(ckpt.len(), 2);
        assert_eq!(ckpt.get("a/0"), Some(vec![1, 2, 3]));
        let bits = u64::from_be_bytes(ckpt.get("a/1").unwrap().try_into().unwrap());
        assert_eq!(f64::from_bits(bits), 7.5);
        assert_eq!(ckpt.get("missing"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_starts_fresh() {
        let path = tmp_path("fingerprint");
        let _ = std::fs::remove_file(&path);
        {
            let ckpt = SweepCheckpoint::open(&path, 1).unwrap();
            ckpt.put("k", vec![9]).unwrap();
        }
        let stale = SweepCheckpoint::open(&path, 2).unwrap();
        assert!(stale.is_empty(), "stale entries must not be visible");
        // And writing under the new fingerprint replaces the file.
        stale.put("k2", vec![1]).unwrap();
        let reread = SweepCheckpoint::open(&path, 2).unwrap();
        assert_eq!(reread.get("k2"), Some(vec![1]));
        assert_eq!(reread.get("k"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_file_is_ignored() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let ckpt = SweepCheckpoint::open(&path, 0).unwrap();
        assert!(ckpt.is_empty());
        // Truncated valid header is also rejected.
        let valid = encode(0, &BTreeMap::from([("key".to_string(), vec![0; 100])]));
        std::fs::write(&path, &valid[..valid.len() - 5]).unwrap();
        let ckpt = SweepCheckpoint::open(&path, 0).unwrap();
        assert!(ckpt.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_fresh_store() {
        let path = tmp_path("missing");
        let _ = std::fs::remove_file(&path);
        let ckpt = SweepCheckpoint::open(&path, 0).unwrap();
        assert!(ckpt.is_empty());
        assert_eq!(ckpt.path(), path.as_path());
    }
}
