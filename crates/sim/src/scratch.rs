//! Per-worker trial scratch: survey buffers reused across trials.

use abp_survey::SurveyScratch;
use std::cell::RefCell;

/// Every reusable buffer one Monte-Carlo worker thread needs: the survey
/// scratch (error-map grids, SoA mirror, spatial index, quantile
/// workspace) — and room for future per-trial state.
///
/// One `TrialScratch` lives per OS thread (see [`with_trial_scratch`]).
/// Both `parallel_try_map` and the supervised engine run each worker on
/// its own thread for the duration of a sweep, so a thread-local scratch
/// is exactly one scratch per worker, reused across all trials that
/// worker executes: after the first trial at the sweep's largest field
/// and lattice, the steady-state trial loop performs no survey-side heap
/// allocations (see `docs/PERFORMANCE.md`).
#[derive(Debug, Default)]
pub struct TrialScratch {
    /// The survey-layer buffers (see [`SurveyScratch`]).
    pub survey: SurveyScratch,
}

thread_local! {
    static TRIAL_SCRATCH: RefCell<TrialScratch> = RefCell::new(TrialScratch::default());
}

/// Runs `f` with this thread's [`TrialScratch`].
///
/// The experiments' trial functions call this at their top; nested calls
/// would panic (RefCell), but trials never nest — each runs to completion
/// on its worker thread.
pub fn with_trial_scratch<R>(f: impl FnOnce(&mut TrialScratch) -> R) -> R {
    TRIAL_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_reused_within_a_thread() {
        let first = with_trial_scratch(|s| s as *mut TrialScratch as usize);
        let second = with_trial_scratch(|s| s as *mut TrialScratch as usize);
        assert_eq!(first, second, "same thread must see the same scratch");
    }

    #[test]
    fn threads_get_independent_scratches() {
        let here = with_trial_scratch(|s| s as *mut TrialScratch as usize);
        let there = std::thread::spawn(|| with_trial_scratch(|s| s as *mut TrialScratch as usize))
            .join()
            .unwrap();
        assert_ne!(here, there, "each worker thread owns its own scratch");
    }
}
