//! The Monte-Carlo experiment engine (paper §4).
//!
//! This crate turns the substrates of the `beaconplace` workspace into the
//! paper's evaluation pipeline: generate random beacon fields at a sweep
//! of densities, survey each field, let a placement algorithm add a
//! beacon, re-survey, and aggregate the improvement statistics over many
//! trials with 95 % confidence intervals.
//!
//! * [`SimConfig`] — experiment parameters; [`SimConfig::paper`] is
//!   Table 1 (`Side = 100 m`, `R = 15 m`, `step = 1 m`, `NG = 400`,
//!   20–240 beacons, 1000 fields per density),
//! * [`runner`] — deterministic, fault-tolerant parallel trial execution,
//!   including the supervised engine ([`runner::supervised_try_map`]) with
//!   seed-re-deriving retries and a per-trial watchdog,
//! * [`progress`] — the [`Probe`] observability hooks (progress lines,
//!   run metrics) threaded through experiments and figures,
//! * [`checkpoint`] — crash-safe persistence of completed density sweeps
//!   so interrupted runs resume bit-identically,
//! * [`experiments`] — one module per experiment family:
//!   [`experiments::density_error`] (Figures 4 and 6),
//!   [`experiments::improvement`] (Figures 5, 7, 8, 9),
//!   [`experiments::granularity`] (Figure 1),
//!   [`experiments::overlap_bound`] (the §2.2 error-bound analysis),
//! * [`figures`] — named entry points `fig1`, `fig4` … `fig9`, `bound`,
//!   `table1` that return render-ready [`report::Figure`]s,
//! * [`report`] — series/figure containers with CSV and aligned-text
//!   rendering.
//!
//! Everything is seeded: the same [`SimConfig`] always produces the same
//! numbers, bit for bit, regardless of thread count.
//!
//! # Example
//!
//! ```
//! use abp_sim::{experiments::density_error, SimConfig};
//!
//! let mut cfg = SimConfig::tiny(); // test-sized: coarse lattice, few trials
//! cfg.beacon_counts = vec![20, 100, 240];
//! let points = density_error::run(&cfg, 0.0);
//! assert_eq!(points.len(), 3);
//! // Error falls with density (Figure 4's headline shape).
//! assert!(points[2].mean_error.estimate < points[0].mean_error.estimate);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod demo;
pub mod experiments;
pub mod figures;
pub mod progress;
pub mod report;
pub mod runner;
pub mod scratch;
pub mod traceprobe;

pub use checkpoint::{CheckpointOpen, SweepCheckpoint};
pub use config::{AlgorithmKind, PaperConfig, SimConfig};
pub use demo::heatmap_demo;
pub use progress::{
    Ctx, Fanout, MetricsRecorder, NoopProbe, Probe, ProgressProbe, TrialFailureReport,
    TrialRetryReport, TrialTimeoutReport,
};
pub use report::{Figure, Series, SeriesPoint};
pub use runner::{RunPolicy, SupervisedFailure, SupervisedOutcome, TrialFault};
pub use scratch::{with_trial_scratch, TrialScratch};
pub use traceprobe::TraceProbe;
