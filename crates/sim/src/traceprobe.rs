//! Bridges [`Probe`] lifecycle events into the `abp-trace`
//! sink, so one trace file carries both the phase-level spans from the
//! compute crates and the figure/sweep/trial story from the experiment
//! engine.

use crate::checkpoint::CheckpointOpen;
use crate::progress::{Probe, TrialFailureReport, TrialRetryReport, TrialTimeoutReport};
use abp_trace::{Counter, DurationHistogram};
use std::path::Path;
use std::time::Duration;

/// Trials that completed successfully, across all figures of the run.
pub static TRIALS_RUN: Counter = Counter::new("trials_run");

/// Trials that panicked and were excluded from aggregation.
pub static TRIALS_FAILED: Counter = Counter::new("trials_failed");

/// Trial attempts that failed but were re-run under `--retry`.
pub static TRIALS_RETRIED: Counter = Counter::new("trials_retried");

/// Trial attempts aborted by the `--trial-timeout` watchdog.
pub static TRIALS_TIMED_OUT: Counter = Counter::new("trials_timed_out");

/// Per-trial worker busy time.
pub static TRIAL_WALL: DurationHistogram = DurationHistogram::new("trial_wall");

/// A [`Probe`] that forwards every lifecycle event to the `abp-trace`
/// layer: figure/sweep/trial marks become instant events in the trace
/// file, and trial completions feed the [`TRIALS_RUN`]/[`TRIALS_FAILED`]
/// counters and the [`TRIAL_WALL`] histogram.
///
/// Events fire from whichever worker thread finished the work, so in the
/// Chrome export the trial marks land on the per-worker tracks next to
/// that worker's spans. When tracing is disabled every method costs one
/// relaxed atomic load.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceProbe;

impl TraceProbe {
    /// Creates the bridge.
    pub fn new() -> Self {
        TraceProbe
    }
}

impl Probe for TraceProbe {
    fn figure_start(&self, id: &str) {
        abp_trace::span::instant(format!("figure_start {id}"), "probe");
    }

    fn figure_done(&self, id: &str, wall: Duration) {
        abp_trace::span::instant(
            format!("figure_done {id} ({:.2}s)", wall.as_secs_f64()),
            "probe",
        );
    }

    fn sweep_start(&self, experiment: &str, beacons: usize, trials: usize) {
        abp_trace::span::instant(
            format!("sweep_start {experiment} @ {beacons} beacons ({trials} trials)"),
            "probe",
        );
    }

    fn sweep_done(&self, experiment: &str, beacons: usize, wall: Duration, from_checkpoint: bool) {
        let how = if from_checkpoint {
            "checkpoint"
        } else {
            "computed"
        };
        abp_trace::span::instant(
            format!(
                "sweep_done {experiment} @ {beacons} beacons ({:.2}s, {how})",
                wall.as_secs_f64()
            ),
            "probe",
        );
    }

    fn trial_done(&self, busy: Duration) {
        TRIALS_RUN.add(1);
        TRIAL_WALL.record(busy);
    }

    fn trial_failed(&self, failure: &TrialFailureReport) {
        TRIALS_FAILED.add(1);
        abp_trace::span::instant(
            format!(
                "trial_failed {} trial {} seed {:#018x}",
                failure.experiment, failure.trial, failure.seed
            ),
            "probe",
        );
    }

    fn trial_retried(&self, retry: &TrialRetryReport) {
        TRIALS_RETRIED.add(1);
        abp_trace::span::instant(
            format!(
                "trial_retried {} trial {} attempt {}",
                retry.experiment, retry.trial, retry.failed_attempt
            ),
            "probe",
        );
    }

    fn trial_timed_out(&self, timeout: &TrialTimeoutReport) {
        TRIALS_TIMED_OUT.add(1);
        abp_trace::span::instant(
            format!(
                "trial_timed_out {} trial {} attempt {} limit {:?}",
                timeout.experiment, timeout.trial, timeout.attempt, timeout.limit
            ),
            "probe",
        );
    }

    fn checkpoint_opened(&self, path: &Path, open: &CheckpointOpen) {
        abp_trace::span::instant(
            format!("checkpoint_opened {}: {open:?}", path.display()),
            "probe",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Both tests toggle the global trace gate and read shared counters;
    /// serialize them so they cannot observe each other's increments.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_bridge_is_inert() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        abp_trace::set_enabled(false);
        let p = TraceProbe::new();
        let before = TRIALS_RUN.total();
        p.figure_start("fig4");
        p.trial_done(Duration::from_millis(1));
        p.trial_failed(&TrialFailureReport {
            experiment: "density-error",
            density_index: 0,
            beacons: 20,
            trial: 0,
            seed: 1,
            message: "boom".into(),
        });
        p.figure_done("fig4", Duration::from_millis(2));
        assert_eq!(TRIALS_RUN.total(), before, "gate off: nothing counted");
    }

    #[test]
    fn enabled_bridge_counts_trials() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        abp_trace::set_enabled(true);
        let p = TraceProbe::new();
        let runs = TRIALS_RUN.total();
        let fails = TRIALS_FAILED.total();
        let walls = TRIAL_WALL.count();
        p.trial_done(Duration::from_millis(3));
        p.trial_failed(&TrialFailureReport {
            experiment: "density-error",
            density_index: 0,
            beacons: 20,
            trial: 0,
            seed: 1,
            message: "boom".into(),
        });
        abp_trace::set_enabled(false);
        assert_eq!(TRIALS_RUN.total(), runs + 1);
        assert_eq!(TRIALS_FAILED.total(), fails + 1);
        assert_eq!(TRIAL_WALL.count(), walls + 1);
    }

    #[test]
    fn enabled_bridge_counts_retries_and_timeouts() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        abp_trace::set_enabled(true);
        let p = TraceProbe::new();
        let retries = TRIALS_RETRIED.total();
        let timeouts = TRIALS_TIMED_OUT.total();
        p.trial_retried(&TrialRetryReport {
            experiment: "fault-robustness",
            density_index: 0,
            beacons: 20,
            trial: 0,
            failed_attempt: 0,
            fault: "boom".into(),
            backoff: Duration::from_millis(1),
        });
        p.trial_timed_out(&TrialTimeoutReport {
            experiment: "fault-robustness",
            density_index: 0,
            beacons: 20,
            trial: 0,
            attempt: 0,
            limit: Duration::from_secs(30),
        });
        p.checkpoint_opened(Path::new("x.ckpt"), &CheckpointOpen::Created);
        abp_trace::set_enabled(false);
        assert_eq!(TRIALS_RETRIED.total(), retries + 1);
        assert_eq!(TRIALS_TIMED_OUT.total(), timeouts + 1);
    }
}
