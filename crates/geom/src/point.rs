//! Points and displacement vectors in the plane.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in the plane, in meters.
///
/// `Point` is the coordinate type used for beacon positions, client
/// positions, and localization estimates throughout the workspace.
///
/// # Example
///
/// ```
/// use abp_geom::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!(a.midpoint(b), Point::new(1.5, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (meters).
    pub x: f64,
    /// Vertical coordinate (meters).
    pub y: f64,
}

/// A displacement between two [`Point`]s, in meters.
///
/// Produced by subtracting points; added back to points to translate them.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component (meters).
    pub x: f64,
    /// Vertical component (meters).
    pub y: f64,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    ///
    /// This is the paper's localization-error metric
    /// `LE = sqrt((Xest-Xa)^2 + (Yest-Ya)^2)` when applied to an estimate
    /// and an actual position.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Point::distance`]; prefer it for comparisons against a
    /// squared radius.
    #[inline]
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The point halfway between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    ///
    /// `t` outside `[0, 1]` extrapolates along the same line.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Displacement vector from `self` to `other`.
    #[inline]
    pub fn to(self, other: Point) -> Vec2 {
        other - self
    }

    /// Returns `true` if both coordinates are finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length of the vector.
    #[inline]
    pub fn length(self) -> f64 {
        self.length_squared().sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (the z-component of the 3D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The vector scaled to unit length, or `None` if it is (near) zero.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        if len <= f64::EPSILON {
            None
        } else {
            Some(self / len)
        }
    }

    /// The vector rotated 90 degrees counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

/// Centroid (arithmetic mean) of a set of points.
///
/// Returns `None` for an empty input. This is the estimator at the heart of
/// the paper's connectivity-based localization: a client estimates its
/// position as the centroid of all connected beacons.
///
/// # Example
///
/// ```
/// use abp_geom::{centroid, Point};
/// let pts = [Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 3.0)];
/// assert_eq!(centroid(pts.iter().copied()), Some(Point::new(1.0, 1.0)));
/// assert_eq!(centroid(std::iter::empty()), None);
/// ```
pub fn centroid<I: IntoIterator<Item = Point>>(points: I) -> Option<Point> {
    let mut sum_x = 0.0;
    let mut sum_y = 0.0;
    let mut n = 0usize;
    for p in points {
        sum_x += p.x;
        sum_y += p.y;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        let inv = 1.0 / n as f64;
        Some(Point::new(sum_x * inv, sum_y * inv))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.3}, {:.3}>", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(Vec2::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(-3.5, 7.25);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        let m = a.midpoint(b);
        assert_eq!(m, Point::new(5.0, -2.0));
        assert!((a.distance(m) - b.distance(m)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(2.0, 2.0);
        let b = Point::new(6.0, 10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn point_vector_arithmetic_roundtrips() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, -2.0);
        let v = b - a;
        assert_eq!(a + v, b);
        assert_eq!(b - v, a);
        let mut c = a;
        c += v;
        assert_eq!(c, b);
        c -= v;
        assert_eq!(c, a);
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(v.cross(Vec2::new(1.0, 0.0)), -4.0);
        assert_eq!(-v, Vec2::new(-3.0, -4.0));
        assert_eq!(v * 2.0, Vec2::new(6.0, 8.0));
        assert_eq!(2.0 * v, v * 2.0);
        assert_eq!(v / 2.0, Vec2::new(1.5, 2.0));
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((v.length() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn perp_is_orthogonal_and_ccw() {
        let v = Vec2::new(2.0, 1.0);
        let p = v.perp();
        assert_eq!(v.dot(p), 0.0);
        assert!(v.cross(p) > 0.0);
    }

    #[test]
    fn centroid_of_triangle() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
        ];
        assert_eq!(centroid(pts.iter().copied()), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn centroid_of_single_point_is_itself() {
        let p = Point::new(7.0, -2.0);
        assert_eq!(centroid(std::iter::once(p)), Some(p));
    }

    #[test]
    fn centroid_empty_is_none() {
        assert_eq!(centroid(std::iter::empty()), None);
    }

    #[test]
    fn conversions_tuple_roundtrip() {
        let p: Point = (1.5, 2.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, 2.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1.000, 2.000)");
        assert_eq!(Vec2::new(1.0, 2.0).to_string(), "<1.000, 2.000>");
    }

    #[test]
    fn vec2_sum() {
        let vs = [
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 3.0),
            Vec2::new(-1.0, 1.0),
        ];
        let s: Vec2 = vs.iter().copied().sum();
        assert_eq!(s, Vec2::new(2.0, 4.0));
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
