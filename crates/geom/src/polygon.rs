//! Simple polygons for locus regions.
//!
//! The locus-based localization extension (paper §6) represents a client's
//! feasible region — the intersection of connected beacons' coverage disks —
//! as a polygon (a fine polygonal approximation of the disk intersection).
//! This module provides the polygon machinery: signed area, centroid,
//! point-in-polygon, and convex clipping against half-planes and disks.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple polygon given by its vertices in order (either winding).
///
/// Most operations assume a *convex* polygon with counter-clockwise winding,
/// which is what disk-intersection clipping produces.
///
/// # Example
///
/// ```
/// use abp_geom::{Point, Polygon};
/// let square = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(2.0, 2.0),
///     Point::new(0.0, 2.0),
/// ]);
/// assert_eq!(square.area(), 4.0);
/// assert_eq!(square.centroid(), Some(Point::new(1.0, 1.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from vertices in order.
    pub fn new(vertices: Vec<Point>) -> Self {
        Polygon { vertices }
    }

    /// A regular `n`-gon inscribed in the circle of `radius` around
    /// `center`, counter-clockwise, first vertex at angle `phase` radians.
    ///
    /// Used to seed disk-intersection clipping with a fine approximation of
    /// the first coverage disk.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `radius` is negative/not finite.
    pub fn regular(center: Point, radius: f64, n: usize, phase: f64) -> Self {
        assert!(n >= 3, "a polygon needs at least 3 vertices, got {n}");
        assert!(
            radius.is_finite() && radius >= 0.0,
            "polygon radius must be finite and non-negative, got {radius}"
        );
        let vertices = (0..n)
            .map(|k| {
                let theta = phase + std::f64::consts::TAU * k as f64 / n as f64;
                Point::new(
                    center.x + radius * theta.cos(),
                    center.y + radius * theta.sin(),
                )
            })
            .collect();
        Polygon { vertices }
    }

    /// The polygon's vertices in order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` if the polygon has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Signed area via the shoelace formula: positive for counter-clockwise
    /// winding, negative for clockwise. Zero for degenerate polygons.
    pub fn signed_area(&self) -> f64 {
        if self.vertices.len() < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (k, &a) in self.vertices.iter().enumerate() {
            let b = self.vertices[(k + 1) % self.vertices.len()];
            acc += a.x * b.y - b.x * a.y;
        }
        acc * 0.5
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Area centroid (center of mass of the enclosed region).
    ///
    /// Returns `None` for polygons with fewer than 3 vertices or
    /// (numerically) zero area — callers should fall back to the vertex
    /// mean in that case.
    pub fn centroid(&self) -> Option<Point> {
        if self.vertices.len() < 3 {
            return None;
        }
        let a = self.signed_area();
        if a.abs() < 1e-12 {
            return None;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for (k, &p) in self.vertices.iter().enumerate() {
            let q = self.vertices[(k + 1) % self.vertices.len()];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        let inv = 1.0 / (6.0 * a);
        Some(Point::new(cx * inv, cy * inv))
    }

    /// Mean of the vertices — a cheap centroid surrogate that is defined
    /// even for degenerate polygons.
    pub fn vertex_mean(&self) -> Option<Point> {
        crate::point::centroid(self.vertices.iter().copied())
    }

    /// Clips the polygon against the half-plane on the *left* of the
    /// directed line `a -> b` (Sutherland–Hodgman step).
    ///
    /// For convex input the output is convex. An empty polygon stays empty.
    pub fn clip_half_plane(&self, a: Point, b: Point) -> Polygon {
        let dir = b - a;
        let inside = |p: Point| dir.cross(p - a) >= 0.0;
        let mut out = Vec::with_capacity(self.vertices.len() + 4);
        let n = self.vertices.len();
        for k in 0..n {
            let cur = self.vertices[k];
            let nxt = self.vertices[(k + 1) % n];
            let cur_in = inside(cur);
            let nxt_in = inside(nxt);
            if cur_in {
                out.push(cur);
            }
            if cur_in != nxt_in {
                // Edge crosses the line: add the intersection point.
                let denom = dir.cross(nxt - cur);
                if denom.abs() > f64::EPSILON {
                    let t = dir.cross(a - cur) / denom;
                    out.push(cur.lerp(nxt, t.clamp(0.0, 1.0)));
                }
            }
        }
        Polygon { vertices: out }
    }

    /// Clips the polygon against a disk, approximating the circular arc by
    /// `arc_segments` chords (Sutherland–Hodgman against the disk's
    /// circumscribed polygon would *over*-approximate, so we clip against
    /// the *inscribed* polygon, slightly under-approximating the disk).
    ///
    /// # Panics
    ///
    /// Panics if `arc_segments < 3`.
    pub fn clip_disk(&self, center: Point, radius: f64, arc_segments: usize) -> Polygon {
        assert!(arc_segments >= 3, "need at least 3 arc segments");
        let mut poly = self.clone();
        for k in 0..arc_segments {
            if poly.is_empty() {
                break;
            }
            let t0 = std::f64::consts::TAU * k as f64 / arc_segments as f64;
            let t1 = std::f64::consts::TAU * (k + 1) as f64 / arc_segments as f64;
            let a = Point::new(center.x + radius * t0.cos(), center.y + radius * t0.sin());
            let b = Point::new(center.x + radius * t1.cos(), center.y + radius * t1.sin());
            // Interior of the inscribed polygon is on the left of each
            // CCW-ordered chord.
            poly = poly.clip_half_plane(a, b);
        }
        poly
    }

    /// Point-in-polygon test (even-odd rule); boundary points may go either
    /// way and should not be relied upon.
    pub fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[j];
            if ((a.y > p.y) != (b.y > p.y)) && (p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "polygon[{} vertices, area {:.3}]",
            self.len(),
            self.area()
        )
    }
}

impl FromIterator<Point> for Polygon {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Polygon::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
    }

    #[test]
    fn shoelace_signed_area() {
        assert_eq!(unit_square().signed_area(), 1.0);
        let cw: Polygon = unit_square().vertices().iter().rev().copied().collect();
        assert_eq!(cw.signed_area(), -1.0);
        assert_eq!(cw.area(), 1.0);
    }

    #[test]
    fn degenerate_polygons_zero_area() {
        assert_eq!(Polygon::new(vec![]).area(), 0.0);
        assert_eq!(Polygon::new(vec![Point::ORIGIN]).area(), 0.0);
        assert_eq!(
            Polygon::new(vec![Point::ORIGIN, Point::new(1.0, 1.0)]).area(),
            0.0
        );
    }

    #[test]
    fn centroid_of_square_and_triangle() {
        assert_eq!(unit_square().centroid(), Some(Point::new(0.5, 0.5)));
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
        ]);
        assert_eq!(tri.centroid(), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn centroid_degenerate_falls_back_to_none() {
        let line = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ]);
        assert_eq!(line.centroid(), None);
        assert_eq!(line.vertex_mean(), Some(Point::new(1.0, 0.0)));
    }

    #[test]
    fn regular_polygon_approximates_circle() {
        let poly = Polygon::regular(Point::new(2.0, 3.0), 1.0, 256, 0.0);
        assert!((poly.area() - PI).abs() < 1e-3);
        let c = poly.centroid().unwrap();
        assert!(c.distance(Point::new(2.0, 3.0)) < 1e-9);
    }

    #[test]
    fn clip_half_plane_cuts_square() {
        // Keep left of upward line x = 0.5 (direction +y).
        let clipped = unit_square().clip_half_plane(Point::new(0.5, 0.0), Point::new(0.5, 1.0));
        assert!((clipped.area() - 0.5).abs() < 1e-12);
        for v in clipped.vertices() {
            assert!(v.x <= 0.5 + 1e-12);
        }
    }

    #[test]
    fn clip_half_plane_no_cut_keeps_all() {
        let clipped = unit_square().clip_half_plane(Point::new(5.0, 0.0), Point::new(5.0, 1.0));
        assert!((clipped.area() - 1.0).abs() < 1e-12);
        // Upward line at x = -1 keeps only x <= -1: the square vanishes.
        let gone = unit_square().clip_half_plane(Point::new(-1.0, 0.0), Point::new(-1.0, 1.0));
        assert_eq!(gone.area(), 0.0);
    }

    #[test]
    fn clip_disk_lens_matches_analytic() {
        // Intersection of two unit disks 1 apart, computed by clipping a
        // fine polygon of one disk against the other.
        let a = Polygon::regular(Point::ORIGIN, 1.0, 720, 0.0);
        let lens = a.clip_disk(Point::new(1.0, 0.0), 1.0, 720);
        let expected = 2.0 * (0.5f64).acos() - 0.5 * 3.0f64.sqrt();
        assert!(
            (lens.area() - expected).abs() < 2e-3,
            "got {}, want {expected}",
            lens.area()
        );
    }

    #[test]
    fn contains_interior_and_exterior() {
        let sq = unit_square();
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(!sq.contains(Point::new(1.5, 0.5)));
        assert!(!sq.contains(Point::new(-0.1, 0.5)));
    }
}
