//! Line segments.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A line segment between two distinct endpoints.
///
/// Used for radio-obstacle walls (`abp-radio`), robot path legs, and any
/// line-of-sight reasoning.
///
/// # Example
///
/// ```
/// use abp_geom::{Point, Segment};
/// let a = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
/// let b = Segment::new(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
/// assert!(a.intersects(&b));
/// assert_eq!(a.length(), 8f64.sqrt());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints coincide or are not finite.
    pub fn new(a: Point, b: Point) -> Self {
        assert!(
            a.is_finite() && b.is_finite(),
            "segment endpoints must be finite"
        );
        assert!(
            a.distance_squared(b) > 0.0,
            "segment endpoints must differ, got {a}"
        );
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// The midpoint.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// The point at parameter `t` (`0` = `a`, `1` = `b`).
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Returns `true` if this segment shares at least one point with
    /// `other`. Touching endpoints and collinear overlap count as
    /// intersections (the conservative convention for line-of-sight
    /// blocking).
    pub fn intersects(&self, other: &Segment) -> bool {
        segments_intersect(self.a, self.b, other.a, other.b)
    }

    /// The smallest distance from `p` to any point of the segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let ab = self.b - self.a;
        let t = ((p - self.a).dot(ab) / ab.length_squared()).clamp(0.0, 1.0);
        self.at(t).distance(p)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "segment {} - {}", self.a, self.b)
    }
}

/// Classic orientation-based segment intersection test. Collinear overlaps
/// and touching endpoints are treated as intersecting.
pub fn segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool {
    fn orient(a: Point, b: Point, c: Point) -> f64 {
        (b - a).cross(c - a)
    }
    fn on_segment(a: Point, b: Point, c: Point) -> bool {
        c.x >= a.x.min(b.x) && c.x <= a.x.max(b.x) && c.y >= a.y.min(b.y) && c.y <= a.y.max(b.y)
    }
    let d1 = orient(q1, q2, p1);
    let d2 = orient(q1, q2, p2);
    let d3 = orient(p1, p2, q1);
    let d4 = orient(p1, p2, q2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && on_segment(q1, q2, p1))
        || (d2 == 0.0 && on_segment(q1, q2, p2))
        || (d3 == 0.0 && on_segment(p1, p2, q1))
        || (d4 == 0.0 && on_segment(p1, p2, q2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_segments_intersect() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Segment::new(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn parallel_segments_do_not() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let b = Segment::new(Point::new(0.0, 1.0), Point::new(1.0, 1.0));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn touching_endpoint_counts() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Segment::new(Point::new(1.0, 1.0), Point::new(2.0, 0.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn collinear_overlap_counts() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let b = Segment::new(Point::new(1.0, 0.0), Point::new(3.0, 0.0));
        assert!(a.intersects(&b));
        let c = Segment::new(Point::new(3.0, 0.0), Point::new(4.0, 0.0));
        assert!(!a.intersects(&c) || a.b.distance(c.a) < 1.0); // disjoint collinear
    }

    #[test]
    fn t_near_miss_does_not_intersect() {
        // Segment ending just short of another.
        let a = Segment::new(Point::new(0.0, -1.0), Point::new(0.0, -0.01));
        let b = Segment::new(Point::new(-1.0, 0.0), Point::new(1.0, 0.0));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn geometry_accessors() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
        assert_eq!(s.at(0.0), s.a);
        assert_eq!(s.at(1.0), s.b);
    }

    #[test]
    fn distance_to_point_cases() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0); // interior
        assert_eq!(s.distance_to_point(Point::new(-4.0, 3.0)), 5.0); // past a
        assert_eq!(s.distance_to_point(Point::new(13.0, 4.0)), 5.0); // past b
        assert_eq!(s.distance_to_point(Point::new(7.0, 0.0)), 0.0); // on it
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn rejects_degenerate_segment() {
        let _ = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
    }
}
