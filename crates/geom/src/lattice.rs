//! The survey measurement lattice.
//!
//! The paper's exploration agent measures localization error at every point
//! `(i*step, j*step)` of the terrain — the corners obtained by subdividing
//! the terrain into `step x step` squares. [`Lattice`] models that set of
//! points, provides dense row-major indexing for per-point accumulators, and
//! fast enumeration of the lattice points inside a disk (the inner loop of
//! the beacon-major survey).

use crate::disk::Disk;
use crate::point::Point;
use crate::rect::{Rect, Terrain};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2D lattice index `(i, j)`: column `i` along x, row `j` along y.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LatticeIndex {
    /// Column (x) index.
    pub i: u32,
    /// Row (y) index.
    pub j: u32,
}

impl LatticeIndex {
    /// Creates an index from column and row.
    #[inline]
    pub const fn new(i: u32, j: u32) -> Self {
        LatticeIndex { i, j }
    }
}

impl fmt::Display for LatticeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.i, self.j)
    }
}

/// The `step`-spaced measurement lattice over a square [`Terrain`].
///
/// For a terrain of side `Side` and spacing `step`, the lattice has
/// `per_side = floor(Side/step) + 1` points per axis, for a total of
/// `PT = per_side²` points — the paper's *number of data points in the
/// terrain* (`PT = (Side/step + 1)²` with `Side = 100`, `step = 1` gives
/// `PT = 10 201`).
///
/// # Example
///
/// ```
/// use abp_geom::{Lattice, LatticeIndex, Point, Terrain};
/// let lat = Lattice::new(Terrain::square(100.0), 1.0);
/// assert_eq!(lat.per_side(), 101);
/// assert_eq!(lat.len(), 10_201);
/// assert_eq!(lat.point(LatticeIndex::new(3, 7)), Point::new(3.0, 7.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lattice {
    terrain: Terrain,
    step: f64,
    per_side: u32,
}

impl Lattice {
    /// Creates the lattice for `terrain` with spacing `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not finite and strictly positive, or if `step`
    /// exceeds the terrain side (the survey would have a single row/column,
    /// which the paper's algorithms do not define).
    pub fn new(terrain: Terrain, step: f64) -> Self {
        assert!(
            step.is_finite() && step > 0.0,
            "lattice step must be finite and positive, got {step}"
        );
        assert!(
            step <= terrain.side(),
            "lattice step {step} exceeds terrain side {}",
            terrain.side()
        );
        // +0.5 ulp-ish guard: 100.0/1.0 is exact, but e.g. 1.0/0.1 is 9.999..
        let per_side = ((terrain.side() / step) + 1e-9).floor() as u32 + 1;
        Lattice {
            terrain,
            step,
            per_side,
        }
    }

    /// The underlying terrain.
    #[inline]
    pub fn terrain(&self) -> Terrain {
        self.terrain
    }

    /// Lattice spacing in meters.
    #[inline]
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Number of lattice points along each axis.
    #[inline]
    pub fn per_side(&self) -> u32 {
        self.per_side
    }

    /// Total number of lattice points (`PT` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        (self.per_side as usize) * (self.per_side as usize)
    }

    /// Returns `true` if the lattice has no points (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The position of the lattice point at `idx`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions only) if `idx` is out of bounds.
    #[inline]
    pub fn point(&self, idx: LatticeIndex) -> Point {
        debug_assert!(idx.i < self.per_side && idx.j < self.per_side);
        Point::new(idx.i as f64 * self.step, idx.j as f64 * self.step)
    }

    /// Row-major flat offset of `idx`, suitable for indexing a `Vec` of
    /// per-point accumulators.
    #[inline]
    pub fn flat(&self, idx: LatticeIndex) -> usize {
        idx.j as usize * self.per_side as usize + idx.i as usize
    }

    /// Inverse of [`Lattice::flat`].
    ///
    /// # Panics
    ///
    /// Panics (debug assertions only) if `offset >= self.len()`.
    #[inline]
    pub fn unflat(&self, offset: usize) -> LatticeIndex {
        debug_assert!(offset < self.len());
        LatticeIndex {
            i: (offset % self.per_side as usize) as u32,
            j: (offset / self.per_side as usize) as u32,
        }
    }

    /// The lattice point nearest to an arbitrary position (ties round half
    /// up). The position is clamped to the terrain first.
    pub fn nearest(&self, p: Point) -> LatticeIndex {
        let c = self.terrain.bounds().clamp_point(p);
        let max = self.per_side - 1;
        LatticeIndex {
            i: ((c.x / self.step).round() as u32).min(max),
            j: ((c.y / self.step).round() as u32).min(max),
        }
    }

    /// Iterates all lattice indices in row-major order (`j` outer, `i`
    /// inner), matching [`Lattice::flat`] order.
    pub fn indices(&self) -> impl Iterator<Item = LatticeIndex> + '_ {
        let n = self.per_side;
        (0..n).flat_map(move |j| (0..n).map(move |i| LatticeIndex { i, j }))
    }

    /// Iterates all lattice points in row-major order.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.indices().map(move |ix| self.point(ix))
    }

    /// The inclusive index range `[lo, hi]` of lattice columns/rows whose
    /// coordinate falls within `[min, max]`, or `None` if the slab misses
    /// the lattice entirely.
    fn axis_range(&self, min: f64, max: f64) -> Option<(u32, u32)> {
        if max < 0.0 || min > (self.per_side - 1) as f64 * self.step {
            return None;
        }
        let lo = (min / self.step).ceil().max(0.0) as u32;
        let hi = ((max / self.step).floor() as i64).min(self.per_side as i64 - 1);
        if hi < lo as i64 {
            return None;
        }
        Some((lo, hi as u32))
    }

    /// The inclusive index range `[lo, hi]` of lattice columns (or rows —
    /// the lattice is square) whose coordinate falls within `[min, max]`,
    /// or `None` if the slab misses the lattice entirely.
    ///
    /// This is exactly the span [`Lattice::for_each_in_rect`] enumerates
    /// per axis; exposed so callers that cache per-row aggregates (the
    /// incremental Grid scorer in `abp-placement`) can partition the
    /// lattice identically.
    pub fn index_span(&self, min: f64, max: f64) -> Option<(u32, u32)> {
        self.axis_range(min, max)
    }

    /// Enumerates the lattice points inside `disk` (boundary included),
    /// invoking `f(index, point)` for each.
    ///
    /// This is the hot inner loop of the beacon-major survey: the caller
    /// visits, per beacon, only the `O((R/step)²)` points the beacon can
    /// reach rather than the full lattice.
    pub fn for_each_in_disk<F: FnMut(LatticeIndex, Point)>(&self, disk: Disk, f: F) {
        let c = disk.center();
        let r = disk.radius();
        let Some((j_lo, j_hi)) = self.axis_range(c.y - r, c.y + r) else {
            return;
        };
        self.for_each_in_disk_rows(disk, j_lo, j_hi, f);
    }

    /// [`Lattice::for_each_in_disk`] restricted to lattice rows
    /// `j_lo..=j_hi` — the same per-row membership math, over a caller-
    /// chosen row band.
    ///
    /// This is the banding primitive of the intra-survey tile scheduler
    /// (`abp-survey`): the disk's full row span comes from
    /// [`Lattice::index_span`]`(c.y - r, c.y + r)`, gets split into
    /// contiguous bands, and each worker enumerates its band through this
    /// method. Because each row is processed independently, the union of
    /// any disjoint band cover visits exactly the points
    /// [`Lattice::for_each_in_disk`] would, with identical `(index,
    /// point)` values.
    ///
    /// Rows must lie within the lattice (`j_hi < per_side`); rows outside
    /// the disk simply match no points.
    pub fn for_each_in_disk_rows<F: FnMut(LatticeIndex, Point)>(
        &self,
        disk: Disk,
        j_lo: u32,
        j_hi: u32,
        mut f: F,
    ) {
        debug_assert!(j_hi < self.per_side, "row band exceeds the lattice");
        let c = disk.center();
        let r = disk.radius();
        let r2 = r * r;
        for j in j_lo..=j_hi {
            let y = j as f64 * self.step;
            let dy = y - c.y;
            let span2 = r2 - dy * dy;
            if span2 < 0.0 {
                continue;
            }
            let span = span2.sqrt();
            let Some((i_lo, i_hi)) = self.axis_range(c.x - span, c.x + span) else {
                continue;
            };
            for i in i_lo..=i_hi {
                let x = i as f64 * self.step;
                // The slab computation already guarantees membership up to
                // floating-point rounding; re-check to keep the contract
                // exact for callers that compare against radius elsewhere.
                let dx = x - c.x;
                if dx * dx + dy * dy <= r2 {
                    f(LatticeIndex { i, j }, Point::new(x, y));
                }
            }
        }
    }

    /// Enumerates the lattice points inside the axis-aligned rectangle
    /// `rect` (boundary included), invoking `f(index, point)` for each.
    ///
    /// Used by the Grid placement algorithm to accumulate cumulative error
    /// per overlapping grid.
    pub fn for_each_in_rect<F: FnMut(LatticeIndex, Point)>(&self, rect: &Rect, mut f: F) {
        let Some((i_lo, i_hi)) = self.axis_range(rect.min().x, rect.max().x) else {
            return;
        };
        let Some((j_lo, j_hi)) = self.axis_range(rect.min().y, rect.max().y) else {
            return;
        };
        for j in j_lo..=j_hi {
            let y = j as f64 * self.step;
            for i in i_lo..=i_hi {
                f(LatticeIndex { i, j }, Point::new(i as f64 * self.step, y));
            }
        }
    }

    /// Collects the flat offsets of lattice points inside `disk`.
    ///
    /// Convenience wrapper over [`Lattice::for_each_in_disk`] for callers
    /// that need to revisit the same point set (e.g. incremental re-survey).
    pub fn offsets_in_disk(&self, disk: Disk) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_in_disk(disk, |ix, _| out.push(self.flat(ix)));
        out
    }
}

impl fmt::Display for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} lattice (step {} m) over {}",
            self.per_side, self.per_side, self.step, self.terrain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_lattice() -> Lattice {
        Lattice::new(Terrain::square(100.0), 1.0)
    }

    #[test]
    fn paper_dimensions() {
        let lat = paper_lattice();
        assert_eq!(lat.per_side(), 101);
        assert_eq!(lat.len(), 10_201);
    }

    #[test]
    fn fractional_step_dimensions() {
        let lat = Lattice::new(Terrain::square(10.0), 2.5);
        assert_eq!(lat.per_side(), 5); // 0, 2.5, 5, 7.5, 10
        let lat = Lattice::new(Terrain::square(1.0), 0.1);
        assert_eq!(lat.per_side(), 11);
    }

    #[test]
    fn point_and_flat_roundtrip() {
        let lat = paper_lattice();
        for &(i, j) in &[(0u32, 0u32), (100, 100), (3, 97), (50, 50)] {
            let ix = LatticeIndex::new(i, j);
            assert_eq!(lat.point(ix), Point::new(i as f64, j as f64));
            assert_eq!(lat.unflat(lat.flat(ix)), ix);
        }
        assert_eq!(lat.flat(LatticeIndex::new(0, 0)), 0);
        assert_eq!(lat.flat(LatticeIndex::new(100, 100)), 10_200);
    }

    #[test]
    fn indices_order_matches_flat() {
        let lat = Lattice::new(Terrain::square(3.0), 1.0);
        let idxs: Vec<_> = lat.indices().collect();
        assert_eq!(idxs.len(), 16);
        for (k, ix) in idxs.iter().enumerate() {
            assert_eq!(lat.flat(*ix), k);
        }
    }

    #[test]
    fn nearest_rounds_and_clamps() {
        let lat = paper_lattice();
        assert_eq!(lat.nearest(Point::new(3.4, 7.6)), LatticeIndex::new(3, 8));
        assert_eq!(
            lat.nearest(Point::new(-5.0, 50.0)),
            LatticeIndex::new(0, 50)
        );
        assert_eq!(
            lat.nearest(Point::new(500.0, 100.0)),
            LatticeIndex::new(100, 100)
        );
    }

    #[test]
    fn disk_enumeration_matches_bruteforce() {
        let lat = Lattice::new(Terrain::square(20.0), 1.0);
        for &(cx, cy, r) in &[
            (10.0, 10.0, 3.0),
            (0.0, 0.0, 5.0),
            (19.5, 2.5, 4.0),
            (10.0, 10.0, 0.0),
            (-3.0, 10.0, 2.0), // fully outside
            (10.0, 10.0, 100.0),
        ] {
            let disk = Disk::new(Point::new(cx, cy), r);
            let mut fast = Vec::new();
            lat.for_each_in_disk(disk, |ix, _| fast.push(ix));
            let mut brute: Vec<_> = lat
                .indices()
                .filter(|ix| lat.point(*ix).distance_squared(disk.center()) <= r * r)
                .collect();
            fast.sort();
            brute.sort();
            assert_eq!(fast, brute, "disk ({cx},{cy},{r})");
        }
    }

    #[test]
    fn disk_row_bands_union_to_the_full_enumeration() {
        let lat = Lattice::new(Terrain::square(20.0), 1.0);
        for &(cx, cy, r) in &[(10.0, 10.0, 3.0), (0.0, 0.0, 5.0), (19.5, 2.5, 4.0)] {
            let disk = Disk::new(Point::new(cx, cy), r);
            let mut full = Vec::new();
            lat.for_each_in_disk(disk, |ix, p| full.push((ix, p)));
            let (j_lo, j_hi) = lat.index_span(cy - r, cy + r).unwrap();
            // Any disjoint row-band cover must visit the same (index,
            // point) sequence band by band, in the same per-row order.
            for split in j_lo..=j_hi {
                let mut banded = Vec::new();
                lat.for_each_in_disk_rows(disk, j_lo, split, |ix, p| banded.push((ix, p)));
                if split < j_hi {
                    lat.for_each_in_disk_rows(disk, split + 1, j_hi, |ix, p| banded.push((ix, p)));
                }
                assert_eq!(banded, full, "disk ({cx},{cy},{r}) split at row {split}");
            }
            // Rows outside the disk match nothing.
            if j_hi + 1 < lat.per_side() {
                lat.for_each_in_disk_rows(disk, j_hi + 1, j_hi + 1, |ix, _| {
                    panic!("row past the disk matched {ix}")
                });
            }
        }
    }

    #[test]
    fn rect_enumeration_matches_bruteforce() {
        let lat = Lattice::new(Terrain::square(20.0), 1.0);
        let cases = [
            Rect::new(Point::new(2.5, 3.0), Point::new(7.0, 9.5)),
            Rect::new(Point::new(-5.0, -5.0), Point::new(3.0, 3.0)),
            Rect::new(Point::new(18.0, 18.0), Point::new(30.0, 30.0)),
            Rect::new(Point::new(25.0, 0.0), Point::new(30.0, 5.0)), // outside
        ];
        for rect in &cases {
            let mut fast = Vec::new();
            lat.for_each_in_rect(rect, |ix, _| fast.push(ix));
            let mut brute: Vec<_> = lat
                .indices()
                .filter(|ix| rect.contains(lat.point(*ix)))
                .collect();
            fast.sort();
            brute.sort();
            assert_eq!(fast, brute, "rect {rect}");
        }
    }

    #[test]
    fn offsets_in_disk_counts() {
        let lat = Lattice::new(Terrain::square(10.0), 1.0);
        // Unit-radius disk at a lattice point covers the point + 4 neighbors.
        let offs = lat.offsets_in_disk(Disk::new(Point::new(5.0, 5.0), 1.0));
        assert_eq!(offs.len(), 5);
    }

    #[test]
    #[should_panic(expected = "lattice step")]
    fn rejects_zero_step() {
        let _ = Lattice::new(Terrain::square(10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds terrain side")]
    fn rejects_step_larger_than_side() {
        let _ = Lattice::new(Terrain::square(10.0), 11.0);
    }
}
