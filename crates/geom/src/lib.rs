//! 2D geometry substrate for the `beaconplace` workspace.
//!
//! This crate provides the spatial primitives every other crate in the
//! workspace builds on:
//!
//! * [`Point`] and [`Vec2`] — positions and displacements in the plane,
//! * [`Rect`] and [`Terrain`] — axis-aligned regions and the square
//!   deployment terrain used throughout the paper,
//! * [`Lattice`] — the `step`-spaced measurement lattice a survey agent
//!   walks (the paper's `(i·step, j·step)` grid corners),
//! * [`Disk`] — radio coverage disks and fast lattice/disk intersection,
//! * [`GridBins`] — a uniform grid-bin spatial index with deterministic,
//!   insertion-ordered radius queries (the indexed sweep's backbone),
//! * [`circle`] — circle–circle intersection and lens areas (used by the
//!   locus-based localizer),
//! * [`polygon`] — polygon area/centroid for locus regions,
//! * [`hash`] — deterministic, splittable hashing used to realize the
//!   paper's *static* propagation-noise field without storing it.
//!
//! Everything here is `f64`-based, allocation-free where possible, and
//! deterministic: the same inputs always produce bit-identical outputs, a
//! property the Monte-Carlo experiment engine relies on.
//!
//! # Example
//!
//! ```
//! use abp_geom::{Point, Terrain, Lattice};
//!
//! // The paper's terrain: a 100 m x 100 m square surveyed every 1 m.
//! let terrain = Terrain::square(100.0);
//! let lattice = Lattice::new(terrain, 1.0);
//! assert_eq!(lattice.len(), 101 * 101); // PT = (Side/step + 1)^2
//!
//! let p = Point::new(3.0, 4.0);
//! assert_eq!(p.distance(Point::ORIGIN), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bins;
pub mod circle;
pub mod disk;
pub mod hash;
pub mod lattice;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod segment;

pub use bins::GridBins;
pub use circle::{circle_circle_intersections, lens_area, Circle};
pub use disk::Disk;
pub use hash::{splitmix64, DeterministicField};
pub use lattice::{Lattice, LatticeIndex};
pub use point::{centroid, Point, Vec2};
pub use polygon::Polygon;
pub use rect::{Rect, Terrain};
pub use segment::{segments_intersect, Segment};
