//! Coverage disks.

use crate::point::Point;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A closed disk: all points within `radius` of `center`.
///
/// Under the idealized radio model a beacon with nominal range `R` covers
/// exactly the disk of radius `R` around it; under the paper's noise model
/// the *maximum* reachable disk has radius `R(1 + nf(B))`.
///
/// # Example
///
/// ```
/// use abp_geom::{Disk, Point};
/// let d = Disk::new(Point::new(0.0, 0.0), 15.0);
/// assert!(d.contains(Point::new(15.0, 0.0))); // boundary included
/// assert!(!d.contains(Point::new(15.0, 0.1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disk {
    center: Point,
    radius: f64,
}

impl Disk {
    /// Creates a disk from center and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "disk radius must be finite and non-negative, got {radius}"
        );
        Disk { center, radius }
    }

    /// The disk center.
    #[inline]
    pub fn center(&self) -> Point {
        self.center
    }

    /// The disk radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Disk area, `pi * r^2` — the paper's *nominal radio coverage area*
    /// when `r = R`.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_squared(p) <= self.radius * self.radius
    }

    /// Returns `true` if the disks share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Disk) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_squared(other.center) <= r * r
    }

    /// Returns `true` if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_disk(&self, other: &Disk) -> bool {
        if other.radius > self.radius {
            return false;
        }
        let slack = self.radius - other.radius;
        self.center.distance_squared(other.center) <= slack * slack
    }

    /// The smallest axis-aligned rectangle enclosing the disk.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect::square_centered(self.center, self.radius * 2.0)
    }

    /// Disk with the same center and radius scaled by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if the scaled radius would be negative or not finite.
    #[inline]
    pub fn scaled(&self, factor: f64) -> Disk {
        Disk::new(self.center, self.radius * factor)
    }
}

impl fmt::Display for Disk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk(center {}, r {:.3})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_boundary_and_interior() {
        let d = Disk::new(Point::new(1.0, 1.0), 2.0);
        assert!(d.contains(Point::new(1.0, 1.0)));
        assert!(d.contains(Point::new(3.0, 1.0)));
        assert!(!d.contains(Point::new(3.1, 1.0)));
    }

    #[test]
    fn zero_radius_contains_only_center() {
        let d = Disk::new(Point::new(2.0, 2.0), 0.0);
        assert!(d.contains(Point::new(2.0, 2.0)));
        assert!(!d.contains(Point::new(2.0, 2.0000001)));
    }

    #[test]
    fn area_of_unit_disk() {
        let d = Disk::new(Point::ORIGIN, 1.0);
        assert!((d.area() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn paper_nominal_coverage_area() {
        // R = 15 => pi R^2 ~ 706.86 m^2; 7 beacons/coverage ~ 0.0099 / m^2.
        let d = Disk::new(Point::ORIGIN, 15.0);
        assert!((d.area() - 706.858).abs() < 1e-2);
    }

    #[test]
    fn intersects_tangent_and_disjoint() {
        let a = Disk::new(Point::ORIGIN, 1.0);
        let b = Disk::new(Point::new(2.0, 0.0), 1.0); // externally tangent
        assert!(a.intersects(&b));
        let c = Disk::new(Point::new(2.1, 0.0), 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn contains_disk_nested() {
        let outer = Disk::new(Point::ORIGIN, 5.0);
        let inner = Disk::new(Point::new(2.0, 0.0), 3.0); // internally tangent
        assert!(outer.contains_disk(&inner));
        let too_big = Disk::new(Point::ORIGIN, 6.0);
        assert!(!outer.contains_disk(&too_big));
        let poking_out = Disk::new(Point::new(3.0, 0.0), 3.0);
        assert!(!outer.contains_disk(&poking_out));
    }

    #[test]
    fn bounding_rect_is_tight() {
        let d = Disk::new(Point::new(3.0, 4.0), 2.0);
        let r = d.bounding_rect();
        assert_eq!(r.min(), Point::new(1.0, 2.0));
        assert_eq!(r.max(), Point::new(5.0, 6.0));
    }

    #[test]
    fn scaled_radius() {
        let d = Disk::new(Point::ORIGIN, 2.0).scaled(1.5);
        assert_eq!(d.radius(), 3.0);
        assert_eq!(d.center(), Point::ORIGIN);
    }

    #[test]
    #[should_panic(expected = "disk radius")]
    fn rejects_negative_radius() {
        let _ = Disk::new(Point::ORIGIN, -1.0);
    }
}
