//! Circle–circle intersection and overlap areas.
//!
//! These routines back the *locus* representation of a localization
//! estimate (paper §2.2 footnote 3 and §6): under the idealized radio model
//! a client lies in the intersection of the coverage disks of all connected
//! beacons; the locus-based extensions need the intersection points and
//! overlap (lens) areas of circle pairs.

use crate::disk::Disk;
use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A circle (the *boundary* of a [`Disk`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Circle center.
    pub center: Point,
    /// Circle radius; must be non-negative.
    pub radius: f64,
}

impl Circle {
    /// Creates a circle from center and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// The closed disk bounded by this circle.
    #[inline]
    pub fn disk(&self) -> Disk {
        Disk::new(self.center, self.radius)
    }
}

impl From<Disk> for Circle {
    fn from(d: Disk) -> Self {
        Circle {
            center: d.center(),
            radius: d.radius(),
        }
    }
}

impl fmt::Display for Circle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circle(center {}, r {:.3})", self.center, self.radius)
    }
}

/// The intersection points of two circles.
///
/// * `None` — the circles do not intersect (disjoint or one strictly inside
///   the other), or they are coincident (infinitely many intersections).
/// * `Some((p, p))` — tangent circles, a single intersection point returned
///   twice.
/// * `Some((p1, p2))` — the generic two-point case; the pair is ordered so
///   that `p1` is counter-clockwise from `p2` around the first circle's
///   center (deterministic for reproducible loci).
///
/// # Example
///
/// ```
/// use abp_geom::{circle_circle_intersections, Circle, Point};
/// let a = Circle::new(Point::new(0.0, 0.0), 5.0);
/// let b = Circle::new(Point::new(8.0, 0.0), 5.0);
/// let (p1, p2) = circle_circle_intersections(&a, &b).unwrap();
/// assert!((p1.x - 4.0).abs() < 1e-12 && (p2.x - 4.0).abs() < 1e-12);
/// assert!((p1.y - 3.0).abs() < 1e-12 && (p2.y + 3.0).abs() < 1e-12);
/// ```
pub fn circle_circle_intersections(a: &Circle, b: &Circle) -> Option<(Point, Point)> {
    let d = a.center.distance(b.center);
    if d == 0.0 {
        // Concentric: coincident (infinite) or nested (none) — both map to None.
        return None;
    }
    if d > a.radius + b.radius || d < (a.radius - b.radius).abs() {
        return None;
    }
    // Distance from a.center to the chord's midpoint along the center line.
    let h = (a.radius * a.radius - b.radius * b.radius + d * d) / (2.0 * d);
    let half_chord_sq = a.radius * a.radius - h * h;
    // Clamp tiny negatives from rounding near tangency.
    let half_chord = half_chord_sq.max(0.0).sqrt();
    let dir = (b.center - a.center) / d;
    let mid = a.center + dir * h;
    let off = dir.perp() * half_chord;
    Some((mid + off, mid - off))
}

/// Area of the lens formed by two overlapping disks.
///
/// Returns `0.0` for disjoint disks and the smaller disk's full area when
/// one disk contains the other. Always in `[0, pi * min(r1, r2)^2]`.
///
/// # Example
///
/// ```
/// use abp_geom::{lens_area, Disk, Point};
/// let a = Disk::new(Point::new(0.0, 0.0), 1.0);
/// let b = Disk::new(Point::new(0.0, 0.0), 1.0);
/// assert!((lens_area(&a, &b) - std::f64::consts::PI).abs() < 1e-12);
/// ```
pub fn lens_area(a: &Disk, b: &Disk) -> f64 {
    let d = a.center().distance(b.center());
    let (r1, r2) = (a.radius(), b.radius());
    if d >= r1 + r2 {
        return 0.0;
    }
    if d <= (r1 - r2).abs() {
        let r = r1.min(r2);
        return std::f64::consts::PI * r * r;
    }
    // Standard two-circular-segment formula.
    let alpha = ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1)).clamp(-1.0, 1.0);
    let beta = ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2)).clamp(-1.0, 1.0);
    let a1 = r1 * r1 * alpha.acos();
    let a2 = r2 * r2 * beta.acos();
    let triangle = 0.5
        * ((-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2))
            .max(0.0)
            .sqrt();
    a1 + a2 - triangle
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn two_point_intersection_symmetric_case() {
        let a = Circle::new(Point::ORIGIN, 5.0);
        let b = Circle::new(Point::new(6.0, 0.0), 5.0);
        let (p1, p2) = circle_circle_intersections(&a, &b).unwrap();
        assert!((p1.x - 3.0).abs() < 1e-12);
        assert!((p2.x - 3.0).abs() < 1e-12);
        assert!((p1.y - 4.0).abs() < 1e-12);
        assert!((p2.y + 4.0).abs() < 1e-12);
        // Both points lie on both circles.
        for p in [p1, p2] {
            assert!((p.distance(a.center) - 5.0).abs() < 1e-12);
            assert!((p.distance(b.center) - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tangent_circles_single_point() {
        let a = Circle::new(Point::ORIGIN, 2.0);
        let b = Circle::new(Point::new(5.0, 0.0), 3.0);
        let (p1, p2) = circle_circle_intersections(&a, &b).unwrap();
        assert!(p1.distance(p2) < 1e-9);
        assert!((p1.x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn internally_tangent_circles() {
        let a = Circle::new(Point::ORIGIN, 5.0);
        let b = Circle::new(Point::new(2.0, 0.0), 3.0);
        let (p1, p2) = circle_circle_intersections(&a, &b).unwrap();
        assert!(p1.distance(p2) < 1e-9);
        assert!((p1.x - 5.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_and_nested_none() {
        let a = Circle::new(Point::ORIGIN, 1.0);
        let b = Circle::new(Point::new(5.0, 0.0), 1.0);
        assert!(circle_circle_intersections(&a, &b).is_none());
        let inner = Circle::new(Point::new(0.5, 0.0), 0.25);
        assert!(circle_circle_intersections(&a, &inner).is_none());
        // Coincident circles: treated as no (unique) intersection.
        assert!(circle_circle_intersections(&a, &a).is_none());
    }

    #[test]
    fn unequal_radii_intersection_on_both() {
        let a = Circle::new(Point::new(1.0, 2.0), 4.0);
        let b = Circle::new(Point::new(6.0, 3.0), 2.5);
        let (p1, p2) = circle_circle_intersections(&a, &b).unwrap();
        for p in [p1, p2] {
            assert!((p.distance(a.center) - a.radius).abs() < 1e-9);
            assert!((p.distance(b.center) - b.radius).abs() < 1e-9);
        }
    }

    #[test]
    fn lens_area_disjoint_is_zero() {
        let a = Disk::new(Point::ORIGIN, 1.0);
        let b = Disk::new(Point::new(3.0, 0.0), 1.0);
        assert_eq!(lens_area(&a, &b), 0.0);
    }

    #[test]
    fn lens_area_contained_is_smaller_disk() {
        let a = Disk::new(Point::ORIGIN, 3.0);
        let b = Disk::new(Point::new(1.0, 0.0), 1.0);
        assert!((lens_area(&a, &b) - PI).abs() < 1e-12);
        assert_eq!(lens_area(&a, &b), lens_area(&b, &a));
    }

    #[test]
    fn lens_area_half_overlap_known_value() {
        // Two unit disks with centers distance 1 apart:
        // area = 2 acos(1/2) - (1/2) sqrt(3) * ... standard value:
        // 2 r^2 acos(d/2r) - (d/2) sqrt(4r^2 - d^2) = 2 acos(0.5) - 0.5*sqrt(3)
        let a = Disk::new(Point::ORIGIN, 1.0);
        let b = Disk::new(Point::new(1.0, 0.0), 1.0);
        let expected = 2.0 * (0.5f64).acos() - 0.5 * 3.0f64.sqrt();
        assert!((lens_area(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn lens_area_monotone_in_distance() {
        let a = Disk::new(Point::ORIGIN, 2.0);
        let mut prev = f64::INFINITY;
        for k in 0..=20 {
            let d = 4.0 * k as f64 / 20.0;
            let b = Disk::new(Point::new(d, 0.0), 2.0);
            let area = lens_area(&a, &b);
            assert!(area <= prev + 1e-12, "lens area must shrink with distance");
            prev = area;
        }
        assert!(prev.abs() < 1e-12);
    }
}
