//! A uniform grid-bin spatial index over a fixed set of points.
//!
//! [`GridBins`] answers radius queries — "which of these points lie within
//! `r` of `p`?" — by inspecting only the grid cells the query disk can
//! touch, instead of scanning every point. It is the index behind the
//! workspace's indexed connectivity sweeps: `abp-field` builds one over
//! beacon positions and `abp-survey` / `abp-localize` / `abp-placement`
//! query it in their hot loops.
//!
//! # Determinism and the ordering contract
//!
//! The whole pipeline promises bit-identical replay, and f64 accumulation
//! is order-sensitive, so the index makes a hard guarantee:
//!
//! > [`GridBins::for_each_within`] and [`GridBins::within`] visit matching
//! > points in **strictly ascending insertion order** (the order of the
//! > slice passed to [`GridBins::build`]), and a point matches exactly when
//! > `distance_squared(p) <= r * r` (boundary inclusive, `r = 0` allowed —
//! > matching only points bit-equal to `p`).
//!
//! Because the candidate order equals the brute-force scan order, any sum
//! folded over the visited points is **bit-identical** to the sum the
//! brute-force filter would produce — the index can never change a result,
//! only skip non-matching work. There is no tie-breaking to specify beyond
//! this: coincident points, points exactly on cell boundaries, and points
//! exactly at distance `r` are all visited, in insertion order.
//!
//! Internally the index is a compressed-sparse-row (CSR) layout built with
//! a counting sort: no hashing, no pointer-chasing, and cell membership
//! computed with the same `floor((coord - origin) / cell)` expression at
//! build and query time, so a point can never fall between the cracks.
//! Queries restore the global insertion order across the visited cells by
//! marking candidates in a reusable thread-local bitmask and walking its
//! set bits — no per-query allocation, no sort.
//!
//! # Example
//!
//! ```
//! use abp_geom::{GridBins, Point};
//!
//! let pts = [
//!     Point::new(0.0, 0.0),
//!     Point::new(9.0, 0.0),
//!     Point::new(2.0, 1.0),
//! ];
//! let bins = GridBins::build(&pts, 5.0);
//!
//! // Matches are reported in insertion order: index 0 before index 2.
//! let hits = bins.within(Point::new(1.0, 0.0), 3.0);
//! assert_eq!(hits.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![0, 2]);
//!
//! // r = 0 matches only exact coincidence.
//! assert_eq!(bins.within(Point::new(9.0, 0.0), 0.0).len(), 1);
//! ```

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

thread_local! {
    /// Reusable per-thread candidate bitmask (one bit per indexed point).
    /// Radius queries are the hot inner loop of the indexed sweeps — one
    /// query per surveyed lattice point — so the scratch buffer must not
    /// be reallocated per query. Taken (not borrowed) for the duration of
    /// a query, so a reentrant query from the callback degrades to a
    /// fresh allocation instead of a `RefCell` panic.
    static CANDIDATE_BITS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A uniform grid-bin index over a fixed point set, supporting radius
/// queries that visit candidates in ascending insertion order.
///
/// See the [module documentation](self) for the determinism / ordering
/// contract. Build once with [`GridBins::build`]; the index is immutable
/// (beacon fields that change rebuild it, which is `O(n)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridBins {
    /// Cell side length.
    cell: f64,
    /// Lower-left corner of the binned bounding box.
    origin: Point,
    /// Grid extent in cells along x / y (0 when the point set is empty).
    nx: u32,
    ny: u32,
    /// CSR row starts: `entries[starts[c]..starts[c + 1]]` are the point
    /// indices binned into cell `c` (row-major), each slice sorted
    /// ascending by construction (counting sort is stable).
    starts: Vec<u32>,
    entries: Vec<u32>,
    /// The indexed points, in insertion order.
    points: Vec<Point>,
    /// Fixed-reach candidate lists (present after
    /// [`GridBins::build_for_reach`]).
    neighborhoods: Option<Neighborhoods>,
}

/// Precomputed per-cell candidate lists for fixed-radius queries: cell
/// `c`'s list holds, ascending, every point binned within `half` cells
/// of `c` — a superset of any radius-`reach` disk anchored in `c`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Neighborhoods {
    /// The query radius the lists cover.
    reach: f64,
    /// Neighborhood half-width in cells, `ceil(reach / cell)`.
    half: u32,
    /// Per-cell CSR over the merged neighborhood lists, or `None` when
    /// precomputation was skipped because the neighborhood block would
    /// be too large relative to the grid (queries fall back to
    /// [`GridBins::for_each_within`]).
    table: Option<(Vec<u32>, Vec<u32>)>,
}

impl GridBins {
    /// Builds the index over `points` with square cells of side
    /// `cell_size`.
    ///
    /// The points are copied; indices reported by queries refer to
    /// positions in the input slice. An empty slice yields an index whose
    /// queries return nothing.
    ///
    /// `cell_size` is a *hint*: when the requested resolution would
    /// allocate more than `O(len)` cells (a tiny cell over a huge extent),
    /// the cell is doubled until the grid fits. This affects only how much
    /// work queries do — never which points they report, nor their order.
    /// [`GridBins::cell_size`] returns the effective value.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and strictly positive, or if
    /// any point coordinate is not finite.
    pub fn build(points: &[Point], cell_size: f64) -> Self {
        let mut bins = GridBins {
            cell: cell_size,
            origin: Point::ORIGIN,
            nx: 0,
            ny: 0,
            starts: Vec::new(),
            entries: Vec::new(),
            points: Vec::new(),
            neighborhoods: None,
        };
        bins.rebuild_into(points, cell_size);
        bins
    }

    /// Rebuilds the index in place over a (possibly different) point set,
    /// reusing the existing CSR buffers instead of allocating fresh ones.
    ///
    /// The result is exactly what [`GridBins::build`]`(points, cell_size)`
    /// would produce — same cells, same CSR contents, same query results
    /// and order — but once the buffers have grown to the working-set
    /// size, a rebuild performs **zero heap allocations**. Per-trial index
    /// construction in the Monte-Carlo hot loop goes through this path.
    ///
    /// Any precomputed neighborhoods are discarded (use
    /// [`GridBins::rebuild_for_reach_into`] to rebuild them too, reusing
    /// their buffers as well).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GridBins::build`].
    pub fn rebuild_into(&mut self, points: &[Point], cell_size: f64) {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "grid-bin cell size must be finite and positive, got {cell_size}"
        );
        for (k, p) in points.iter().enumerate() {
            assert!(
                p.x.is_finite() && p.y.is_finite(),
                "grid-bin point {k} has non-finite coordinates ({}, {})",
                p.x,
                p.y
            );
        }
        self.neighborhoods = None;
        self.points.clear();
        self.points.extend_from_slice(points);
        self.starts.clear();
        self.entries.clear();
        if points.is_empty() {
            self.cell = cell_size;
            self.origin = Point::ORIGIN;
            self.nx = 0;
            self.ny = 0;
            self.starts.push(0);
            return;
        }
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let origin = Point::new(min_x, min_y);
        // A point exactly on the max edge maps to floor(extent / cell),
        // one past the last "interior" cell — allocate it a real cell so
        // build and query agree without clamping tricks.
        //
        // Keep the cell count O(len): a tiny cell over a huge extent would
        // otherwise allocate an unbounded grid. Doubling the cell shrinks
        // the grid ~4x per step, so this terminates quickly.
        let cell_limit = points.len().max(16) * 4;
        let mut cell_size = cell_size;
        let (nx, ny) = loop {
            let nx = ((max_x - min_x) / cell_size).floor() as u32 + 1;
            let ny = ((max_y - min_y) / cell_size).floor() as u32 + 1;
            if nx as usize * ny as usize <= cell_limit {
                break (nx, ny);
            }
            cell_size *= 2.0;
        };
        let ncells = nx as usize * ny as usize;

        // Counting sort into CSR: stable, so each cell's entry slice is
        // ascending in insertion order. To avoid a separate cursor
        // buffer, the fill advances `starts[c]` itself (leaving it at the
        // end of cell `c`, i.e. at the proper value of `starts[c + 1]`)
        // and a final right-shift restores the row starts.
        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - min_x) / cell_size).floor() as u32).min(nx - 1);
            let cy = (((p.y - min_y) / cell_size).floor() as u32).min(ny - 1);
            cy as usize * nx as usize + cx as usize
        };
        self.starts.resize(ncells + 1, 0);
        for p in points {
            self.starts[cell_of(p) + 1] += 1;
        }
        for c in 0..ncells {
            self.starts[c + 1] += self.starts[c];
        }
        self.entries.resize(points.len(), 0);
        for (k, p) in points.iter().enumerate() {
            let c = cell_of(p);
            self.entries[self.starts[c] as usize] = k as u32;
            self.starts[c] += 1;
        }
        for c in (1..=ncells).rev() {
            self.starts[c] = self.starts[c - 1];
        }
        self.starts[0] = 0;
        self.cell = cell_size;
        self.origin = origin;
        self.nx = nx;
        self.ny = ny;
    }

    /// Builds the index and additionally precomputes, per cell, the
    /// ascending list of every point a radius-`reach` query anchored in
    /// that cell could match. [`GridBins::for_each_candidate`] then
    /// answers fixed-reach candidate queries with a single cell lookup
    /// and one precomputed slice walk — no per-query cell gathering at
    /// all. This is the fast path for the connectivity sweeps, whose
    /// query radius is fixed at the maximum radio range.
    ///
    /// The precomputation is skipped (and queries transparently fall
    /// back to [`GridBins::for_each_within`]) when `reach` spans so many
    /// cells that the per-cell lists would duplicate each point more
    /// than 64 times — pick `cell_size` on the order of `reach` to stay
    /// on the fast path.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GridBins::build`], or if
    /// `reach` is not finite and non-negative.
    pub fn build_for_reach(points: &[Point], cell_size: f64, reach: f64) -> Self {
        assert!(
            reach.is_finite() && reach >= 0.0,
            "grid-bin reach must be finite and non-negative, got {reach}"
        );
        let mut bins = Self::build(points, cell_size);
        bins.precompute_neighborhoods_into(reach, Vec::new(), Vec::new());
        bins
    }

    /// [`GridBins::rebuild_into`] for indices built with
    /// [`GridBins::build_for_reach`]: rebuilds the CSR grid *and* the
    /// per-cell candidate neighborhoods in place, recycling both the grid
    /// buffers and the neighborhood-table buffers. Bit-identical results
    /// to a fresh [`GridBins::build_for_reach`]; zero heap allocations at
    /// steady state (after the buffers reach the working-set size).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GridBins::build_for_reach`].
    pub fn rebuild_for_reach_into(&mut self, points: &[Point], cell_size: f64, reach: f64) {
        assert!(
            reach.is_finite() && reach >= 0.0,
            "grid-bin reach must be finite and non-negative, got {reach}"
        );
        let recycled = self.neighborhoods.take().and_then(|nb| nb.table);
        self.rebuild_into(points, cell_size);
        let (nb_starts, nb_entries) = recycled.unwrap_or_default();
        self.precompute_neighborhoods_into(reach, nb_starts, nb_entries);
    }

    fn precompute_neighborhoods_into(
        &mut self,
        reach: f64,
        mut nb_starts: Vec<u32>,
        mut nb_entries: Vec<u32>,
    ) {
        // `self.cell` is the effective (possibly doubled) cell size, so
        // `half` covers the worst-case query anchor anywhere in a cell:
        // the disk [p - reach, p + reach] can only touch cells within
        // ceil(reach / cell) of p's cell. Query points outside the
        // bounding box clamp to an edge cell, which shifts the true cell
        // range *toward* the grid, so the same half-width still covers
        // every binned point within reach.
        let half = (reach / self.cell).ceil();
        let span = 2.0 * half + 1.0;
        // Each point lands in at most span^2 per-cell lists; cap the
        // duplication so a degenerate reach/cell ratio cannot blow up
        // memory. Queries fall back to for_each_within in that case.
        if span * span > 64.0 {
            self.neighborhoods = Some(Neighborhoods {
                reach,
                half: 0,
                table: None,
            });
            return;
        }
        let half = half as i64;
        let ncells = self.cell_count();
        let (nx, ny) = (self.nx as i64, self.ny as i64);
        let block = |c: usize| {
            let (cx, cy) = ((c % self.nx as usize) as i64, (c / self.nx as usize) as i64);
            let x_lo = (cx - half).max(0);
            let x_hi = (cx + half).min(nx - 1);
            let y_lo = (cy - half).max(0);
            let y_hi = (cy + half).min(ny - 1);
            (x_lo, x_hi, y_lo, y_hi)
        };
        // Two passes, CSR-style: count each cell's neighborhood size,
        // then fill. Filling iterates cells of the *source* CSR in any
        // order but appends each point index k exactly once per target
        // cell; doing the fill target-cell-major over ascending source
        // slices would interleave — instead walk target cells and merge
        // their block's source slices by ascending k via the same
        // bitmask scratch the radius query uses. The CSR buffers come in
        // from the caller (recycled on the rebuild path, empty on first
        // build) and the bitmask is the thread-local query scratch, so a
        // steady-state rebuild allocates nothing.
        nb_starts.clear();
        nb_starts.resize(ncells + 1, 0);
        for c in 0..ncells {
            let (x_lo, x_hi, y_lo, y_hi) = block(c);
            let mut count = 0u32;
            for cy in y_lo..=y_hi {
                for cx in x_lo..=x_hi {
                    let s = cy as usize * self.nx as usize + cx as usize;
                    count += self.starts[s + 1] - self.starts[s];
                }
            }
            nb_starts[c + 1] = nb_starts[c] + count;
        }
        nb_entries.clear();
        nb_entries.resize(nb_starts[ncells] as usize, 0);
        let mut bits = CANDIDATE_BITS.with(RefCell::take);
        bits.clear();
        bits.resize(self.points.len().div_ceil(64), 0);
        for c in 0..ncells {
            let (x_lo, x_hi, y_lo, y_hi) = block(c);
            for word in bits.iter_mut() {
                *word = 0;
            }
            for cy in y_lo..=y_hi {
                for cx in x_lo..=x_hi {
                    let s = cy as usize * self.nx as usize + cx as usize;
                    let lo = self.starts[s] as usize;
                    let hi = self.starts[s + 1] as usize;
                    for &k in &self.entries[lo..hi] {
                        bits[(k >> 6) as usize] |= 1u64 << (k & 63);
                    }
                }
            }
            let mut cursor = nb_starts[c] as usize;
            for (w, &word) in bits.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    nb_entries[cursor] = ((w << 6) | word.trailing_zeros() as usize) as u32;
                    cursor += 1;
                    word &= word - 1;
                }
            }
            debug_assert_eq!(cursor, nb_starts[c + 1] as usize);
        }
        CANDIDATE_BITS.with(|cell| *cell.borrow_mut() = bits);
        self.neighborhoods = Some(Neighborhoods {
            reach,
            half: half as u32,
            table: Some((nb_starts, nb_entries)),
        });
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The effective cell side length (the build hint, possibly doubled
    /// to keep the cell count `O(len)` — see [`GridBins::build`]).
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of grid cells (`0` for an empty index). Exposed so callers
    /// can report how much of the grid a query pruned.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// The indexed points, in insertion order.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The fixed query radius [`GridBins::for_each_candidate`] covers,
    /// or `None` if the index was built with plain [`GridBins::build`].
    #[inline]
    pub fn candidate_reach(&self) -> Option<f64> {
        self.neighborhoods.as_ref().map(|nb| nb.reach)
    }

    /// Visits every indexed point within `radius` of `center` (boundary
    /// inclusive), invoking `f(index, point)` in **ascending insertion
    /// order** — see the [module documentation](self) for why this order
    /// is load-bearing.
    ///
    /// Returns the number of grid cells the query *skipped* (cells outside
    /// the query's cell range), which feeds the pruning telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `center` has non-finite coordinates or `radius` is not
    /// finite and non-negative.
    pub fn for_each_within<F: FnMut(usize, Point)>(
        &self,
        center: Point,
        radius: f64,
        mut f: F,
    ) -> usize {
        assert!(
            center.x.is_finite() && center.y.is_finite(),
            "grid-bin query center must be finite, got ({}, {})",
            center.x,
            center.y
        );
        assert!(
            radius.is_finite() && radius >= 0.0,
            "grid-bin query radius must be finite and non-negative, got {radius}"
        );
        let ncells = self.cell_count();
        if ncells == 0 {
            return 0;
        }
        let Some((cx_lo, cx_hi)) =
            self.axis_cells(center.x - radius, center.x + radius, self.origin.x, self.nx)
        else {
            return ncells;
        };
        let Some((cy_lo, cy_hi)) =
            self.axis_cells(center.y - radius, center.y + radius, self.origin.y, self.ny)
        else {
            return ncells;
        };
        let visited = (cx_hi - cx_lo + 1) as usize * (cy_hi - cy_lo + 1) as usize;

        // Mark candidates from every cell in range in a bitmask, then
        // iterate set bits: per-cell slices are ascending but cells
        // interleave, and the ordering contract is *global* ascending
        // insertion order — which walking the mask word by word, bit by
        // bit, yields without a sort or a per-query allocation.
        let mut bits = CANDIDATE_BITS.with(RefCell::take);
        bits.clear();
        bits.resize(self.points.len().div_ceil(64), 0);
        for cy in cy_lo..=cy_hi {
            let row = cy as usize * self.nx as usize;
            for cx in cx_lo..=cx_hi {
                let c = row + cx as usize;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &k in &self.entries[lo..hi] {
                    bits[(k >> 6) as usize] |= 1u64 << (k & 63);
                }
            }
        }

        let r2 = radius * radius;
        for (w, &word) in bits.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let k = (w << 6) | word.trailing_zeros() as usize;
                word &= word - 1;
                let p = self.points[k];
                if p.distance_squared(center) <= r2 {
                    f(k, p);
                }
            }
        }
        CANDIDATE_BITS.with(|cell| *cell.borrow_mut() = bits);
        ncells - visited
    }

    /// Visits every *candidate* for a radius-`reach` query at `center`
    /// — a superset of [`GridBins::for_each_within`]`(center, reach)`
    /// that applies **no distance filter** — in ascending insertion
    /// order. `reach` is the value given to
    /// [`GridBins::build_for_reach`].
    ///
    /// This is the fastest query the index offers: one cell lookup plus
    /// one precomputed slice walk. Callers that apply their own
    /// per-point predicate anyway (e.g. a radio connectivity check that
    /// recomputes the distance) should use this instead of
    /// [`GridBins::for_each_within`], which would filter by distance
    /// only for the caller to re-derive it.
    ///
    /// Every point within `reach` of `center` is visited; points
    /// *outside* `reach` but binned near it may also be visited. The
    /// ascending-insertion-order guarantee is identical to
    /// [`GridBins::for_each_within`], so filtering the candidates with
    /// any predicate implied by `distance <= reach` folds to the same
    /// bit-identical sums as the brute-force scan.
    ///
    /// Returns the number of grid cells the query skipped.
    ///
    /// # Panics
    ///
    /// Panics if the index was built with [`GridBins::build`] instead of
    /// [`GridBins::build_for_reach`], or if `center` has non-finite
    /// coordinates.
    pub fn for_each_candidate<F: FnMut(usize, Point)>(&self, center: Point, mut f: F) -> usize {
        let nb = self
            .neighborhoods
            .as_ref()
            .expect("GridBins::for_each_candidate requires an index built with build_for_reach");
        let Some((starts, entries)) = &nb.table else {
            // Precompute was skipped (reach spans too many cells); the
            // radius-filtered walk is still a valid candidate set.
            return self.for_each_within(center, nb.reach, f);
        };
        assert!(
            center.x.is_finite() && center.y.is_finite(),
            "grid-bin query center must be finite, got ({}, {})",
            center.x,
            center.y
        );
        let ncells = self.cell_count();
        if ncells == 0 {
            return 0;
        }
        // Same cell expression as build, clamped so out-of-bounds query
        // points use the nearest edge cell (whose neighborhood still
        // covers everything within reach of them — see
        // precompute_neighborhoods).
        let cx = (((center.x - self.origin.x) / self.cell).floor()).clamp(0.0, (self.nx - 1) as f64)
            as usize;
        let cy = (((center.y - self.origin.y) / self.cell).floor()).clamp(0.0, (self.ny - 1) as f64)
            as usize;
        let c = cy * self.nx as usize + cx;
        for &k in &entries[starts[c] as usize..starts[c + 1] as usize] {
            let k = k as usize;
            f(k, self.points[k]);
        }
        let half = nb.half as usize;
        let x_span = (cx + half).min(self.nx as usize - 1) - cx.saturating_sub(half) + 1;
        let y_span = (cy + half).min(self.ny as usize - 1) - cy.saturating_sub(half) + 1;
        ncells - x_span * y_span
    }

    /// The grid cell a [`GridBins::for_each_candidate`] query at `center`
    /// resolves to, or `None` when the precomputed candidate table is
    /// unavailable (empty index, plain [`GridBins::build`], or skipped
    /// precompute — the cases where `for_each_candidate` falls back to a
    /// filtered walk).
    ///
    /// Together with [`GridBins::cell_candidates`] this lets a tight
    /// sweep hoist the per-point closure call out of its inner loop:
    /// resolve the cell once per query point (consecutive points usually
    /// share it) and walk the raw candidate slice directly over
    /// structure-of-arrays data. The slice contents and order are exactly
    /// what `for_each_candidate` would visit.
    ///
    /// # Panics
    ///
    /// Panics if `center` has non-finite coordinates.
    #[inline]
    pub fn candidate_cell(&self, center: Point) -> Option<usize> {
        let nb = self.neighborhoods.as_ref()?;
        nb.table.as_ref()?;
        if self.cell_count() == 0 {
            return None;
        }
        assert!(
            center.x.is_finite() && center.y.is_finite(),
            "grid-bin query center must be finite, got ({}, {})",
            center.x,
            center.y
        );
        let cx = (((center.x - self.origin.x) / self.cell).floor()).clamp(0.0, (self.nx - 1) as f64)
            as usize;
        let cy = (((center.y - self.origin.y) / self.cell).floor()).clamp(0.0, (self.ny - 1) as f64)
            as usize;
        Some(cy * self.nx as usize + cx)
    }

    /// The precomputed candidate list of cell `c` (point indices in
    /// **ascending insertion order**), where `c` came from
    /// [`GridBins::candidate_cell`].
    ///
    /// # Panics
    ///
    /// Panics if the index has no precomputed table or `c` is out of
    /// range.
    #[inline]
    pub fn cell_candidates(&self, c: usize) -> &[u32] {
        let nb = self
            .neighborhoods
            .as_ref()
            .expect("GridBins::cell_candidates requires an index built with build_for_reach");
        let (starts, entries) = nb
            .table
            .as_ref()
            .expect("GridBins::cell_candidates requires a precomputed candidate table");
        &entries[starts[c] as usize..starts[c + 1] as usize]
    }

    /// Collects `(index, point)` pairs within `radius` of `center`, in
    /// ascending insertion order. Convenience wrapper over
    /// [`GridBins::for_each_within`].
    pub fn within(&self, center: Point, radius: f64) -> Vec<(usize, Point)> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |k, p| out.push((k, p)));
        out
    }

    /// Inclusive cell range `[lo, hi]` along one axis covering world
    /// coordinates `[min, max]`, or `None` if the slab misses the grid.
    fn axis_cells(&self, min: f64, max: f64, origin: f64, n: u32) -> Option<(u32, u32)> {
        let lo_raw = ((min - origin) / self.cell).floor();
        let hi_raw = ((max - origin) / self.cell).floor();
        if hi_raw < 0.0 || lo_raw >= n as f64 {
            return None;
        }
        let lo = lo_raw.max(0.0) as u32;
        let hi = (hi_raw as i64).min(n as i64 - 1) as u32;
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference the index must agree with, including order.
    fn brute(points: &[Point], center: Point, radius: f64) -> Vec<(usize, Point)> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_squared(center) <= radius * radius)
            .map(|(k, p)| (k, *p))
            .collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let bins = GridBins::build(&[], 1.0);
        assert!(bins.is_empty());
        assert_eq!(bins.within(Point::new(3.0, 4.0), 100.0), vec![]);
    }

    #[test]
    fn single_point_and_zero_radius() {
        let pts = [Point::new(2.0, 3.0)];
        let bins = GridBins::build(&pts, 1.0);
        assert_eq!(bins.within(Point::new(2.0, 3.0), 0.0), vec![(0, pts[0])]);
        assert_eq!(bins.within(Point::new(2.0, 3.1), 0.0), vec![]);
    }

    #[test]
    fn matches_brute_force_in_order_on_a_lattice() {
        // Points on cell boundaries of the 5.0 grid on purpose.
        let mut pts = Vec::new();
        for j in 0..6 {
            for i in 0..6 {
                pts.push(Point::new(i as f64 * 5.0, j as f64 * 5.0));
            }
        }
        let bins = GridBins::build(&pts, 5.0);
        for &(cx, cy, r) in &[
            (12.0, 12.0, 7.5),
            (0.0, 0.0, 5.0),
            (25.0, 25.0, 0.0),
            (-10.0, -10.0, 3.0), // misses the grid
            (12.5, 12.5, 100.0), // covers everything
            (10.0, 10.0, 5.0),   // boundary-exact distances
        ] {
            let q = Point::new(cx, cy);
            assert_eq!(
                bins.within(q, r),
                brute(&pts, q, r),
                "query ({cx},{cy},{r})"
            );
        }
    }

    #[test]
    fn duplicate_points_all_reported_in_insertion_order() {
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let bins = GridBins::build(&pts, 0.5);
        let hits: Vec<usize> = bins
            .within(Point::new(1.0, 1.0), 0.0)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(hits, vec![0, 1, 2]);
    }

    #[test]
    fn prune_count_reflects_skipped_cells() {
        let mut pts = Vec::new();
        for j in 0..10 {
            for i in 0..10 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        let bins = GridBins::build(&pts, 1.0);
        let total = bins.cell_count();
        let mut seen = 0;
        let pruned = bins.for_each_within(Point::new(0.0, 0.0), 1.0, |_, _| seen += 1);
        assert_eq!(seen, 3); // (0,0), (1,0), (0,1)
        assert!(pruned > 0 && pruned < total, "pruned {pruned} of {total}");
        // A query that misses the grid entirely prunes every cell.
        assert_eq!(
            bins.for_each_within(Point::new(-50.0, -50.0), 1.0, |_, _| ()),
            total
        );
    }

    #[test]
    fn tiny_cells_and_huge_cells_agree_with_brute() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.1),
            Point::new(99.9, 99.9),
            Point::new(50.0, 50.0),
            Point::new(100.0, 100.0),
        ];
        for cell in [0.05, 1.0, 33.3, 1000.0] {
            let bins = GridBins::build(&pts, cell);
            for &(cx, cy, r) in &[(50.0, 50.0, 80.0), (0.0, 0.0, 0.15), (100.0, 100.0, 0.0)] {
                let q = Point::new(cx, cy);
                assert_eq!(
                    bins.within(q, r),
                    brute(&pts, q, r),
                    "cell {cell}, query ({cx},{cy},{r})"
                );
            }
        }
    }

    /// Candidates must cover all within-reach points, in ascending order.
    fn assert_candidates_cover(bins: &GridBins, pts: &[Point], q: Point, reach: f64) {
        let mut cand = Vec::new();
        bins.for_each_candidate(q, |k, _| cand.push(k));
        assert!(
            cand.windows(2).all(|w| w[0] < w[1]),
            "candidates not strictly ascending: {cand:?}"
        );
        for (k, _) in brute(pts, q, reach) {
            assert!(
                cand.contains(&k),
                "point {k} within {reach} of ({}, {}) missing from candidates {cand:?}",
                q.x,
                q.y
            );
        }
    }

    #[test]
    fn candidates_cover_every_within_reach_point() {
        let mut pts = Vec::new();
        for j in 0..8 {
            for i in 0..8 {
                pts.push(Point::new(i as f64 * 3.0, j as f64 * 3.0));
            }
        }
        let reach = 7.0;
        let bins = GridBins::build_for_reach(&pts, reach, reach);
        for &(x, y) in &[
            (0.0, 0.0),
            (10.5, 10.5),
            (21.0, 21.0),
            (-5.0, 12.0),  // left of the bounding box
            (30.0, -4.0),  // below and right of it
            (12.0, 100.0), // far above: nothing in reach, still fine
        ] {
            assert_candidates_cover(&bins, &pts, Point::new(x, y), reach);
        }
    }

    #[test]
    fn candidate_query_prunes_and_matches_filtered_walk() {
        let mut pts = Vec::new();
        for j in 0..10 {
            for i in 0..10 {
                pts.push(Point::new(i as f64 * 2.0, j as f64 * 2.0));
            }
        }
        let reach = 3.0;
        let bins = GridBins::build_for_reach(&pts, reach, reach);
        let q = Point::new(9.0, 9.0);
        let mut cand = Vec::new();
        let pruned = bins.for_each_candidate(q, |k, _| cand.push(k));
        assert!(pruned > 0 && pruned < bins.cell_count());
        // Filtering the candidates by distance gives exactly within().
        let filtered: Vec<usize> = cand
            .into_iter()
            .filter(|&k| pts[k].distance_squared(q) <= reach * reach)
            .collect();
        let within: Vec<usize> = bins.within(q, reach).into_iter().map(|(k, _)| k).collect();
        assert_eq!(filtered, within);
    }

    #[test]
    fn oversized_reach_falls_back_to_filtered_walk() {
        // reach/cell = 100 would duplicate each point ~40000x; the
        // precompute is skipped and queries fall back to for_each_within,
        // which filters by reach — still a valid candidate set.
        let pts: Vec<Point> = (0..50)
            .map(|k| Point::new(k as f64 * 1.0, (k % 7) as f64))
            .collect();
        let bins = GridBins::build_for_reach(&pts, 0.5, 50.0);
        assert_candidates_cover(&bins, &pts, Point::new(25.0, 3.0), 50.0);
    }

    #[test]
    fn empty_index_has_no_candidates() {
        let bins = GridBins::build_for_reach(&[], 1.0, 5.0);
        assert_eq!(bins.for_each_candidate(Point::new(1.0, 2.0), |_, _| ()), 0);
    }

    #[test]
    fn rebuild_into_equals_fresh_build() {
        let a: Vec<Point> = (0..60)
            .map(|k| Point::new((k * 7 % 23) as f64, (k * 5 % 19) as f64))
            .collect();
        let b: Vec<Point> = (0..45)
            .map(|k| Point::new((k * 3 % 17) as f64 * 2.0, (k * 11 % 13) as f64 * 3.0))
            .collect();
        let mut reused = GridBins::build(&a, 4.0);
        // Rebuild over a different set, then back: every intermediate
        // state must equal what a fresh build would produce, field for
        // field (PartialEq covers cells, CSR contents, and points).
        reused.rebuild_into(&b, 6.0);
        assert_eq!(reused, GridBins::build(&b, 6.0));
        reused.rebuild_into(&a, 4.0);
        assert_eq!(reused, GridBins::build(&a, 4.0));
        // Shrinking to empty and growing again also matches.
        reused.rebuild_into(&[], 1.0);
        assert_eq!(reused, GridBins::build(&[], 1.0));
        reused.rebuild_into(&b, 6.0);
        assert_eq!(reused, GridBins::build(&b, 6.0));
    }

    #[test]
    fn rebuild_for_reach_into_equals_fresh_build_for_reach() {
        let a: Vec<Point> = (0..50)
            .map(|k| Point::new((k % 10) as f64 * 3.0, (k / 10) as f64 * 3.0))
            .collect();
        let b: Vec<Point> = (0..30)
            .map(|k| Point::new((k % 6) as f64 * 5.0, (k / 6) as f64 * 5.0))
            .collect();
        let mut reused = GridBins::build_for_reach(&a, 7.0, 7.0);
        reused.rebuild_for_reach_into(&b, 9.0, 9.0);
        assert_eq!(reused, GridBins::build_for_reach(&b, 9.0, 9.0));
        reused.rebuild_for_reach_into(&a, 7.0, 7.0);
        assert_eq!(reused, GridBins::build_for_reach(&a, 7.0, 7.0));
        // And the rebuilt index answers queries identically.
        for &(x, y) in &[(0.0, 0.0), (13.5, 13.5), (27.0, 27.0), (-4.0, 9.0)] {
            assert_candidates_cover(&reused, &a, Point::new(x, y), 7.0);
        }
    }

    #[test]
    fn cell_candidates_match_for_each_candidate() {
        let pts: Vec<Point> = (0..40)
            .map(|k| Point::new((k % 8) as f64 * 2.5, (k / 8) as f64 * 2.5))
            .collect();
        let bins = GridBins::build_for_reach(&pts, 5.0, 5.0);
        for &(x, y) in &[(0.0, 0.0), (9.0, 9.0), (17.5, 12.5), (-3.0, 50.0)] {
            let q = Point::new(x, y);
            let mut via_closure = Vec::new();
            bins.for_each_candidate(q, |k, _| via_closure.push(k as u32));
            let c = bins.candidate_cell(q).expect("table present");
            assert_eq!(bins.cell_candidates(c), via_closure.as_slice(), "at {q}");
        }
    }

    #[test]
    fn candidate_cell_is_none_without_a_table() {
        let plain = GridBins::build(&[Point::ORIGIN], 1.0);
        assert_eq!(plain.candidate_cell(Point::ORIGIN), None);
        let empty = GridBins::build_for_reach(&[], 1.0, 5.0);
        assert_eq!(empty.candidate_cell(Point::ORIGIN), None);
        // Skipped precompute (oversized reach) also reports None.
        let pts: Vec<Point> = (0..50).map(|k| Point::new(k as f64, 0.0)).collect();
        let fallback = GridBins::build_for_reach(&pts, 0.5, 50.0);
        assert_eq!(fallback.candidate_cell(Point::ORIGIN), None);
    }

    #[test]
    #[should_panic(expected = "build_for_reach")]
    fn candidate_query_requires_reach_build() {
        let bins = GridBins::build(&[Point::ORIGIN], 1.0);
        bins.for_each_candidate(Point::ORIGIN, |_, _| ());
    }

    #[test]
    #[should_panic(expected = "reach")]
    fn rejects_negative_reach() {
        let _ = GridBins::build_for_reach(&[Point::ORIGIN], 1.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn rejects_nonpositive_cell() {
        let _ = GridBins::build(&[Point::ORIGIN], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nonfinite_points() {
        let _ = GridBins::build(&[Point::new(f64::NAN, 0.0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn rejects_negative_radius() {
        let bins = GridBins::build(&[Point::ORIGIN], 1.0);
        let _ = bins.within(Point::ORIGIN, -1.0);
    }
}
