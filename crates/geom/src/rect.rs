//! Axis-aligned rectangles and the square deployment terrain.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle, closed on all sides.
///
/// Used for terrain bounds, the Grid placement algorithm's overlapping
/// grids, and obstacle bounding boxes.
///
/// # Example
///
/// ```
/// use abp_geom::{Point, Rect};
/// let r = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0));
/// assert!(r.contains(Point::new(10.0, 5.0))); // closed boundary
/// assert_eq!(r.area(), 50.0);
/// assert_eq!(r.center(), Point::new(5.0, 2.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a square of side `side` centered at `center`.
    ///
    /// # Panics
    ///
    /// Panics if `side` is negative or not finite.
    pub fn square_centered(center: Point, side: f64) -> Self {
        assert!(
            side.is_finite() && side >= 0.0,
            "square side must be finite and non-negative, got {side}"
        );
        let h = side * 0.5;
        Rect {
            min: Point::new(center.x - h, center.y - h),
            max: Point::new(center.x + h, center.y + h),
        }
    }

    /// The corner with minimal coordinates.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// The corner with maximal coordinates.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width (extent along x), always non-negative.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (extent along y), always non-negative.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` if the rectangles share any point (boundaries count).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// The intersection rectangle, or `None` if disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// The point of `self` closest to `p` (i.e. `p` clamped to the rect).
    #[inline]
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Rectangle expanded by `margin` on every side (shrunk if negative).
    ///
    /// # Panics
    ///
    /// Panics if shrinking would invert the rectangle.
    pub fn expand(&self, margin: f64) -> Rect {
        let r = Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        };
        assert!(
            r.min.x <= r.max.x && r.min.y <= r.max.y,
            "expand({margin}) inverted rectangle {self:?}"
        );
        r
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

/// The square deployment terrain of the paper: a `Side x Side` region with
/// its minimum corner at the origin.
///
/// The paper's evaluation uses `Side = 100 m`. `Terrain` is a thin,
/// semantically-named wrapper over [`Rect`] that also provides uniform
/// random sampling, which the Random placement algorithm and the field
/// generators need.
///
/// # Example
///
/// ```
/// use abp_geom::Terrain;
/// let t = Terrain::square(100.0);
/// assert_eq!(t.side(), 100.0);
/// assert_eq!(t.area(), 10_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Terrain {
    side: f64,
}

impl Terrain {
    /// Creates a square terrain of the given side, anchored at the origin.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not finite and strictly positive.
    pub fn square(side: f64) -> Self {
        assert!(
            side.is_finite() && side > 0.0,
            "terrain side must be finite and positive, got {side}"
        );
        Terrain { side }
    }

    /// Side length in meters.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Terrain area in square meters.
    #[inline]
    pub fn area(&self) -> f64 {
        self.side * self.side
    }

    /// The terrain's bounding rectangle, `[0, side] x [0, side]`.
    #[inline]
    pub fn bounds(&self) -> Rect {
        Rect::new(Point::ORIGIN, Point::new(self.side, self.side))
    }

    /// The terrain center `(side/2, side/2)`.
    ///
    /// Used as the default estimate for clients that hear no beacons (see
    /// `abp_localize::UnheardPolicy`).
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.side * 0.5, self.side * 0.5)
    }

    /// Returns `true` if `p` lies inside the terrain (boundary included).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.bounds().contains(p)
    }

    /// Maps two unit-interval samples to a uniformly distributed point.
    ///
    /// Callers supply the randomness (typically `rng.random::<f64>()`), which
    /// keeps this crate free of RNG dependencies while letting `abp-field`
    /// and `abp-placement` sample terrains uniformly.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions only) if `u` or `v` fall outside `[0, 1]`.
    #[inline]
    pub fn point_at(&self, u: f64, v: f64) -> Point {
        debug_assert!((0.0..=1.0).contains(&u), "u out of unit interval: {u}");
        debug_assert!((0.0..=1.0).contains(&v), "v out of unit interval: {v}");
        Point::new(u * self.side, v * self.side)
    }

    /// Beacon count corresponding to a target density (beacons per m²),
    /// rounded to the nearest whole beacon.
    #[inline]
    pub fn beacons_for_density(&self, density: f64) -> usize {
        (density * self.area()).round() as usize
    }

    /// Deployment density (beacons per m²) for a beacon count.
    #[inline]
    pub fn density_of(&self, beacons: usize) -> f64 {
        beacons as f64 / self.area()
    }
}

impl fmt::Display for Terrain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}m x {}m terrain", self.side, self.side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(Point::new(5.0, 1.0), Point::new(1.0, 4.0));
        assert_eq!(r.min(), Point::new(1.0, 1.0));
        assert_eq!(r.max(), Point::new(5.0, 4.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 3.0);
        assert_eq!(r.area(), 12.0);
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::new(Point::ORIGIN, Point::new(2.0, 2.0));
        assert!(r.contains(Point::ORIGIN));
        assert!(r.contains(Point::new(2.0, 2.0)));
        assert!(r.contains(Point::new(1.0, 2.0)));
        assert!(!r.contains(Point::new(2.0001, 2.0)));
        assert!(!r.contains(Point::new(-0.0001, 1.0)));
    }

    #[test]
    fn rect_square_centered() {
        let r = Rect::square_centered(Point::new(5.0, 5.0), 4.0);
        assert_eq!(r.min(), Point::new(3.0, 3.0));
        assert_eq!(r.max(), Point::new(7.0, 7.0));
        assert_eq!(r.center(), Point::new(5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "square side")]
    fn rect_square_centered_rejects_negative() {
        let _ = Rect::square_centered(Point::ORIGIN, -1.0);
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(Point::ORIGIN, Point::new(4.0, 4.0));
        let b = Rect::new(Point::new(2.0, 2.0), Point::new(6.0, 6.0));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(Point::new(2.0, 2.0), Point::new(4.0, 4.0)));

        let c = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn rect_touching_edges_intersect() {
        let a = Rect::new(Point::ORIGIN, Point::new(1.0, 1.0));
        let b = Rect::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.area(), 0.0);
    }

    #[test]
    fn rect_clamp_point() {
        let r = Rect::new(Point::ORIGIN, Point::new(2.0, 2.0));
        assert_eq!(r.clamp_point(Point::new(5.0, -1.0)), Point::new(2.0, 0.0));
        assert_eq!(r.clamp_point(Point::new(1.0, 1.0)), Point::new(1.0, 1.0));
    }

    #[test]
    fn rect_expand_and_shrink() {
        let r = Rect::new(Point::ORIGIN, Point::new(4.0, 4.0));
        assert_eq!(
            r.expand(1.0),
            Rect::new(Point::new(-1.0, -1.0), Point::new(5.0, 5.0))
        );
        assert_eq!(
            r.expand(-1.0),
            Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0))
        );
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rect_over_shrink_panics() {
        let r = Rect::new(Point::ORIGIN, Point::new(1.0, 1.0));
        let _ = r.expand(-1.0);
    }

    #[test]
    fn terrain_basics() {
        let t = Terrain::square(100.0);
        assert_eq!(t.area(), 10_000.0);
        assert_eq!(t.center(), Point::new(50.0, 50.0));
        assert!(t.contains(Point::new(0.0, 100.0)));
        assert!(!t.contains(Point::new(100.0001, 50.0)));
    }

    #[test]
    fn terrain_density_roundtrip() {
        let t = Terrain::square(100.0);
        // The paper's range: 20..=240 beacons <-> 0.002..=0.024 per m^2.
        assert_eq!(t.beacons_for_density(0.002), 20);
        assert_eq!(t.beacons_for_density(0.024), 240);
        assert!((t.density_of(100) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn terrain_point_at_corners() {
        let t = Terrain::square(10.0);
        assert_eq!(t.point_at(0.0, 0.0), Point::ORIGIN);
        assert_eq!(t.point_at(1.0, 1.0), Point::new(10.0, 10.0));
        assert_eq!(t.point_at(0.5, 0.25), Point::new(5.0, 2.5));
    }

    #[test]
    #[should_panic(expected = "terrain side")]
    fn terrain_rejects_zero_side() {
        let _ = Terrain::square(0.0);
    }
}
