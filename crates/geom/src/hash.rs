//! Deterministic splittable hashing.
//!
//! The paper's propagation-noise model is *location based and static with
//! respect to time*: whether beacon `B` reaches point `P` never changes
//! while the experiment runs. Rather than materializing a noise value for
//! every (beacon, lattice-point) pair — 2.4 M pairs at paper scale — we
//! derive each value on demand from a [`splitmix64`] hash of the field
//! seed, the beacon id, and the point's coordinate bits. The same inputs
//! always hash to the same value, which gives a time-static noise field
//! with zero storage, valid at *any* query point (not just lattice points).

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// One round of the SplitMix64 mixing function.
///
/// A high-quality 64-bit finalizer (Steele et al., *Fast Splittable
/// Pseudorandom Number Generators*, OOPSLA 2014). Passes into itself to
/// chain multiple words.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a sequence of words into one hash.
#[inline]
fn mix(words: &[u64]) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3; // pi digits; arbitrary non-zero seed
    for &w in words {
        h = splitmix64(h ^ w);
    }
    h
}

/// A deterministic scalar field: maps `(beacon id, point)` to reproducible
/// pseudo-random values derived from a seed.
///
/// Two fields with the same seed are identical; different seeds give
/// independent fields. Values are stable across platforms (pure integer
/// arithmetic on IEEE-754 bit patterns).
///
/// # Example
///
/// ```
/// use abp_geom::{DeterministicField, Point};
/// let field = DeterministicField::new(42);
/// let p = Point::new(3.0, 4.0);
/// let u = field.symmetric(7, p);
/// assert!((-1.0..=1.0).contains(&u));
/// assert_eq!(u, DeterministicField::new(42).symmetric(7, p)); // static in time
/// assert_ne!(u, field.symmetric(8, p)); // independent per beacon
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterministicField {
    seed: u64,
}

impl DeterministicField {
    /// Creates a field from a seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        DeterministicField { seed }
    }

    /// The field's seed.
    #[inline]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Raw 64-bit hash for `(key, point)`.
    #[inline]
    pub fn hash(&self, key: u64, p: Point) -> u64 {
        mix(&[self.seed, key, p.x.to_bits(), p.y.to_bits()])
    }

    /// A value uniform in `[0, 1)` for `(key, point)`.
    #[inline]
    pub fn unit(&self, key: u64, p: Point) -> f64 {
        // 53 high bits -> [0, 1) double, the standard conversion.
        (self.hash(key, p) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A value uniform in `[-1, 1)` for `(key, point)` — the paper's `u`
    /// ("chosen uniformly at random between -1 and 1").
    #[inline]
    pub fn symmetric(&self, key: u64, p: Point) -> f64 {
        self.unit(key, p) * 2.0 - 1.0
    }

    /// A per-key (point-independent) value uniform in `[0, 1)`.
    ///
    /// Used for per-beacon draws such as the noise factor `nf(B)`.
    #[inline]
    pub fn unit_keyed(&self, key: u64) -> f64 {
        (mix(&[self.seed, key]) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives a new independent field, e.g. for a sub-experiment.
    #[inline]
    pub fn split(&self, label: u64) -> DeterministicField {
        DeterministicField {
            seed: mix(&[self.seed, label, 0x5EED]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values_stable() {
        // Lock in concrete outputs so cross-platform drift is caught.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn field_is_deterministic() {
        let f1 = DeterministicField::new(99);
        let f2 = DeterministicField::new(99);
        let p = Point::new(12.5, -3.25);
        assert_eq!(f1.hash(5, p), f2.hash(5, p));
        assert_eq!(f1.unit(5, p), f2.unit(5, p));
        assert_eq!(f1.unit_keyed(5), f2.unit_keyed(5));
    }

    #[test]
    fn field_varies_with_inputs() {
        let f = DeterministicField::new(1);
        let p = Point::new(1.0, 2.0);
        let q = Point::new(1.0, 2.0000001);
        assert_ne!(f.hash(0, p), f.hash(1, p));
        assert_ne!(f.hash(0, p), f.hash(0, q));
        assert_ne!(f.hash(0, p), DeterministicField::new(2).hash(0, p));
    }

    #[test]
    fn unit_in_range_and_roughly_uniform() {
        let f = DeterministicField::new(7);
        let mut sum = 0.0;
        let n = 10_000;
        for k in 0..n {
            let p = Point::new(k as f64 * 0.37, (k % 101) as f64);
            let u = f.unit(3, p);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} not ~0.5");
    }

    #[test]
    fn symmetric_in_range_and_centered() {
        let f = DeterministicField::new(11);
        let mut sum = 0.0;
        let n = 10_000;
        for k in 0..n {
            let p = Point::new((k / 101) as f64, (k % 101) as f64);
            let u = f.symmetric(9, p);
            assert!((-1.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / n as f64).abs() < 0.04);
    }

    #[test]
    fn split_gives_independent_fields() {
        let f = DeterministicField::new(5);
        let a = f.split(1);
        let b = f.split(2);
        assert_ne!(a.seed(), b.seed());
        assert_ne!(a.seed(), f.seed());
        // Splitting is itself deterministic.
        assert_eq!(f.split(1).seed(), a.seed());
    }
}
