//! Property-based tests for the geometry substrate.

use abp_geom::{
    centroid, circle_circle_intersections, lens_area, Circle, DeterministicField, Disk, Lattice,
    Point, Polygon, Rect, Terrain, Vec2,
};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -1e4..1e4
}

fn point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn distance_symmetric(a in point(), b in point()) {
        prop_assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_nonnegative_and_identity(a in point(), b in point()) {
        prop_assert!(a.distance(b) >= 0.0);
        prop_assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn triangle_inequality(a in point(), b in point(), c in point()) {
        // Allow a tiny relative slack for floating-point rounding.
        let lhs = a.distance(c);
        let rhs = a.distance(b) + b.distance(c);
        prop_assert!(lhs <= rhs + 1e-9 * (1.0 + rhs));
    }

    #[test]
    fn midpoint_equidistant(a in point(), b in point()) {
        let m = a.midpoint(b);
        prop_assert!((a.distance(m) - b.distance(m)).abs() <= 1e-9 * (1.0 + a.distance(b)));
    }

    #[test]
    fn vector_addition_roundtrip(a in point(), b in point()) {
        let v = b - a;
        let back = a + v;
        prop_assert!(back.distance(b) < 1e-9);
    }

    #[test]
    fn centroid_inside_bounding_box(pts in prop::collection::vec(point(), 1..50)) {
        let c = centroid(pts.iter().copied()).unwrap();
        let min_x = pts.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let max_x = pts.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        let min_y = pts.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
        let max_y = pts.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
        let eps = 1e-9 * (1.0 + max_x.abs() + max_y.abs());
        prop_assert!(c.x >= min_x - eps && c.x <= max_x + eps);
        prop_assert!(c.y >= min_y - eps && c.y <= max_y + eps);
    }

    #[test]
    fn rect_contains_center(a in point(), b in point()) {
        let r = Rect::new(a, b);
        prop_assert!(r.contains(r.center()));
        prop_assert!(r.area() >= 0.0);
    }

    #[test]
    fn rect_clamp_is_inside(a in point(), b in point(), p in point()) {
        let r = Rect::new(a, b);
        prop_assert!(r.contains(r.clamp_point(p)));
    }

    #[test]
    fn rect_intersection_contained_in_both(
        a in point(), b in point(), c in point(), d in point()
    ) {
        let r1 = Rect::new(a, b);
        let r2 = Rect::new(c, d);
        if let Some(i) = r1.intersection(&r2) {
            prop_assert!(r1.contains(i.center()));
            prop_assert!(r2.contains(i.center()));
            prop_assert!(i.area() <= r1.area() + 1e-9);
            prop_assert!(i.area() <= r2.area() + 1e-9);
        }
    }

    #[test]
    fn disk_boundary_membership(c in point(), r in 0.0..500.0f64, theta in 0.0..std::f64::consts::TAU) {
        let d = Disk::new(c, r);
        // A point slightly inside is contained; slightly outside is not.
        let dir = Vec2::new(theta.cos(), theta.sin());
        prop_assert!(d.contains(c + dir * (r * 0.999)));
        prop_assert!(!d.contains(c + dir * (r * 1.001 + 1e-6)));
    }

    #[test]
    fn circle_intersections_lie_on_both(
        c1 in point(), r1 in 0.1..300.0f64, c2 in point(), r2 in 0.1..300.0f64
    ) {
        let a = Circle::new(c1, r1);
        let b = Circle::new(c2, r2);
        if let Some((p, q)) = circle_circle_intersections(&a, &b) {
            let tol = 1e-6 * (1.0 + r1 + r2 + c1.distance(c2));
            for pt in [p, q] {
                prop_assert!((pt.distance(c1) - r1).abs() < tol);
                prop_assert!((pt.distance(c2) - r2).abs() < tol);
            }
        }
    }

    #[test]
    fn lens_area_bounded_by_smaller_disk(
        c1 in point(), r1 in 0.0..300.0f64, c2 in point(), r2 in 0.0..300.0f64
    ) {
        let a = Disk::new(c1, r1);
        let b = Disk::new(c2, r2);
        let area = lens_area(&a, &b);
        let min_area = a.area().min(b.area());
        prop_assert!(area >= -1e-9);
        prop_assert!(area <= min_area + 1e-6 * (1.0 + min_area));
        // Symmetry.
        prop_assert!((area - lens_area(&b, &a)).abs() < 1e-9 * (1.0 + area));
    }

    #[test]
    fn lattice_flat_unflat_roundtrip(side in 1.0..200.0f64, divisor in 1u32..40) {
        let step = side / divisor as f64;
        let lat = Lattice::new(Terrain::square(side), step);
        for off in [0, lat.len() / 3, lat.len() - 1] {
            prop_assert_eq!(lat.flat(lat.unflat(off)), off);
        }
    }

    #[test]
    fn lattice_points_inside_terrain(side in 1.0..200.0f64, divisor in 1u32..20) {
        let step = side / divisor as f64;
        let terrain = Terrain::square(side);
        let lat = Lattice::new(terrain, step);
        // Lattice coordinates may exceed the side by float rounding only.
        for p in lat.points() {
            prop_assert!(p.x >= 0.0 && p.y >= 0.0);
            prop_assert!(p.x <= side + 1e-9 && p.y <= side + 1e-9);
        }
    }

    #[test]
    fn lattice_nearest_is_truly_nearest(px in 0.0..100.0f64, py in 0.0..100.0f64) {
        let lat = Lattice::new(Terrain::square(100.0), 1.0);
        let p = Point::new(px, py);
        let near = lat.point(lat.nearest(p));
        // No lattice point can be more than half a step closer.
        prop_assert!(near.distance(p) <= (2.0f64).sqrt() / 2.0 + 1e-9);
    }

    #[test]
    fn polygon_regular_area_below_circle(
        c in point(), r in 0.1..100.0f64, n in 8usize..128
    ) {
        let poly = Polygon::regular(c, r, n, 0.0);
        let circle_area = std::f64::consts::PI * r * r;
        prop_assert!(poly.area() <= circle_area + 1e-9);
        // Inscribed polygon area approaches the circle from below.
        prop_assert!(poly.area() >= circle_area * 0.6);
    }

    #[test]
    fn polygon_clip_never_grows(
        r in 1.0..50.0f64, cx in -20.0..20.0f64, cy in -20.0..20.0f64, cr in 0.5..50.0f64
    ) {
        let poly = Polygon::regular(Point::ORIGIN, r, 64, 0.0);
        let clipped = poly.clip_disk(Point::new(cx, cy), cr, 64);
        prop_assert!(clipped.area() <= poly.area() + 1e-9);
    }

    #[test]
    fn polygon_centroid_inside_convex(r in 0.5..50.0f64, n in 3usize..64, phase in 0.0..6.2f64) {
        let poly = Polygon::regular(Point::new(7.0, -3.0), r, n, phase);
        if let Some(c) = poly.centroid() {
            prop_assert!(poly.contains(c));
        }
    }

    #[test]
    fn hash_field_deterministic_and_bounded(seed in any::<u64>(), key in any::<u64>(), p in point()) {
        let f = DeterministicField::new(seed);
        prop_assert_eq!(f.hash(key, p), DeterministicField::new(seed).hash(key, p));
        let u = f.unit(key, p);
        prop_assert!((0.0..1.0).contains(&u));
        let s = f.symmetric(key, p);
        prop_assert!((-1.0..1.0).contains(&s));
        let k = f.unit_keyed(key);
        prop_assert!((0.0..1.0).contains(&k));
    }

    #[test]
    fn terrain_point_at_always_inside(side in 0.1..1e4f64, u in 0.0..=1.0f64, v in 0.0..=1.0f64) {
        let t = Terrain::square(side);
        prop_assert!(t.contains(t.point_at(u, v)));
    }
}

proptest! {
    #[test]
    fn segment_intersection_is_symmetric(
        a in point(), b in point(), c in point(), d in point()
    ) {
        prop_assume!(a.distance(b) > 1e-9 && c.distance(d) > 1e-9);
        let s1 = abp_geom::Segment::new(a, b);
        let s2 = abp_geom::Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
    }

    #[test]
    fn segment_self_and_shared_endpoint_intersect(a in point(), b in point(), c in point()) {
        prop_assume!(a.distance(b) > 1e-9 && b.distance(c) > 1e-9);
        let s1 = abp_geom::Segment::new(a, b);
        prop_assert!(s1.intersects(&s1));
        let s2 = abp_geom::Segment::new(b, c);
        prop_assert!(s1.intersects(&s2), "shared endpoint must intersect");
    }

    #[test]
    fn segment_distance_to_point_bounds(a in point(), b in point(), p in point()) {
        prop_assume!(a.distance(b) > 1e-9);
        let s = abp_geom::Segment::new(a, b);
        let d = s.distance_to_point(p);
        prop_assert!(d >= 0.0);
        // Never farther than either endpoint.
        prop_assert!(d <= a.distance(p) + 1e-9);
        prop_assert!(d <= b.distance(p) + 1e-9);
        // Points on the segment have distance ~0.
        prop_assert!(s.distance_to_point(s.midpoint()) < 1e-9);
    }

    #[test]
    fn segment_at_interpolates(a in point(), b in point(), t in 0.0..=1.0f64) {
        prop_assume!(a.distance(b) > 1e-9);
        let s = abp_geom::Segment::new(a, b);
        let p = s.at(t);
        // The interpolant lies on the segment.
        prop_assert!(s.distance_to_point(p) < 1e-6 * (1.0 + s.length()));
    }
}

/// Brute-force reference for `GridBins::within`: the same filter, in the
/// same insertion order. The index must agree *including order*.
fn within_brute(points: &[Point], center: Point, radius: f64) -> Vec<(usize, Point)> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.distance_squared(center) <= radius * radius)
        .map(|(k, p)| (k, *p))
        .collect()
}

proptest! {
    #[test]
    fn grid_bins_equals_brute_filter(
        pts in prop::collection::vec(point(), 0..60),
        q in point(),
        r in 0.0..2e4f64,
        cell in 0.05..500.0f64,
    ) {
        let bins = abp_geom::GridBins::build(&pts, cell);
        prop_assert_eq!(bins.within(q, r), within_brute(&pts, q, r));
    }

    #[test]
    fn grid_bins_zero_radius_matches_exact_coincidence(
        pts in prop::collection::vec(point(), 1..40),
        pick in 0usize..40,
        cell in 0.1..100.0f64,
    ) {
        // Query exactly at one of the indexed points with r = 0: the brute
        // filter keeps precisely the coincident points, and so must the
        // index.
        let q = pts[pick % pts.len()];
        let bins = abp_geom::GridBins::build(&pts, cell);
        let hits = bins.within(q, 0.0);
        prop_assert_eq!(&hits, &within_brute(&pts, q, 0.0));
        prop_assert!(hits.iter().any(|&(_, p)| p == q));
    }

    #[test]
    fn grid_bins_handles_cell_boundary_points(
        n in 1usize..8,
        cell in 0.5..20.0f64,
        r in 0.0..100.0f64,
        qi in 0i64..8,
        qj in 0i64..8,
    ) {
        // Every point sits exactly on a cell corner of the build grid —
        // the worst case for floor()-based binning.
        let mut pts = Vec::new();
        for j in 0..n {
            for i in 0..n {
                pts.push(Point::new(i as f64 * cell, j as f64 * cell));
            }
        }
        let bins = abp_geom::GridBins::build(&pts, cell);
        let q = Point::new(qi as f64 * cell, qj as f64 * cell);
        prop_assert_eq!(bins.within(q, r), within_brute(&pts, q, r));
    }

    #[test]
    fn grid_bins_order_is_ascending_insertion(
        pts in prop::collection::vec(point(), 0..60),
        q in point(),
        r in 0.0..2e4f64,
    ) {
        let bins = abp_geom::GridBins::build(&pts, 7.3);
        let hits = bins.within(q, r);
        prop_assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
