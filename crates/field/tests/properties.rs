//! Property-based tests for beacon fields and generators.

use abp_field::generate::{clustered, grid_with_spacing, perturbed_grid, uniform_grid};
use abp_field::{BeaconField, BeaconSoA, CellIndex};
use abp_geom::{Point, Terrain};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

proptest! {
    #[test]
    fn random_uniform_invariants(n in 0usize..300, side in 1.0..500.0f64, seed in any::<u64>()) {
        let terrain = Terrain::square(side);
        let field = BeaconField::random_uniform(n, terrain, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(field.len(), n);
        // All inside terrain, all ids unique.
        let ids: HashSet<_> = field.iter().map(|b| b.id()).collect();
        prop_assert_eq!(ids.len(), n);
        for b in &field {
            prop_assert!(terrain.contains(b.pos()));
        }
        // Density round-trips.
        prop_assert!((field.density() * terrain.area() - n as f64).abs() < 1e-9);
    }

    #[test]
    fn uniform_grid_invariants(per_side in 1usize..12, side in 10.0..500.0f64) {
        let terrain = Terrain::square(side);
        let field = uniform_grid(terrain, per_side);
        prop_assert_eq!(field.len(), per_side * per_side);
        for b in &field {
            prop_assert!(terrain.contains(b.pos()));
        }
    }

    #[test]
    fn grid_with_spacing_invariants(side in 20.0..300.0f64, frac in 0.05..1.0f64) {
        let spacing = side * frac;
        let terrain = Terrain::square(side);
        let field = grid_with_spacing(terrain, spacing);
        let per_side = (side / spacing).floor() as usize + 1;
        prop_assert_eq!(field.len(), per_side * per_side);
        for b in &field {
            prop_assert!(terrain.contains(b.pos()));
        }
    }

    #[test]
    fn perturbed_grid_bounded_displacement(
        per_side in 1usize..8, offset in 0.0..20.0f64, seed in any::<u64>()
    ) {
        let terrain = Terrain::square(100.0);
        let nominal = uniform_grid(terrain, per_side);
        let mut rng = StdRng::seed_from_u64(seed);
        let field = perturbed_grid(terrain, per_side, offset, &mut rng);
        prop_assert_eq!(field.len(), nominal.len());
        for (n, p) in nominal.iter().zip(field.iter()) {
            // Clamping can only reduce the displacement.
            prop_assert!(n.pos().distance(p.pos()) <= offset + 1e-9);
            prop_assert!(terrain.contains(p.pos()));
        }
    }

    #[test]
    fn clustered_invariants(
        clusters in 0usize..6, per in 0usize..20, sigma in 0.0..30.0f64, seed in any::<u64>()
    ) {
        let terrain = Terrain::square(100.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let field = clustered(terrain, clusters, per, sigma, &mut rng);
        prop_assert_eq!(field.len(), clusters * per);
        for b in &field {
            prop_assert!(terrain.contains(b.pos()));
        }
    }

    #[test]
    fn cell_index_matches_bruteforce(
        n in 0usize..150, seed in any::<u64>(), cell in 0.5..60.0f64,
        qx in 0.0..100.0f64, qy in 0.0..100.0f64, r in 0.0..120.0f64
    ) {
        let terrain = Terrain::square(100.0);
        let field = BeaconField::random_uniform(n, terrain, &mut StdRng::seed_from_u64(seed));
        let idx = CellIndex::build(&field, cell);
        let q = Point::new(qx, qy);
        let mut got: Vec<_> = idx.within(q, r).iter().map(|b| b.id()).collect();
        got.sort();
        let mut want: Vec<_> = field
            .iter()
            .filter(|b| b.pos().distance(q) <= r)
            .map(|b| b.id())
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn nearest_distance_is_minimum(n in 1usize..100, seed in any::<u64>(), qx in 0.0..100.0f64, qy in 0.0..100.0f64) {
        let terrain = Terrain::square(100.0);
        let field = BeaconField::random_uniform(n, terrain, &mut StdRng::seed_from_u64(seed));
        let q = Point::new(qx, qy);
        let nearest = field.nearest_distance(q).unwrap();
        for b in &field {
            prop_assert!(b.pos().distance(q) >= nearest - 1e-9);
        }
    }

    /// `BeaconSoA` round-trips with `BeaconField`: same length, same
    /// insertion order, bit-identical coordinates, and each `reach2`
    /// lane is exactly what the closure returned for that beacon —
    /// even through a rebuild from a different field.
    #[test]
    fn soa_round_trips_with_field(
        n in 0usize..150, m in 0usize..150, seed in any::<u64>(), r in 0.0..40.0f64
    ) {
        let terrain = Terrain::square(100.0);
        let first = BeaconField::random_uniform(n, terrain, &mut StdRng::seed_from_u64(seed));
        let second =
            BeaconField::random_uniform(m, terrain, &mut StdRng::seed_from_u64(seed ^ 1));
        let mut soa = BeaconSoA::new();
        for field in [&first, &second] {
            soa.rebuild_with(field, |_| r * r);
            prop_assert_eq!(soa.len(), field.len());
            prop_assert_eq!(soa.is_empty(), field.is_empty());
            for (k, b) in field.iter().enumerate() {
                prop_assert_eq!(soa.xs()[k].to_bits(), b.pos().x.to_bits());
                prop_assert_eq!(soa.ys()[k].to_bits(), b.pos().y.to_bits());
                prop_assert_eq!(soa.reach2()[k].to_bits(), (r * r).to_bits());
            }
        }
    }

    #[test]
    fn add_then_remove_restores_len(n in 0usize..50, seed in any::<u64>(), px in 0.0..100.0f64, py in 0.0..100.0f64) {
        let terrain = Terrain::square(100.0);
        let mut field = BeaconField::random_uniform(n, terrain, &mut StdRng::seed_from_u64(seed));
        let id = field.add_beacon(Point::new(px, py));
        prop_assert_eq!(field.len(), n + 1);
        let removed = field.remove(id).unwrap();
        prop_assert_eq!(removed.pos(), Point::new(px, py));
        prop_assert_eq!(field.len(), n);
    }
}
