//! Structure-of-arrays beacon layout for dense sweep kernels.

use crate::beacon::Beacon;
use crate::field::BeaconField;

/// A structure-of-arrays mirror of a [`BeaconField`]: parallel `xs`/`ys`
/// position slices plus a per-beacon squared reach, all in beacon
/// **insertion order** (the order of [`BeaconField::iter`]).
///
/// The AoS walk of the indexed survey touches a 24-byte `Beacon` record
/// per candidate just to read two coordinates; at paper scale that wastes
/// two thirds of every cache line. `BeaconSoA` packs the three values the
/// disk-membership test needs into dense `f64` slices so the tiled sweep
/// kernel in `abp-survey` streams them with unit stride.
///
/// The squared reach comes from a caller-supplied closure rather than a
/// propagation model, so this crate stays independent of `abp-radio`;
/// the survey layer passes `|b| model.max_range(b.tx(), b.pos()).powi(2)`.
///
/// Buffers are retained across [`BeaconSoA::rebuild_with`] calls, so a
/// scratch-held instance reaches zero steady-state allocations once it
/// has seen the largest field of the sweep.
///
/// # Example
///
/// ```
/// use abp_field::{BeaconField, BeaconSoA};
/// use abp_geom::{Point, Terrain};
///
/// let field = BeaconField::from_positions(
///     Terrain::square(100.0),
///     [Point::new(10.0, 20.0), Point::new(30.0, 40.0)],
/// );
/// let mut soa = BeaconSoA::new();
/// soa.rebuild_with(&field, |_| 15.0 * 15.0);
/// assert_eq!(soa.xs(), &[10.0, 30.0]);
/// assert_eq!(soa.ys(), &[20.0, 40.0]);
/// assert_eq!(soa.reach2(), &[225.0, 225.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BeaconSoA {
    xs: Vec<f64>,
    ys: Vec<f64>,
    reach2: Vec<f64>,
}

impl BeaconSoA {
    /// Creates an empty SoA with no backing storage.
    pub fn new() -> Self {
        BeaconSoA::default()
    }

    /// Refills the slices from `field`, calling `reach2_of` once per
    /// beacon (in insertion order) for the squared hearing reach.
    /// Existing capacity is reused.
    pub fn rebuild_with(&mut self, field: &BeaconField, mut reach2_of: impl FnMut(&Beacon) -> f64) {
        self.xs.clear();
        self.ys.clear();
        self.reach2.clear();
        for b in field.iter() {
            let p = b.pos();
            self.xs.push(p.x);
            self.ys.push(p.y);
            self.reach2.push(reach2_of(b));
        }
    }

    /// Beacon x coordinates, in insertion order.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Beacon y coordinates, in insertion order.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Per-beacon squared reach, in insertion order.
    #[inline]
    pub fn reach2(&self) -> &[f64] {
        &self.reach2
    }

    /// Number of mirrored beacons.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the mirror is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::{Point, Terrain};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mirrors_field_in_insertion_order() {
        let field =
            BeaconField::random_uniform(50, Terrain::square(100.0), &mut StdRng::seed_from_u64(7));
        let mut soa = BeaconSoA::new();
        soa.rebuild_with(&field, |b| b.pos().x); // arbitrary but beacon-dependent
        assert_eq!(soa.len(), 50);
        for (k, b) in field.iter().enumerate() {
            assert_eq!(soa.xs()[k].to_bits(), b.pos().x.to_bits());
            assert_eq!(soa.ys()[k].to_bits(), b.pos().y.to_bits());
            assert_eq!(soa.reach2()[k].to_bits(), b.pos().x.to_bits());
        }
    }

    #[test]
    fn rebuild_reuses_capacity_and_replaces_contents() {
        let big =
            BeaconField::random_uniform(40, Terrain::square(100.0), &mut StdRng::seed_from_u64(1));
        let small = BeaconField::from_positions(Terrain::square(100.0), [Point::new(1.0, 2.0)]);
        let mut soa = BeaconSoA::new();
        soa.rebuild_with(&big, |_| 1.0);
        let cap = soa.xs.capacity();
        soa.rebuild_with(&small, |_| 9.0);
        assert_eq!(soa.len(), 1);
        assert_eq!(soa.xs(), &[1.0]);
        assert_eq!(soa.ys(), &[2.0]);
        assert_eq!(soa.reach2(), &[9.0]);
        assert_eq!(
            soa.xs.capacity(),
            cap,
            "shrinking rebuild must keep capacity"
        );
    }

    #[test]
    fn empty_field_empty_soa() {
        let mut soa = BeaconSoA::new();
        soa.rebuild_with(&BeaconField::new(Terrain::square(10.0)), |_| 0.0);
        assert!(soa.is_empty());
        assert_eq!(soa.len(), 0);
    }
}
