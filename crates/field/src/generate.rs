//! Beacon-field generators beyond uniform random.
//!
//! * [`uniform_grid`] / [`grid_with_spacing`] — the regular placements of
//!   the paper's §2.2 error-bound analysis and Figure 1,
//! * [`perturbed_grid`] — the air-drop scenario of §1 ("beacons may be
//!   perturbed during deployment"),
//! * [`clustered`] — spatially clumped fields, a stress workload with
//!   large coverage holes for the placement algorithms.

use crate::field::BeaconField;
use abp_geom::{Point, Terrain, Vec2};
use rand::Rng;

/// A `per_side × per_side` grid of beacons spanning the terrain edge to
/// edge (beacons on the boundary included) — Figure 1's "2 × 2" and
/// "3 × 3 grid of beacons".
///
/// `per_side == 1` places a single beacon at the terrain center.
///
/// # Panics
///
/// Panics if `per_side == 0`.
///
/// # Example
///
/// ```
/// use abp_field::generate::uniform_grid;
/// use abp_geom::Terrain;
///
/// let field = uniform_grid(Terrain::square(100.0), 3);
/// assert_eq!(field.len(), 9);
/// ```
pub fn uniform_grid(terrain: Terrain, per_side: usize) -> BeaconField {
    assert!(per_side > 0, "grid must have at least one beacon per side");
    let mut field = BeaconField::new(terrain);
    if per_side == 1 {
        field.add_beacon(terrain.center());
        return field;
    }
    let d = terrain.side() / (per_side - 1) as f64;
    for j in 0..per_side {
        for i in 0..per_side {
            // Clamp the far edge against float rounding (i*d can land at
            // side + epsilon).
            let x = (i as f64 * d).min(terrain.side());
            let y = (j as f64 * d).min(terrain.side());
            field.add_beacon(Point::new(x, y));
        }
    }
    field
}

/// A regular grid with inter-beacon separation `spacing` (the paper's `d`
/// in the range-overlap-ratio analysis `R/d`), anchored so the grid is
/// centered in the terrain.
///
/// # Panics
///
/// Panics if `spacing` is not finite/positive or exceeds the terrain side.
pub fn grid_with_spacing(terrain: Terrain, spacing: f64) -> BeaconField {
    assert!(
        spacing.is_finite() && spacing > 0.0,
        "grid spacing must be finite and positive, got {spacing}"
    );
    assert!(
        spacing <= terrain.side(),
        "grid spacing {spacing} exceeds terrain side {}",
        terrain.side()
    );
    let per_side = (terrain.side() / spacing).floor() as usize + 1;
    let span = (per_side - 1) as f64 * spacing;
    let margin = (terrain.side() - span) * 0.5;
    let mut field = BeaconField::new(terrain);
    for j in 0..per_side {
        for i in 0..per_side {
            field.add_beacon(Point::new(
                margin + i as f64 * spacing,
                margin + j as f64 * spacing,
            ));
        }
    }
    field
}

/// A regular grid where each beacon lands up to `max_offset` meters from
/// its nominal position (uniform in the disk, clamped to the terrain) —
/// modelling air-dropped beacons rolling away from their drop points.
///
/// # Panics
///
/// Panics if `max_offset` is negative or not finite, or `per_side == 0`.
pub fn perturbed_grid<R: Rng + ?Sized>(
    terrain: Terrain,
    per_side: usize,
    max_offset: f64,
    rng: &mut R,
) -> BeaconField {
    assert!(
        max_offset.is_finite() && max_offset >= 0.0,
        "perturbation offset must be finite and non-negative, got {max_offset}"
    );
    let nominal = uniform_grid(terrain, per_side);
    let bounds = terrain.bounds();
    let mut field = BeaconField::new(terrain);
    for b in &nominal {
        // Uniform in the disk of radius max_offset: r = R sqrt(u).
        let r = max_offset * rng.random::<f64>().sqrt();
        let theta = std::f64::consts::TAU * rng.random::<f64>();
        let offset = Vec2::new(r * theta.cos(), r * theta.sin());
        field.add_beacon(bounds.clamp_point(b.pos() + offset));
    }
    field
}

/// `clusters` cluster centers placed uniformly at random, each surrounded
/// by `per_cluster` beacons offset by a (deterministic, RNG-driven)
/// approximately-Gaussian displacement with standard deviation `sigma`,
/// clamped to the terrain.
///
/// Produces fields with large empty regions — the regime where the Grid
/// placement algorithm shines.
///
/// # Panics
///
/// Panics if `sigma` is negative or not finite.
pub fn clustered<R: Rng + ?Sized>(
    terrain: Terrain,
    clusters: usize,
    per_cluster: usize,
    sigma: f64,
    rng: &mut R,
) -> BeaconField {
    assert!(
        sigma.is_finite() && sigma >= 0.0,
        "cluster sigma must be finite and non-negative, got {sigma}"
    );
    let bounds = terrain.bounds();
    let mut field = BeaconField::new(terrain);
    for _ in 0..clusters {
        let center = terrain.point_at(rng.random::<f64>(), rng.random::<f64>());
        for _ in 0..per_cluster {
            // Box-Muller for a 2D Gaussian offset.
            let u1: f64 = rng.random::<f64>().max(1e-12);
            let u2: f64 = rng.random();
            let mag = (-2.0 * u1.ln()).sqrt() * sigma;
            let offset = Vec2::new(
                mag * (std::f64::consts::TAU * u2).cos(),
                mag * (std::f64::consts::TAU * u2).sin(),
            );
            field.add_beacon(bounds.clamp_point(center + offset));
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    #[test]
    fn uniform_grid_counts_and_corners() {
        let f = uniform_grid(terrain(), 3);
        assert_eq!(f.len(), 9);
        let positions: Vec<_> = f.positions().collect();
        assert!(positions.contains(&Point::new(0.0, 0.0)));
        assert!(positions.contains(&Point::new(100.0, 100.0)));
        assert!(positions.contains(&Point::new(50.0, 50.0)));
    }

    #[test]
    fn uniform_grid_single_beacon_centered() {
        let f = uniform_grid(terrain(), 1);
        assert_eq!(f.len(), 1);
        assert_eq!(f.positions().next().unwrap(), Point::new(50.0, 50.0));
    }

    #[test]
    fn grid_with_spacing_separation() {
        let f = grid_with_spacing(terrain(), 20.0);
        // 100/20 + 1 = 6 per side.
        assert_eq!(f.len(), 36);
        // Check nearest-neighbor separation is the requested spacing.
        let positions: Vec<_> = f.positions().collect();
        let mut min_sep = f64::INFINITY;
        for (i, a) in positions.iter().enumerate() {
            for b in &positions[i + 1..] {
                min_sep = min_sep.min(a.distance(*b));
            }
        }
        assert!((min_sep - 20.0).abs() < 1e-9);
    }

    #[test]
    fn grid_with_spacing_is_centered() {
        let f = grid_with_spacing(terrain(), 30.0);
        // 4 per side spanning 90, margin 5.
        assert_eq!(f.len(), 16);
        let min_x = f.positions().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let max_x = f.positions().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        assert!((min_x - 5.0).abs() < 1e-9);
        assert!((max_x - 95.0).abs() < 1e-9);
    }

    #[test]
    fn perturbed_grid_stays_near_nominal() {
        let mut rng = StdRng::seed_from_u64(5);
        let nominal = uniform_grid(terrain(), 5);
        let f = perturbed_grid(terrain(), 5, 3.0, &mut rng);
        assert_eq!(f.len(), nominal.len());
        for (n, p) in nominal.iter().zip(f.iter()) {
            assert!(n.pos().distance(p.pos()) <= 3.0 + 1e-9);
            assert!(terrain().contains(p.pos()));
        }
    }

    #[test]
    fn perturbed_grid_zero_offset_is_exact_grid() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = perturbed_grid(terrain(), 4, 0.0, &mut rng);
        let nominal = uniform_grid(terrain(), 4);
        let same = nominal
            .iter()
            .zip(f.iter())
            .all(|(a, b)| a.pos().distance(b.pos()) < 1e-12);
        assert!(same);
    }

    #[test]
    fn clustered_counts_and_containment() {
        let mut rng = StdRng::seed_from_u64(9);
        let f = clustered(terrain(), 4, 10, 5.0, &mut rng);
        assert_eq!(f.len(), 40);
        for b in &f {
            assert!(terrain().contains(b.pos()));
        }
    }

    #[test]
    fn clustered_is_actually_clumped() {
        let mut rng = StdRng::seed_from_u64(13);
        let f = clustered(terrain(), 3, 20, 3.0, &mut rng);
        // Mean nearest-neighbor distance must be far below the uniform
        // expectation (~ 0.5 / sqrt(density) ~ 6.5 m for 60 beacons).
        let positions: Vec<_> = f.positions().collect();
        let mean_nn: f64 = positions
            .iter()
            .enumerate()
            .map(|(i, a)| {
                positions
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, b)| a.distance(*b))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / positions.len() as f64;
        assert!(mean_nn < 4.0, "mean nearest neighbor {mean_nn} not clumped");
    }

    #[test]
    #[should_panic(expected = "at least one beacon")]
    fn uniform_grid_rejects_zero() {
        let _ = uniform_grid(terrain(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds terrain side")]
    fn spacing_grid_rejects_oversize() {
        let _ = grid_with_spacing(terrain(), 150.0);
    }
}
