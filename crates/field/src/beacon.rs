//! Beacons and their identities.

use abp_geom::Point;
use abp_radio::TxId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identity of a beacon within one [`BeaconField`](crate::BeaconField).
///
/// Ids are assigned sequentially by the field and never reused, so a
/// beacon's propagation personality (its noise factor in
/// `abp_radio::PerBeaconNoise`, keyed by the derived [`TxId`]) is stable
/// for its whole life — including across the before/after surveys of a
/// placement experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BeaconId(pub u64);

impl fmt::Display for BeaconId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "beacon{}", self.0)
    }
}

impl From<BeaconId> for TxId {
    #[inline]
    fn from(id: BeaconId) -> TxId {
        TxId(id.0)
    }
}

/// A beacon: a reference node at a known position that transmits
/// periodically so clients can localize themselves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Beacon {
    id: BeaconId,
    pos: Point,
}

impl Beacon {
    /// Creates a beacon. Normally done through
    /// [`BeaconField::add_beacon`](crate::BeaconField::add_beacon), which
    /// assigns the id.
    ///
    /// # Panics
    ///
    /// Panics if the position is not finite.
    pub fn new(id: BeaconId, pos: Point) -> Self {
        assert!(pos.is_finite(), "beacon position must be finite, got {pos}");
        Beacon { id, pos }
    }

    /// The beacon's identity.
    #[inline]
    pub fn id(&self) -> BeaconId {
        self.id
    }

    /// The transmitter id used by propagation models.
    #[inline]
    pub fn tx(&self) -> TxId {
        self.id.into()
    }

    /// The beacon's (known) position.
    #[inline]
    pub fn pos(&self) -> Point {
        self.pos
    }
}

impl fmt::Display for Beacon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.id, self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_converts_to_txid() {
        let tx: TxId = BeaconId(17).into();
        assert_eq!(tx, TxId(17));
    }

    #[test]
    fn beacon_accessors() {
        let b = Beacon::new(BeaconId(3), Point::new(1.0, 2.0));
        assert_eq!(b.id(), BeaconId(3));
        assert_eq!(b.tx(), TxId(3));
        assert_eq!(b.pos(), Point::new(1.0, 2.0));
        assert_eq!(b.to_string(), "beacon3 @ (1.000, 2.000)");
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan_position() {
        let _ = Beacon::new(BeaconId(0), Point::new(f64::NAN, 0.0));
    }

    #[test]
    fn ids_order_like_numbers() {
        assert!(BeaconId(2) < BeaconId(10));
    }
}
