//! Beacon fields for the `beaconplace` workspace.
//!
//! A *beacon field* is the set of reference nodes (beacons, each at a known
//! position) that the localization system relies on. This crate provides:
//!
//! * [`Beacon`] and [`BeaconId`] — a beacon and its stable identity (the
//!   identity keys per-beacon propagation noise, see `abp-radio`),
//! * [`BeaconField`] — the mutable collection the placement algorithms
//!   extend one beacon at a time,
//! * [`generate`] — field generators: uniform-random (the paper's
//!   evaluation workload), regular grids (the §2.2 error-bound analysis),
//!   perturbed grids (the air-drop scenario of §1), and clustered fields,
//! * [`CellIndex`] — a cell-bucket spatial index over beacons for
//!   radius-bounded queries,
//! * [`BeaconSoA`] — a structure-of-arrays mirror (`xs`/`ys`/`reach²`)
//!   for the dense sweep kernels in `abp-survey`.
//!
//! # Example
//!
//! ```
//! use abp_field::BeaconField;
//! use abp_geom::{Point, Terrain};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let terrain = Terrain::square(100.0);
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut field = BeaconField::random_uniform(20, terrain, &mut rng);
//! assert_eq!(field.len(), 20);
//! assert!((field.density() - 0.002).abs() < 1e-12); // paper's lowest density
//!
//! let id = field.add_beacon(Point::new(50.0, 50.0));
//! assert_eq!(field.len(), 21);
//! assert_eq!(field.get(id).unwrap().pos(), Point::new(50.0, 50.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon;
pub mod field;
pub mod generate;
pub mod index;
pub mod soa;

pub use beacon::{Beacon, BeaconId};
pub use field::BeaconField;
pub use index::CellIndex;
pub use soa::BeaconSoA;
