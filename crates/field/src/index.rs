//! Cell-bucket spatial index over beacons.

use crate::beacon::Beacon;
use crate::field::BeaconField;
use abp_geom::Point;
use std::collections::HashMap;

/// A uniform-cell spatial index for radius-bounded beacon queries.
///
/// Built once over a snapshot of a [`BeaconField`]; supports
/// "all beacons within `r` of `p`" in time proportional to the number of
/// cells the query disk touches. The connectivity oracle uses it when
/// localizing many arbitrary (non-lattice) points, e.g. along a robot
/// path.
///
/// # Example
///
/// ```
/// use abp_field::{BeaconField, CellIndex};
/// use abp_geom::{Point, Terrain};
///
/// let field = BeaconField::from_positions(
///     Terrain::square(100.0),
///     [Point::new(10.0, 10.0), Point::new(90.0, 90.0)],
/// );
/// let index = CellIndex::build(&field, 15.0);
/// let mut near = Vec::new();
/// index.for_each_within(Point::new(12.0, 12.0), 15.0, |b| near.push(b.id()));
/// assert_eq!(near.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CellIndex {
    cell: f64,
    buckets: HashMap<(i32, i32), Vec<Beacon>>,
    len: usize,
}

impl CellIndex {
    /// Builds the index with cells of size `cell_size` (a good choice is
    /// the radio's maximum range, making queries touch at most 9 cells).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and strictly positive.
    pub fn build(field: &BeaconField, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be finite and positive, got {cell_size}"
        );
        let mut buckets: HashMap<(i32, i32), Vec<Beacon>> = HashMap::new();
        for b in field {
            buckets
                .entry(Self::key(cell_size, b.pos()))
                .or_default()
                .push(*b);
        }
        CellIndex {
            cell: cell_size,
            buckets,
            len: field.len(),
        }
    }

    fn key(cell: f64, p: Point) -> (i32, i32) {
        ((p.x / cell).floor() as i32, (p.y / cell).floor() as i32)
    }

    /// Number of indexed beacons.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no beacons are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cell size.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Invokes `f` for every beacon within `radius` of `p` (boundary
    /// included).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn for_each_within<F: FnMut(&Beacon)>(&self, p: Point, radius: f64, mut f: F) {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "query radius must be finite and non-negative, got {radius}"
        );
        let r2 = radius * radius;
        let (cx_lo, cy_lo) = Self::key(self.cell, Point::new(p.x - radius, p.y - radius));
        let (cx_hi, cy_hi) = Self::key(self.cell, Point::new(p.x + radius, p.y + radius));
        for cy in cy_lo..=cy_hi {
            for cx in cx_lo..=cx_hi {
                if let Some(bucket) = self.buckets.get(&(cx, cy)) {
                    for b in bucket {
                        if b.pos().distance_squared(p) <= r2 {
                            f(b);
                        }
                    }
                }
            }
        }
    }

    /// Collects the beacons within `radius` of `p`.
    pub fn within(&self, p: Point, radius: f64) -> Vec<Beacon> {
        let mut out = Vec::new();
        self.for_each_within(p, radius, |b| out.push(*b));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Terrain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_field(n: usize, seed: u64) -> BeaconField {
        BeaconField::random_uniform(n, Terrain::square(100.0), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn empty_field_empty_index() {
        let idx = CellIndex::build(&BeaconField::new(Terrain::square(10.0)), 5.0);
        assert!(idx.is_empty());
        assert!(idx.within(Point::new(5.0, 5.0), 100.0).is_empty());
    }

    #[test]
    fn query_matches_bruteforce() {
        let field = sample_field(200, 3);
        let idx = CellIndex::build(&field, 15.0);
        assert_eq!(idx.len(), 200);
        for &(x, y, r) in &[
            (50.0, 50.0, 15.0),
            (0.0, 0.0, 10.0),
            (99.0, 1.0, 30.0),
            (50.0, 50.0, 0.0),
            (50.0, 50.0, 200.0),
        ] {
            let p = Point::new(x, y);
            let mut got: Vec<_> = idx.within(p, r).iter().map(|b| b.id()).collect();
            got.sort();
            let mut want: Vec<_> = field
                .iter()
                .filter(|b| b.pos().distance(p) <= r)
                .map(|b| b.id())
                .collect();
            want.sort();
            assert_eq!(got, want, "query ({x},{y},{r})");
        }
    }

    #[test]
    fn boundary_inclusive() {
        let field = BeaconField::from_positions(Terrain::square(100.0), [Point::new(10.0, 0.0)]);
        let idx = CellIndex::build(&field, 7.0);
        assert_eq!(idx.within(Point::new(0.0, 0.0), 10.0).len(), 1);
        assert_eq!(idx.within(Point::new(0.0, 0.0), 9.999).len(), 0);
    }

    #[test]
    fn cell_size_does_not_change_results() {
        let field = sample_field(100, 9);
        let p = Point::new(33.0, 66.0);
        let baseline: Vec<_> = CellIndex::build(&field, 15.0).within(p, 20.0);
        for cell in [1.0, 3.7, 50.0, 500.0] {
            let got = CellIndex::build(&field, cell).within(p, 20.0);
            assert_eq!(got.len(), baseline.len(), "cell {cell}");
        }
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn rejects_zero_cell() {
        let _ = CellIndex::build(&BeaconField::new(Terrain::square(10.0)), 0.0);
    }
}
