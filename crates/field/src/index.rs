//! Grid-bin spatial index over beacons.

use crate::beacon::Beacon;
use crate::field::BeaconField;
use abp_geom::{GridBins, Point};

/// A uniform-cell spatial index for radius-bounded beacon queries, built
/// on [`abp_geom::GridBins`].
///
/// Built once over a snapshot of a [`BeaconField`]; supports
/// "all beacons within `r` of `p`" in time proportional to the number of
/// cells the query disk touches. The connectivity oracle and the indexed
/// survey sweep use it to replace the brute O(points × beacons) scan.
///
/// # Ordering contract
///
/// Queries visit matching beacons in **ascending insertion order** — the
/// order of [`BeaconField::iter`] — exactly as a brute-force scan of the
/// field would. Downstream f64 accumulations (centroid sums, error maps)
/// therefore produce bit-identical results on the indexed and brute
/// paths. See [`abp_geom::bins`] for the underlying guarantee.
///
/// # Example
///
/// ```
/// use abp_field::{BeaconField, CellIndex};
/// use abp_geom::{Point, Terrain};
///
/// let field = BeaconField::from_positions(
///     Terrain::square(100.0),
///     [Point::new(10.0, 10.0), Point::new(90.0, 90.0)],
/// );
/// let index = CellIndex::build(&field, 15.0);
/// let mut near = Vec::new();
/// index.for_each_within(Point::new(12.0, 12.0), 15.0, |b| near.push(b.id()));
/// assert_eq!(near.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CellIndex {
    bins: GridBins,
    beacons: Vec<Beacon>,
    positions: Vec<Point>,
}

impl CellIndex {
    /// Builds the index with cells of size `cell_size` (a good choice is
    /// the radio's maximum range, making queries touch at most 9 cells).
    ///
    /// Queries with radius up to `cell_size` additionally get the
    /// precomputed fast path of [`CellIndex::for_each_candidate`] — see
    /// [`CellIndex::candidate_reach`].
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and strictly positive.
    pub fn build(field: &BeaconField, cell_size: f64) -> Self {
        let beacons: Vec<Beacon> = field.iter().copied().collect();
        let positions: Vec<Point> = beacons.iter().map(|b| b.pos()).collect();
        CellIndex {
            bins: GridBins::build_for_reach(&positions, cell_size, cell_size),
            beacons,
            positions,
        }
    }

    /// Rebuilds the index in place over a new field snapshot, reusing
    /// the beacon, position, and CSR buffers of the previous build.
    /// Equivalent to `*self = CellIndex::build(field, cell_size)` but
    /// allocation-free once the buffers have grown to the sweep's
    /// largest field (see [`GridBins::rebuild_for_reach_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not finite and strictly positive.
    pub fn rebuild(&mut self, field: &BeaconField, cell_size: f64) {
        self.beacons.clear();
        self.beacons.extend(field.iter().copied());
        self.positions.clear();
        self.positions.extend(self.beacons.iter().map(|b| b.pos()));
        self.bins
            .rebuild_for_reach_into(&self.positions, cell_size, cell_size);
    }

    /// Number of indexed beacons.
    #[inline]
    pub fn len(&self) -> usize {
        self.beacons.len()
    }

    /// Returns `true` if no beacons are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.beacons.is_empty()
    }

    /// The cell size.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.bins.cell_size()
    }

    /// Invokes `f` for every beacon within `radius` of `p` (boundary
    /// included), in **ascending insertion order** (see the type-level
    /// ordering contract). Returns the number of grid cells the query
    /// pruned, for telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn for_each_within<F: FnMut(&Beacon)>(&self, p: Point, radius: f64, mut f: F) -> usize {
        self.bins
            .for_each_within(p, radius, |k, _| f(&self.beacons[k]))
    }

    /// Collects the beacons within `radius` of `p`, in insertion order.
    pub fn within(&self, p: Point, radius: f64) -> Vec<Beacon> {
        let mut out = Vec::new();
        self.for_each_within(p, radius, |b| out.push(*b));
        out
    }

    /// The query radius [`CellIndex::for_each_candidate`] is guaranteed
    /// to cover: every beacon within this distance of a query point is
    /// among the candidates. Equal to the `cell_size` given to
    /// [`CellIndex::build`].
    #[inline]
    pub fn candidate_reach(&self) -> f64 {
        self.bins
            .candidate_reach()
            .expect("CellIndex always builds its bins with build_for_reach")
    }

    /// Invokes `f` for every *candidate* beacon near `p` — a superset of
    /// [`CellIndex::for_each_within`]`(p, candidate_reach())` with **no
    /// distance filter applied** — in ascending insertion order. Returns
    /// the number of grid cells the query pruned.
    ///
    /// This is the hot-loop entry point for callers that apply their own
    /// distance-implied predicate per beacon (the connectivity oracle's
    /// `connected()` check): one precomputed-slice walk per query, no
    /// per-cell gathering. See [`abp_geom::GridBins::for_each_candidate`]
    /// for the contract.
    pub fn for_each_candidate<F: FnMut(&Beacon)>(&self, p: Point, mut f: F) -> usize {
        self.bins.for_each_candidate(p, |k, _| f(&self.beacons[k]))
    }

    /// The underlying [`GridBins`] over the beacon *positions* (indices
    /// correspond to beacon insertion order). Exposed for sweeps that
    /// want the tightest possible candidate loop — iterating the dense
    /// position array instead of the full beacon records.
    #[inline]
    pub fn bins(&self) -> &GridBins {
        &self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Terrain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_field(n: usize, seed: u64) -> BeaconField {
        BeaconField::random_uniform(n, Terrain::square(100.0), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn empty_field_empty_index() {
        let idx = CellIndex::build(&BeaconField::new(Terrain::square(10.0)), 5.0);
        assert!(idx.is_empty());
        assert!(idx.within(Point::new(5.0, 5.0), 100.0).is_empty());
    }

    #[test]
    fn query_matches_bruteforce_in_insertion_order() {
        let field = sample_field(200, 3);
        let idx = CellIndex::build(&field, 15.0);
        assert_eq!(idx.len(), 200);
        for &(x, y, r) in &[
            (50.0, 50.0, 15.0),
            (0.0, 0.0, 10.0),
            (99.0, 1.0, 30.0),
            (50.0, 50.0, 0.0),
            (50.0, 50.0, 200.0),
        ] {
            let p = Point::new(x, y);
            let got: Vec<_> = idx.within(p, r).iter().map(|b| b.id()).collect();
            // No sort: the index must already match the brute scan order.
            let want: Vec<_> = field
                .iter()
                .filter(|b| b.pos().distance(p) <= r)
                .map(|b| b.id())
                .collect();
            assert_eq!(got, want, "query ({x},{y},{r})");
        }
    }

    #[test]
    fn boundary_inclusive() {
        let field = BeaconField::from_positions(Terrain::square(100.0), [Point::new(10.0, 0.0)]);
        let idx = CellIndex::build(&field, 7.0);
        assert_eq!(idx.within(Point::new(0.0, 0.0), 10.0).len(), 1);
        assert_eq!(idx.within(Point::new(0.0, 0.0), 9.999).len(), 0);
    }

    #[test]
    fn cell_size_does_not_change_results() {
        let field = sample_field(100, 9);
        let p = Point::new(33.0, 66.0);
        let baseline: Vec<_> = CellIndex::build(&field, 15.0).within(p, 20.0);
        for cell in [1.0, 3.7, 50.0, 500.0] {
            let got = CellIndex::build(&field, cell).within(p, 20.0);
            assert_eq!(got.len(), baseline.len(), "cell {cell}");
        }
    }

    #[test]
    fn reports_pruned_cells() {
        let field = sample_field(200, 5);
        let idx = CellIndex::build(&field, 10.0);
        let pruned = idx.for_each_within(Point::new(50.0, 50.0), 10.0, |_| ());
        assert!(pruned > 0, "a tight query over a 100 m field must prune");
    }

    #[test]
    fn rebuild_equals_fresh_build() {
        let a = sample_field(120, 4);
        let b = sample_field(60, 8);
        let mut reused = CellIndex::build(&a, 15.0);
        reused.rebuild(&b, 12.0);
        let fresh = CellIndex::build(&b, 12.0);
        assert_eq!(reused.len(), fresh.len());
        assert_eq!(reused.candidate_reach(), fresh.candidate_reach());
        for &(x, y) in &[(0.0, 0.0), (50.0, 50.0), (99.0, 1.0)] {
            let p = Point::new(x, y);
            let got: Vec<_> = reused.within(p, 12.0).iter().map(|b| b.id()).collect();
            let want: Vec<_> = fresh.within(p, 12.0).iter().map(|b| b.id()).collect();
            assert_eq!(got, want, "query ({x},{y})");
        }
        // Growing back to the larger field also matches a fresh build.
        reused.rebuild(&a, 15.0);
        let fresh = CellIndex::build(&a, 15.0);
        let p = Point::new(33.0, 66.0);
        assert_eq!(
            reused.within(p, 15.0).len(),
            fresh.within(p, 15.0).len(),
            "after rebuilding back to the larger field"
        );
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn rejects_zero_cell() {
        let _ = CellIndex::build(&BeaconField::new(Terrain::square(10.0)), 0.0);
    }
}
