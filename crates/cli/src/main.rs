//! `abp` — regenerate the tables and figures of *Adaptive Beacon
//! Placement* (Bulusu, Heidemann & Estrin, ICDCS 2001).
//!
//! ```text
//! abp <command> [options]
//!
//! commands:
//!   table1            print the simulation-parameter table
//!   fig1              granularity of localization regions (uniform grids)
//!   fig4              mean error vs density, ideal propagation
//!   fig5              improvement in mean/median error, 3 algorithms, ideal
//!   fig6              mean error vs density, noise 0/0.1/0.3/0.5
//!   fig7|fig8|fig9    Random/Max/Grid improvements across noise levels
//!   bound             centroid error vs range-overlap ratio R/d (sec. 2.2)
//!   ablation          all five algorithms side by side
//!   noise-styles      the three readings of the noise model's u draw
//!   robustness        Grid vs partial exploration and GPS error (sec. 3.1)
//!   faults            error and placement ranking under injected faults:
//!                     beacon death, burst loss, GPS outages (sec. 6)
//!   solspace          solution-space density sweep (sec. 1, contribution 3)
//!   multilat          the algorithms recast for multilateration (sec. 6)
//!   batch             k beacons at once: greedy vs one-shot top-k (sec. 6)
//!   duel              paired Grid-vs-Max comparison with significance verdicts
//!   localizers        estimator ablation: centroid vs weighted/locus/multilat
//!   heatmap           ASCII before/after heatmap of one placement step
//!   bench             time the brute vs spatially-indexed hot kernels
//!                     (survey sweep, scratch-reused survey, greedy
//!                     candidate scan), verify the indexed outputs are
//!                     bit-identical, and with --out write
//!                     BENCH_sweep.json (median + 95% CI per kernel,
//!                     plus steady-state allocs/trial when the binary
//!                     was built with --features count-allocs; the
//!                     serve_qps block drives the daemon under load
//!                     twice — telemetry off, then on with /metrics
//!                     scraped concurrently — to price live telemetry)
//!   serve             run the online localization daemon until
//!                     SIGTERM/SIGINT: answers localize/place/info
//!                     queries over the length-prefixed TCP protocol
//!                     (docs/SERVING.md), re-surveying in the background
//!                     on applied placements via epoch snapshot swaps
//!   serve-bench       load-test the daemon in process: N client
//!                     threads over real sockets, exact p50/p95/p99
//!                     round-trip quantiles, the served-vs-batch
//!                     bit-identity gate, and allocs/request (gated at
//!                     0 when built with --features count-allocs)
//!   top               live dashboard over a running daemon's stats
//!                     opcode: per-opcode qps and interval p50/p95/p99,
//!                     epoch, connections, rebuild activity, and the
//!                     slow-request flight recorder; full-screen on a
//!                     TTY, one line per poll when piped; reconnects
//!                     with capped exponential backoff when the daemon
//!                     restarts mid-poll
//!   serve-chaos       throw the hostile-client battery at a live
//!                     daemon: torn frames, garbage opcodes, absurd
//!                     length/count prefixes, connection floods,
//!                     slowloris dribbles, an injected handler panic,
//!                     deadline overruns, and a warm restart from the
//!                     state file; exits non-zero on the first
//!                     violated expectation (docs/SERVING.md §7)
//!   net               time-domain packet simulation (abp-net,
//!                     docs/SIMULATION.md): localization error vs
//!                     beacon interval, collision rate vs density,
//!                     network lifetime vs duty cycle — three figures
//!                     from the same deterministic event engine
//!   all               table1 + every paper figure + bound, in order
//!
//! options:
//!   --preset paper|quick|tiny   base configuration   [default: quick]
//!                               (bench: paper = 100-beacon 1 m paper scale,
//!                               quick/tiny = seconds-scale smoke)
//!   --trials N                  override trials per density
//!   --step METERS               override survey lattice step
//!   --threads N                 worker threads (0 = all cores); bench runs
//!                               its scaling ladder at [1, N] instead of the
//!                               auto powers-of-two sweep when N > 0
//!   --seed HEX                  master seed
//!   --noise X                   noise level for ablation/duel/batch [default: 0]
//!   --beacons N                 field size for robustness/faults/batch [default: 40]
//!   --retry N                   re-run a panicked or timed-out trial up to N
//!                               more times; each attempt re-derives its seed
//!                               deterministically, so healthy trials are
//!                               bit-identical with or without the flag
//!   --trial-timeout DUR         abort any trial attempt running longer than
//!                               DUR (e.g. 30s, 500ms) and record a structured
//!                               timeout; combines with --retry
//!   --skip-brute                bench only: skip the brute/reference sides
//!                               for fast local iteration; DISABLES the
//!                               bit-identity gate, never use for baselines
//!   --repeats N                 bench only: timed samples per kernel
//!                               variant (default: preset's repeats);
//!                               raise it when a speedup CI straddles 1.0
//!   --port N                    serve/serve-bench: TCP port [default: 0,
//!                               an ephemeral port printed at startup];
//!                               top: the daemon's port (required)
//!   --clients N                 serve-bench: client threads
//!   --requests N                serve-bench: measured requests per client
//!   --metrics-port N            serve/serve-bench: also expose Prometheus
//!                               text exposition over HTTP at
//!                               127.0.0.1:N/metrics (0 = ephemeral)
//!   --interval DUR              top: delay between polls [default: 1s]
//!   --polls N                   top: render N updates then exit
//!                               (default: run until SIGTERM/SIGINT)
//!   --max-conns N               serve: admission cap — when this many
//!                               connections are live or queued, new ones
//!                               are answered Overloaded and closed
//!                               [default: unlimited]
//!   --deadline DUR              serve: per-request handling deadline;
//!                               overruns answer DeadlineExceeded
//!                               [default: none]
//!   --idle-timeout DUR          serve: close connections idle between
//!                               frames for longer than DUR [default: 300s]
//!   --state PATH                serve: persist the published world here on
//!                               every epoch and warm-restart from it at
//!                               boot (bit-identical error map)
//!   --replay-check              net: before the sweeps, run one trial of
//!                               each experiment twice and fail unless the
//!                               event logs are byte-identical (the CI
//!                               determinism gate)
//!   --out DIR                   also write <figure>.csv files into DIR
//!   --progress                  live completed/total and ETA on stderr
//!   --metrics-json PATH         write per-figure wall-clock/throughput JSON
//!   --checkpoint PATH           persist finished sweeps; resume from PATH
//!   --trace PATH                write a structured trace of the run
//!   --trace-format jsonl|chrome trace file format [default: jsonl]; chrome
//!                               loads in chrome://tracing and Perfetto
//!   --counters                  print aggregated counters/histograms on exit
//! ```

use abp_sim::experiments::density_error;
use abp_sim::experiments::net_sim;
use abp_sim::experiments::overlap_bound::BoundConfig;
use abp_sim::progress::{Ctx, Fanout, MetricsRecorder, Probe, ProgressProbe};
use abp_sim::runner::{resolve_threads, RunPolicy};
use abp_sim::{figures, AlgorithmKind, Figure, SimConfig, SweepCheckpoint, TraceProbe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

mod top;

/// On-disk format of the `--trace` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum TraceFormat {
    /// One self-describing JSON object per line (`jq`-friendly).
    #[default]
    Jsonl,
    /// Chrome Trace Event JSON for `chrome://tracing` / Perfetto.
    Chrome,
}

#[derive(Debug)]
struct Options {
    command: String,
    cfg: SimConfig,
    /// The raw `--preset` name (`bench` maps it to its own scales).
    preset: String,
    noise: f64,
    /// `--beacons` when given explicitly (commands have per-command
    /// defaults).
    beacons: Option<usize>,
    /// `--step` when given explicitly (already applied to `cfg`).
    step_override: Option<f64>,
    /// `--seed` when given explicitly (already applied to `cfg`).
    seed_override: Option<u64>,
    out: Option<PathBuf>,
    retry: u32,
    trial_timeout: Option<Duration>,
    progress: bool,
    metrics_json: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    trace: Option<PathBuf>,
    trace_format: TraceFormat,
    counters: bool,
    /// `--skip-brute`: bench-only fast iteration, identity gate off.
    skip_brute: bool,
    /// `--repeats` when given explicitly (bench).
    repeats: Option<usize>,
    /// `--port` for serve/serve-bench (0 = ephemeral) and top (the
    /// daemon to poll, required).
    port: u16,
    /// `--clients` when given explicitly (serve-bench).
    clients: Option<usize>,
    /// `--requests` when given explicitly (serve-bench).
    requests: Option<usize>,
    /// `--metrics-port`: bind the HTTP exposition listener here.
    metrics_port: Option<u16>,
    /// `--interval` between `top` polls.
    interval: Duration,
    /// `--polls`: `top` renders this many updates then exits.
    polls: Option<u64>,
    /// `--max-conns`: the serve admission cap (None = unlimited).
    max_conns: Option<usize>,
    /// `--deadline`: per-request handling budget (None = no deadline).
    deadline: Option<Duration>,
    /// `--idle-timeout` when given explicitly (serve).
    idle_timeout: Option<Duration>,
    /// `--state`: warm-restart state file (serve).
    state: Option<PathBuf>,
    /// `--replay-check`: net runs its byte-identity replay gate first.
    replay_check: bool,
}

fn usage() -> &'static str {
    "usage: abp <table1|fig1|fig4..fig9|bound|ablation|noise-styles|robustness|\
     faults|solspace|multilat|batch|duel|localizers|heatmap|bench|serve|\
     serve-bench|serve-chaos|top|net|all> \
     [--preset paper|quick|tiny] [--trials N] [--step M] [--threads N] \
     [--seed HEX] [--noise X] [--beacons N] [--out DIR] \
     [--retry N] [--trial-timeout DUR] [--skip-brute] [--repeats N] \
     [--port N] [--clients N] [--requests N] \
     [--metrics-port N] [--interval DUR] [--polls N] \
     [--max-conns N] [--deadline DUR] [--idle-timeout DUR] [--state PATH] \
     [--replay-check] \
     [--progress] [--metrics-json PATH] [--checkpoint PATH] \
     [--trace PATH] [--trace-format jsonl|chrome] [--counters]"
}

/// Parses a human-friendly duration: a positive number with an `s`
/// (seconds) or `ms` (milliseconds) suffix, e.g. `30s`, `2.5s`, `500ms`.
/// Zero, negatives, and bare numbers are rejected up front so a typo
/// fails before any multi-minute computation starts.
fn parse_duration(flag: &str, raw: &str) -> Result<Duration, String> {
    let bad = || format!("{flag}: expected a duration like 30s or 500ms, got {raw}");
    let (digits, scale) = if let Some(v) = raw.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = raw.strip_suffix('s') {
        (v, 1.0)
    } else {
        return Err(bad());
    };
    let value: f64 = digits.parse().map_err(|_| bad())?;
    let seconds = value * scale;
    if !seconds.is_finite() || seconds <= 0.0 {
        return Err(format!("{flag} must be positive, got {raw}"));
    }
    if seconds > 86_400.0 * 365.0 {
        return Err(format!("{flag}: {raw} is longer than a year"));
    }
    Ok(Duration::from_secs_f64(seconds))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut command = None;
    let mut preset = "quick".to_string();
    let mut trials = None;
    let mut step = None;
    let mut threads = None;
    let mut seed = None;
    let mut noise = 0.0;
    let mut beacons = None;
    let mut out = None;
    let mut retry = 0u32;
    let mut trial_timeout = None;
    let mut progress = false;
    let mut metrics_json = None;
    let mut checkpoint = None;
    let mut trace = None;
    let mut trace_format = TraceFormat::default();
    let mut counters = false;
    let mut skip_brute = false;
    let mut repeats = None;
    let mut port = 0u16;
    let mut clients = None;
    let mut requests = None;
    let mut metrics_port = None;
    let mut interval = Duration::from_secs(1);
    let mut polls = None;
    let mut max_conns = None;
    let mut deadline = None;
    let mut idle_timeout = None;
    let mut state = None;
    let mut replay_check = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--preset" => preset = value("--preset")?,
            "--trials" => {
                trials = Some(
                    value("--trials")?
                        .parse::<usize>()
                        .map_err(|e| format!("--trials: {e}"))?,
                )
            }
            "--step" => {
                step = Some(
                    value("--step")?
                        .parse::<f64>()
                        .map_err(|e| format!("--step: {e}"))?,
                )
            }
            "--threads" => {
                threads = Some(
                    value("--threads")?
                        .parse::<usize>()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--seed" => {
                let raw = value("--seed")?;
                let raw = raw.trim_start_matches("0x");
                seed = Some(u64::from_str_radix(raw, 16).map_err(|e| format!("--seed: {e}"))?);
            }
            "--noise" => {
                noise = value("--noise")?
                    .parse::<f64>()
                    .map_err(|e| format!("--noise: {e}"))?
            }
            "--beacons" => {
                beacons = Some(
                    value("--beacons")?
                        .parse::<usize>()
                        .map_err(|e| format!("--beacons: {e}"))?,
                )
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--retry" => {
                let raw = value("--retry")?;
                let n = raw.parse::<u32>().map_err(|e| format!("--retry: {e}"))?;
                if n == 0 {
                    return Err(
                        "--retry must be at least 1 (omit the flag to disable retries)".into(),
                    );
                }
                retry = n;
            }
            "--trial-timeout" => {
                trial_timeout = Some(parse_duration(
                    "--trial-timeout",
                    &value("--trial-timeout")?,
                )?)
            }
            "--progress" => progress = true,
            "--metrics-json" => metrics_json = Some(PathBuf::from(value("--metrics-json")?)),
            "--checkpoint" => checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--trace-format" => {
                trace_format = match value("--trace-format")?.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "chrome" => TraceFormat::Chrome,
                    other => {
                        return Err(format!(
                            "--trace-format must be jsonl or chrome, got {other}"
                        ))
                    }
                }
            }
            "--counters" => counters = true,
            "--skip-brute" => skip_brute = true,
            "--repeats" => {
                let n = value("--repeats")?
                    .parse::<usize>()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if n == 0 {
                    return Err("--repeats must be at least 1".into());
                }
                repeats = Some(n);
            }
            "--port" => {
                port = value("--port")?
                    .parse::<u16>()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--clients" => {
                let n = value("--clients")?
                    .parse::<usize>()
                    .map_err(|e| format!("--clients: {e}"))?;
                if n == 0 {
                    return Err("--clients must be at least 1".into());
                }
                clients = Some(n);
            }
            "--requests" => {
                let n = value("--requests")?
                    .parse::<usize>()
                    .map_err(|e| format!("--requests: {e}"))?;
                if n == 0 {
                    return Err("--requests must be at least 1".into());
                }
                requests = Some(n);
            }
            "--metrics-port" => {
                metrics_port = Some(
                    value("--metrics-port")?
                        .parse::<u16>()
                        .map_err(|e| format!("--metrics-port: {e}"))?,
                )
            }
            "--interval" => interval = parse_duration("--interval", &value("--interval")?)?,
            "--polls" => {
                let n = value("--polls")?
                    .parse::<u64>()
                    .map_err(|e| format!("--polls: {e}"))?;
                if n == 0 {
                    return Err("--polls must be at least 1 (omit the flag to run until \
                                SIGTERM/SIGINT)"
                        .into());
                }
                polls = Some(n);
            }
            "--max-conns" => {
                let n = value("--max-conns")?
                    .parse::<usize>()
                    .map_err(|e| format!("--max-conns: {e}"))?;
                if n == 0 {
                    return Err(
                        "--max-conns must be at least 1 (omit the flag for unlimited)".into(),
                    );
                }
                max_conns = Some(n);
            }
            "--deadline" => deadline = Some(parse_duration("--deadline", &value("--deadline")?)?),
            "--idle-timeout" => {
                idle_timeout = Some(parse_duration("--idle-timeout", &value("--idle-timeout")?)?)
            }
            "--state" => state = Some(PathBuf::from(value("--state")?)),
            "--replay-check" => replay_check = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}"));
            }
            other => {
                if command.replace(other.to_string()).is_some() {
                    return Err("more than one command given".into());
                }
            }
        }
    }
    let command = command.ok_or_else(|| "no command given".to_string())?;
    let mut cfg = match preset.as_str() {
        "paper" => SimConfig::paper(),
        "quick" => SimConfig::quick(),
        "tiny" => SimConfig::tiny(),
        other => return Err(format!("unknown preset {other}")),
    };
    if let Some(t) = trials {
        if t == 0 {
            return Err("--trials must be at least 1".into());
        }
        cfg.trials = t;
    }
    if let Some(s) = step {
        if !s.is_finite() || s <= 0.0 {
            return Err(format!(
                "--step must be a positive number of meters, got {s}"
            ));
        }
        cfg.step = s;
    }
    if let Some(t) = threads {
        cfg.threads = t;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    // Half-open on purpose, matching `PerBeaconNoise`'s contract: a noise
    // factor of 1 would let a beacon's effective range collapse to 0 (the
    // paper never exceeds 0.5). Rejecting here keeps the panic out of the
    // middle of a multi-minute sweep.
    if !noise.is_finite() || !(0.0..1.0).contains(&noise) {
        return Err(format!(
            "--noise must be in [0, 1), got {noise} (a noise factor of 1 \
             would let effective beacon ranges reach 0; the paper tops out \
             at 0.5)"
        ));
    }
    Ok(Options {
        command,
        cfg,
        preset,
        noise,
        beacons,
        step_override: step,
        seed_override: seed,
        out,
        retry,
        trial_timeout,
        progress,
        metrics_json,
        checkpoint,
        trace,
        trace_format,
        counters,
        skip_brute,
        repeats,
        port,
        clients,
        requests,
        metrics_port,
        interval,
        polls,
        max_conns,
        deadline,
        idle_timeout,
        state,
        replay_check,
    })
}

/// Checks, before any multi-minute computation starts, that `path`'s
/// parent directory exists and is writable (probed by creating and
/// removing a uniquely-named scratch file).
fn validate_output_path(flag: &str, path: &Path) -> Result<(), String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    if path.as_os_str().is_empty() {
        return Err(format!("{flag} expects a file path"));
    }
    if path.is_dir() {
        return Err(format!(
            "{flag}: {} is a directory, expected a file path",
            path.display()
        ));
    }
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    if !parent.is_dir() {
        return Err(format!(
            "{flag}: parent directory {} does not exist",
            parent.display()
        ));
    }
    static PROBE_ID: AtomicU64 = AtomicU64::new(0);
    let probe = parent.join(format!(
        ".abp-write-probe-{}-{}",
        std::process::id(),
        PROBE_ID.fetch_add(1, Ordering::Relaxed)
    ));
    match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&probe)
    {
        Ok(_) => {
            let _ = std::fs::remove_file(&probe);
            Ok(())
        }
        Err(e) => Err(format!(
            "{flag}: parent directory {} is not writable: {e}",
            parent.display()
        )),
    }
}

/// Validates every output path the run will eventually write.
fn validate_paths(opts: &Options) -> Result<(), String> {
    if let Some(p) = &opts.metrics_json {
        validate_output_path("--metrics-json", p)?;
    }
    if let Some(p) = &opts.checkpoint {
        validate_output_path("--checkpoint", p)?;
    }
    if let Some(p) = &opts.trace {
        validate_output_path("--trace", p)?;
    }
    if let Some(p) = &opts.state {
        validate_output_path("--state", p)?;
    }
    Ok(())
}

fn emit(fig: &Figure, out: &Option<PathBuf>) -> Result<(), String> {
    println!("{}", fig.render());
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let path = dir.join(format!("{}.csv", fig.id));
        std::fs::write(&path, fig.to_csv())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn emit_pair(figs: (Figure, Figure), out: &Option<PathBuf>) -> Result<(), String> {
    emit(&figs.0, out)?;
    emit(&figs.1, out)
}

/// Builds the observability context from the options, runs the command,
/// then writes the metrics JSON and trace exports (when requested).
fn run(opts: &Options) -> Result<(), String> {
    validate_paths(opts)?;
    let progress = opts.progress.then(ProgressProbe::new);
    let metrics = opts
        .metrics_json
        .as_ref()
        .map(|_| MetricsRecorder::new(resolve_threads(opts.cfg.threads)));
    let checkpoint = match &opts.checkpoint {
        Some(path) => Some(
            SweepCheckpoint::open(path, opts.cfg.fingerprint())
                .map_err(|e| format!("opening checkpoint {}: {e}", path.display()))?,
        ),
        None => None,
    };
    let tracing = opts.trace.is_some() || opts.counters;
    let bridge = tracing.then(|| {
        // Start from clean instruments so the report covers this run only
        // (repeated in-process runs share the global registry).
        abp_trace::reset_metrics();
        if opts.trace.is_some() {
            abp_trace::sink::install(abp_trace::sink::DEFAULT_CAPACITY);
            let _ = abp_trace::drain(); // discard any previous run's events
        }
        abp_trace::set_enabled(true);
        TraceProbe::new()
    });
    let mut probes: Vec<&dyn Probe> = Vec::new();
    if let Some(p) = &progress {
        probes.push(p);
    }
    if let Some(m) = &metrics {
        probes.push(m);
    }
    if let Some(b) = &bridge {
        probes.push(b);
    }
    let fanout = Fanout::new(probes);
    if let (Some(path), Some(c)) = (&opts.checkpoint, &checkpoint) {
        let open = c.opened();
        fanout.checkpoint_opened(path, &open);
        // The progress probe already narrates surprising opens; without it,
        // still tell the user when an existing file was set aside or held
        // damaged entries, so silent recomputation never looks like resume.
        if !opts.progress && (open.is_ignored() || open.quarantined() > 0) {
            eprintln!("checkpoint {}: {open}", path.display());
        }
    }
    let mut ctx = Ctx::new(&fanout).with_policy(RunPolicy {
        retries: opts.retry,
        trial_timeout: opts.trial_timeout,
        ..RunPolicy::default()
    });
    if let Some(c) = &checkpoint {
        ctx = ctx.with_checkpoint(c);
    }
    let result = run_command(opts, ctx);
    if tracing {
        // Always turn the gate back off, even when the command failed, so
        // later runs in the same process start untraced.
        abp_trace::set_enabled(false);
        abp_trace::sink::uninstall();
    }
    result?;
    if let (Some(path), Some(m)) = (&opts.metrics_json, &metrics) {
        std::fs::write(path, m.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    if tracing {
        let (counters, hists) = abp_trace::counters_snapshot();
        if let Some(path) = &opts.trace {
            let report = abp_trace::drain();
            let body = match opts.trace_format {
                TraceFormat::Jsonl => abp_trace::export::to_jsonl(&report, &counters, &hists),
                TraceFormat::Chrome => {
                    abp_trace::export::to_chrome_json(&report, &counters, &hists)
                }
            };
            std::fs::write(path, body).map_err(|e| format!("writing {}: {e}", path.display()))?;
            if report.dropped > 0 {
                eprintln!(
                    "wrote {} ({} events shed by the bounded sink)",
                    path.display(),
                    report.dropped
                );
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        if opts.counters {
            eprint!("{}", abp_trace::render_table(&counters, &hists));
        }
    }
    Ok(())
}

fn run_command(opts: &Options, ctx: Ctx<'_>) -> Result<(), String> {
    let cfg = &opts.cfg;
    let announce = |what: &str| eprintln!("running {what} with {cfg}");
    match opts.command.as_str() {
        "table1" => println!("{}", figures::table1()),
        "fig1" => {
            announce("fig1");
            emit(
                &figures::fig1_with(cfg, &[1, 2, 3, 4, 6, 8, 10], ctx),
                &opts.out,
            )?;
        }
        "fig4" => {
            announce("fig4");
            emit(&figures::fig4_with(cfg, ctx), &opts.out)?;
            // With a checkpoint in ctx this restores the sweep fig4 just
            // persisted instead of recomputing it.
            let points = density_error::run_sweep(cfg, 0.0, ctx).points;
            if let Some(sat) = density_error::saturation_density(&points, 0.1) {
                println!("saturation beacon density (10% of plateau): {sat:.4} /m^2");
            }
        }
        "fig5" => {
            announce("fig5");
            emit_pair(figures::fig5_with(cfg, ctx), &opts.out)?;
        }
        "fig6" => {
            announce("fig6");
            emit(&figures::fig6_with(cfg, ctx), &opts.out)?;
            for noise in [0.0, 0.5] {
                let points = density_error::run_sweep(cfg, noise, ctx).points;
                if let Some(sat) = density_error::saturation_density(&points, 0.1) {
                    println!("saturation density at noise {noise}: {sat:.4} /m^2");
                }
            }
        }
        "fig7" => {
            announce("fig7");
            emit_pair(
                figures::fig_noise_with(cfg, AlgorithmKind::Random, ctx),
                &opts.out,
            )?;
        }
        "fig8" => {
            announce("fig8");
            emit_pair(
                figures::fig_noise_with(cfg, AlgorithmKind::Max, ctx),
                &opts.out,
            )?;
        }
        "fig9" => {
            announce("fig9");
            emit_pair(
                figures::fig_noise_with(cfg, AlgorithmKind::Grid, ctx),
                &opts.out,
            )?;
        }
        "bound" => {
            announce("bound");
            emit(
                &figures::bound_with(&BoundConfig::default(), ctx),
                &opts.out,
            )?;
        }
        "ablation" => {
            announce("ablation");
            emit(
                &figures::ablation_algorithms_with(cfg, opts.noise, ctx),
                &opts.out,
            )?;
        }
        "noise-styles" => {
            announce("noise-styles");
            let noise = if opts.noise == 0.0 { 0.5 } else { opts.noise };
            emit(
                &figures::ablation_noise_styles_with(cfg, noise, ctx),
                &opts.out,
            )?;
        }
        "robustness" => {
            announce("robustness");
            emit_pair(
                figures::robustness_with(cfg, opts.beacons.unwrap_or(40), ctx),
                &opts.out,
            )?;
        }
        "faults" => {
            announce("faults (beacon death, burst loss, GPS outages)");
            emit_pair(
                figures::faults_with(cfg, opts.beacons.unwrap_or(40), ctx),
                &opts.out,
            )?;
        }
        "solspace" => {
            announce("solspace");
            emit(
                &figures::solution_space_with(cfg, opts.noise, 100, 0.02, ctx),
                &opts.out,
            )?;
        }
        "batch" => {
            announce("batch");
            emit(
                &figures::multi_beacon_with(
                    cfg,
                    opts.noise,
                    opts.beacons.unwrap_or(40),
                    &[1, 2, 4, 8, 12],
                    ctx,
                ),
                &opts.out,
            )?;
        }
        "localizers" => {
            announce("localizers");
            // Point-major surveys: force a coarse step.
            let mut coarse = cfg.clone();
            if coarse.step < 4.0 {
                coarse.step = 4.0;
            }
            emit(&figures::localizers_with(&coarse, 0.05, ctx), &opts.out)?;
        }
        "duel" => {
            announce("duel (paired Grid vs Max)");
            use abp_sim::experiments::improvement::paired_comparison;
            let points =
                paired_comparison(cfg, opts.noise, AlgorithmKind::Grid, AlgorithmKind::Max);
            println!(
                "paired per-field difference in mean-error improvement, Grid - Max (noise {}):",
                opts.noise
            );
            println!(
                "{:>12} {:>26} {:>14}",
                "density", "diff (m, 95% CI)", "verdict"
            );
            for p in &points {
                let verdict = if p.diff.lo() > 0.0 {
                    "Grid wins"
                } else if p.diff.hi() < 0.0 {
                    "Max wins"
                } else {
                    "tie"
                };
                println!(
                    "{:>12.4} {:>26} {:>14}",
                    p.density,
                    p.diff.to_string(),
                    verdict
                );
            }
        }
        "heatmap" => {
            // A worked visual: deploy, render, place one Grid beacon,
            // render again.
            use abp_sim::heatmap_demo;
            println!("{}", heatmap_demo(cfg));
        }
        "multilat" => {
            announce("multilat");
            // Gauss-Newton at every lattice point: force a coarse step
            // unless the user explicitly chose one below the default.
            let mut coarse = cfg.clone();
            if coarse.step < 4.0 {
                coarse.step = 4.0;
            }
            emit(
                &figures::multilateration_with(&coarse, 0.05, ctx),
                &opts.out,
            )?;
        }
        "bench" => {
            let mut bcfg = match opts.preset.as_str() {
                "paper" => abp_bench::BenchConfig::paper_scale(),
                // The smoke scales: `quick` (the default) and `tiny`
                // both run the seconds-scale scenario.
                "quick" | "tiny" => abp_bench::BenchConfig::tiny(),
                other => return Err(format!("bench: unknown preset {other}")),
            };
            if let Some(n) = opts.beacons {
                if n == 0 {
                    return Err("bench: --beacons must be at least 1".into());
                }
                bcfg.beacons = n;
            }
            if let Some(s) = opts.step_override {
                bcfg.step = s;
            }
            if let Some(s) = opts.seed_override {
                bcfg.seed = s;
            }
            if let Some(r) = opts.repeats {
                bcfg.repeats = r;
            }
            // `--threads N` pins the scaling ladder to [1, N] (the
            // config's own sort/dedup folds N == 1 together); 0 keeps
            // the auto powers-of-two sweep up to the detected cores.
            if opts.cfg.threads > 0 {
                bcfg.scale_threads = vec![1, opts.cfg.threads];
            }
            bcfg.skip_brute = opts.skip_brute;
            if bcfg.skip_brute {
                eprintln!(
                    "WARNING: --skip-brute: brute/reference kernels skipped, the \
                     bit-identity gate is DISABLED; timings are for local iteration \
                     only and must not be committed as a baseline"
                );
            }
            eprintln!(
                "running bench ({} scale: {} beacons, step {} m, {} samples/kernel)",
                bcfg.preset, bcfg.beacons, bcfg.step, bcfg.repeats
            );
            let report = abp_bench::run_bench(&bcfg);
            println!(
                "{:<22} {:>14} {:>14} {:>9} {:>10}",
                "kernel", "brute median", "indexed median", "speedup", "identical"
            );
            for k in &report.kernels {
                println!(
                    "{:<22} {:>13.4}s {:>13.4}s {:>8.2}x {:>10}",
                    k.name, k.brute.median_s, k.indexed.median_s, k.speedup, k.identical
                );
            }
            if !bcfg.skip_brute {
                for k in &report.kernels {
                    if k.speedup_ci_straddles_unity() {
                        eprintln!(
                            "WARNING: {}: speedup 95% CI [{:.2}x, {:.2}x] straddles 1.0 — \
                             the measured speedup is indistinguishable from noise at \
                             {} samples; raise --repeats before trusting or committing \
                             this number",
                            k.name, k.speedup_ci95.0, k.speedup_ci95.1, k.indexed.samples
                        );
                    }
                }
            }
            println!(
                "scaling (tiled survey sweep, {} hardware threads detected):",
                report.scaling.max_threads
            );
            println!(
                "{:<8} {:>14} {:>11} {:>10}",
                "threads", "median", "efficiency", "identical"
            );
            for p in &report.scaling.points {
                println!(
                    "{:<8} {:>13.4}s {:>11.2} {:>10}",
                    p.threads, p.timing.median_s, p.efficiency, p.identical
                );
            }
            if report.alloc.counting {
                println!(
                    "steady-state scratch survey: {:.2} allocs/trial, {:.0} bytes/trial",
                    report.alloc.allocs_per_trial, report.alloc.bytes_per_trial
                );
            } else {
                println!(
                    "alloc counting off (build with --features count-allocs to measure \
                     allocs/trial)"
                );
            }
            println!(
                "serve_qps: {:.0} req/s telemetry on (p99 {:.1} us), {:.0} req/s off; \
                 overhead {:+.1}% (95% CI [{:+.1}%, {:+.1}%] over {} pairs{}); \
                 {} scrapes under load (p50 {:.1} us)",
                report.serve.qps,
                report.serve.p99_s * 1e6,
                report.serve_off.qps,
                report.telemetry.median_pct,
                report.telemetry.ci95_lo_pct,
                report.telemetry.ci95_hi_pct,
                report.telemetry.pair_pcts.len(),
                if report.telemetry.ci_straddles_zero() {
                    ", within noise"
                } else {
                    ""
                },
                report.serve.scrapes,
                report.serve.scrape_p50_s * 1e6
            );
            println!(
                "overload: {} clients into {} slots, {} served, {} sheds \
                 ({:.0}% shed rate), accepted p99 {:.1} us ({})",
                report.overload.offered_clients,
                report.overload.max_conns,
                report.overload.requests,
                report.overload.shed_connections,
                report.overload.shed_rate * 100.0,
                report.overload.p99_s * 1e6,
                if report.overload.bounded {
                    "bounded"
                } else {
                    "UNBOUNDED"
                }
            );
            if let Some(dir) = &opts.out {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
                let path = dir.join("BENCH_sweep.json");
                std::fs::write(&path, report.to_json())
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                eprintln!("wrote {}", path.display());
            }
            if !bcfg.skip_brute && !report.all_identical() {
                return Err(
                    "bench: an indexed kernel produced output that differs from brute force".into(),
                );
            }
            if report.alloc.counting && report.alloc.allocs_per_trial > 0.0 {
                return Err(format!(
                    "bench: the reused-scratch survey path allocated in steady state \
                     ({} allocs/trial, expected 0)",
                    report.alloc.allocs_per_trial
                ));
            }
            if !report.overload.bounded {
                return Err(format!(
                    "bench: accepted-request p99 under 2x overload was {:.3} s, above \
                     the {:.2} s bound — shedding is not protecting admitted work",
                    report.overload.p99_s,
                    abp_serve::bench::OVERLOAD_P99_BOUND_S
                ));
            }
            if report.overload.alloc_counting && report.overload.allocs_per_request > 0.0 {
                return Err(format!(
                    "bench: the serving path allocated under overload \
                     ({} allocs/request, expected 0)",
                    report.overload.allocs_per_request
                ));
            }
        }
        "serve" => {
            let scfg = serve_config(opts)?;
            abp_serve::signal::install();
            let daemon =
                abp_serve::daemon::Daemon::start(&scfg).map_err(|e| format!("serve: {e}"))?;
            let snap = daemon.snapshot();
            eprintln!(
                "abp-serve listening on {} ({} beacons, {} m terrain at {} m survey step, \
                 R = {} m, epoch {})",
                daemon.local_addr(),
                snap.field().len(),
                scfg.side,
                scfg.step,
                scfg.nominal_range,
                snap.epoch()
            );
            if let Some(maddr) = daemon.metrics_addr() {
                eprintln!("metrics exposition on http://{maddr}/metrics");
            }
            if scfg.state_path.is_some() {
                eprintln!("state: {}", daemon.state_open().describe());
            }
            if scfg.max_conns > 0 || scfg.deadline.is_some() {
                eprintln!(
                    "defenses: max-conns {}, deadline {}",
                    if scfg.max_conns == 0 {
                        "unlimited".to_string()
                    } else {
                        scfg.max_conns.to_string()
                    },
                    scfg.deadline
                        .map_or("none".to_string(), |d| format!("{d:?}")),
                );
            }
            eprintln!("serving until SIGTERM/SIGINT");
            while !abp_serve::signal::triggered() {
                std::thread::sleep(Duration::from_millis(50));
            }
            let stats = daemon.shutdown();
            eprintln!("{}", stats.summary_line());
            let table = stats.summary_table();
            if !table.is_empty() {
                eprintln!("{table}");
            }
        }
        "serve-bench" => {
            let scfg = serve_config(opts)?;
            let mut load = match opts.preset.as_str() {
                "paper" => abp_serve::bench::LoadConfig::paper_scale(),
                "quick" | "tiny" => abp_serve::bench::LoadConfig::tiny(),
                other => return Err(format!("serve-bench: unknown preset {other}")),
            };
            if let Some(c) = opts.clients {
                load.clients = c;
            }
            if let Some(r) = opts.requests {
                load.requests_per_client = r;
            }
            eprintln!(
                "running serve-bench ({} clients x {} requests, {} beacons, step {} m)",
                load.clients, load.requests_per_client, scfg.beacons, scfg.step
            );
            let report = abp_serve::bench::run_load(&scfg, &load)
                .map_err(|e| format!("serve-bench: {e}"))?;
            println!(
                "requests: {} over {:.3} s ({:.0} req/s, {} clients)",
                report.requests, report.wall_s, report.qps, report.clients
            );
            println!(
                "latency: p50 {:.1} us, p95 {:.1} us, p99 {:.1} us (min {:.1}, max {:.1})",
                report.p50_s * 1e6,
                report.p95_s * 1e6,
                report.p99_s * 1e6,
                report.min_s * 1e6,
                report.max_s * 1e6
            );
            if report.alloc_counting {
                println!(
                    "serving path: {:.2} allocs/request, {:.0} bytes/request over {} \
                     measured requests",
                    report.allocs_per_request, report.bytes_per_request, report.measured_requests
                );
            } else {
                println!(
                    "alloc counting off (build with --features count-allocs to measure \
                     allocs/request)"
                );
            }
            if report.scrapes > 0 {
                println!(
                    "metrics scrapes under load: {} (p50 {:.1} us, max {:.1} us)",
                    report.scrapes,
                    report.scrape_p50_s * 1e6,
                    report.scrape_max_s * 1e6
                );
            }
            println!("served-vs-batch bit-identity: {}", report.identical);
            if !report.identical {
                return Err(
                    "serve-bench: served localization diverged from the batch pipeline".into(),
                );
            }
            if report.alloc_counting && report.allocs_per_request > 0.0 {
                return Err(format!(
                    "serve-bench: the serving path allocated in steady state \
                     ({} allocs/request, expected 0)",
                    report.allocs_per_request
                ));
            }
        }
        "serve-chaos" => {
            eprintln!(
                "running the serve resilience battery (hostile inputs, floods, \
                 slowloris, injected panic, deadlines, warm restart)"
            );
            eprintln!(
                "note: one panic backtrace below is EXPECTED — it is the injected \
                 handler panic being contained"
            );
            let report = abp_serve::chaos::run_chaos().map_err(|e| format!("serve-chaos: {e}"))?;
            for o in &report.outcomes {
                println!("ok {:<22} {}", o.name, o.detail);
            }
            println!(
                "serve-chaos: all {} scenarios passed",
                report.outcomes.len()
            );
        }
        "top" => {
            if opts.port == 0 {
                return Err(
                    "top: --port is required (the port abp serve printed at startup)".into(),
                );
            }
            top::run_top(&top::TopConfig {
                port: opts.port,
                interval: opts.interval,
                polls: opts.polls,
            })?;
        }
        "net" => {
            announce("net (time-domain packet simulation)");
            let axes = net_sim::NetAxes::for_config(cfg);
            if opts.replay_check {
                // The CI determinism gate: one trial of the most contended
                // configuration, run twice, must produce byte-identical
                // event logs before the sweeps are worth trusting.
                for trial in 0..2 {
                    if !net_sim::replay_identical(cfg, &axes, trial) {
                        return Err(format!(
                            "net: replay check FAILED — trial {trial} produced \
                             different event logs on re-run (determinism bug)"
                        ));
                    }
                }
                eprintln!("replay check passed: re-run event logs byte-identical");
            }
            emit(&figures::net_interval_with(cfg, &axes, ctx), &opts.out)?;
            emit(&figures::net_collisions_with(cfg, &axes, ctx), &opts.out)?;
            emit(&figures::net_lifetime_with(cfg, &axes, ctx), &opts.out)?;
        }
        "all" => {
            println!("{}", figures::table1());
            for cmd in [
                "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "bound",
            ] {
                run_command(
                    &Options {
                        command: cmd.to_string(),
                        cfg: cfg.clone(),
                        preset: opts.preset.clone(),
                        noise: opts.noise,
                        beacons: opts.beacons,
                        step_override: opts.step_override,
                        seed_override: opts.seed_override,
                        out: opts.out.clone(),
                        retry: opts.retry,
                        trial_timeout: opts.trial_timeout,
                        progress: opts.progress,
                        metrics_json: opts.metrics_json.clone(),
                        checkpoint: opts.checkpoint.clone(),
                        trace: opts.trace.clone(),
                        trace_format: opts.trace_format,
                        counters: opts.counters,
                        skip_brute: opts.skip_brute,
                        repeats: opts.repeats,
                        port: opts.port,
                        clients: opts.clients,
                        requests: opts.requests,
                        metrics_port: opts.metrics_port,
                        interval: opts.interval,
                        polls: opts.polls,
                        max_conns: opts.max_conns,
                        deadline: opts.deadline,
                        idle_timeout: opts.idle_timeout,
                        state: opts.state.clone(),
                        replay_check: opts.replay_check,
                    },
                    ctx,
                )?;
            }
        }
        other => return Err(format!("unknown command {other}\n{}", usage())),
    }
    Ok(())
}

/// Builds the daemon configuration `serve` and `serve-bench` share:
/// the preset scale plus the generic overrides (`--beacons`, `--step`,
/// `--seed`, `--threads` as worker count *and* survey-rebuild tile
/// count, `--port` as bind port).
fn serve_config(opts: &Options) -> Result<abp_serve::daemon::ServeConfig, String> {
    let mut scfg = match opts.preset.as_str() {
        "paper" => abp_serve::daemon::ServeConfig::paper_scale(),
        "quick" | "tiny" => abp_serve::daemon::ServeConfig::tiny(),
        other => return Err(format!("{}: unknown preset {other}", opts.command)),
    };
    scfg.addr = format!("127.0.0.1:{}", opts.port);
    scfg.workers = opts.cfg.threads;
    scfg.survey_threads = opts.cfg.threads;
    scfg.metrics_addr = opts.metrics_port.map(|p| format!("127.0.0.1:{p}"));
    if let Some(n) = opts.beacons {
        if n == 0 {
            return Err(format!("{}: --beacons must be at least 1", opts.command));
        }
        scfg.beacons = n;
    }
    if let Some(s) = opts.step_override {
        scfg.step = s;
    }
    if let Some(s) = opts.seed_override {
        scfg.seed = s;
    }
    if let Some(n) = opts.max_conns {
        scfg.max_conns = n;
    }
    scfg.deadline = opts.deadline;
    if let Some(t) = opts.idle_timeout {
        scfg.idle_timeout = t;
    }
    scfg.state_path = opts.state.clone();
    Ok(scfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Options, String> {
        parse_args(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_command_and_overrides() {
        let o = parse(&[
            "fig4",
            "--preset",
            "tiny",
            "--trials",
            "5",
            "--step",
            "4",
            "--threads",
            "2",
            "--seed",
            "0xBEEF",
        ])
        .unwrap();
        assert_eq!(o.command, "fig4");
        assert_eq!(o.cfg.trials, 5);
        assert_eq!(o.cfg.step, 4.0);
        assert_eq!(o.cfg.threads, 2);
        assert_eq!(o.cfg.seed, 0xBEEF);
    }

    #[test]
    fn rejects_unknown_option_and_preset() {
        assert!(parse(&["fig4", "--bogus"]).is_err());
        assert!(parse(&["fig4", "--preset", "huge"]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["fig4", "fig5"]).is_err());
    }

    #[test]
    fn default_preset_is_quick() {
        let o = parse(&["table1"]).unwrap();
        assert_eq!(o.cfg.trials, SimConfig::quick().trials);
    }

    #[test]
    fn table1_runs() {
        let o = parse(&["table1", "--preset", "tiny"]).unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn unknown_command_errors() {
        let o = parse(&["fig99", "--preset", "tiny"]).unwrap();
        assert!(run(&o).is_err());
    }

    /// Every figure command runs end-to-end at test scale and, with
    /// `--out`, writes its CSV files.
    #[test]
    fn all_commands_run_and_write_csv() {
        let dir = std::env::temp_dir().join(format!("abp-cli-test-{}", std::process::id()));
        let commands_and_files = [
            ("fig1", vec!["fig1.csv"]),
            ("fig4", vec!["fig4.csv"]),
            ("fig5", vec!["fig5-mean.csv", "fig5-median.csv"]),
            ("fig7", vec!["fig7-mean.csv", "fig7-median.csv"]),
            ("bound", vec!["bound.csv"]),
            ("ablation", vec!["ablation-algorithms.csv"]),
            ("solspace", vec!["solution-space.csv"]),
            ("batch", vec!["multi-beacon.csv"]),
            (
                "robustness",
                vec!["robustness-exploration.csv", "robustness-gps.csv"],
            ),
            (
                "faults",
                vec!["robustness-failure.csv", "robustness-burst.csv"],
            ),
        ];
        for (cmd, files) in &commands_and_files {
            let mut o = parse(&[cmd, "--preset", "tiny", "--trials", "2"]).unwrap();
            o.cfg.beacon_counts = vec![30, 120];
            o.out = Some(dir.clone());
            run(&o).unwrap_or_else(|e| panic!("{cmd} failed: {e}"));
            for f in files {
                let path = dir.join(f);
                let csv = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("{cmd}: missing {}: {e}", path.display()));
                assert!(
                    csv.starts_with("figure,series,x,y,ci95"),
                    "{cmd}: bad CSV header"
                );
                assert!(csv.lines().count() > 1, "{cmd}: empty CSV");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The time-domain command runs end-to-end — replay gate, three
    /// sweeps, three CSVs — at test scale.
    #[test]
    fn net_command_runs_gate_and_writes_csv() {
        let dir = std::env::temp_dir().join(format!("abp-cli-net-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut o = parse(&["net", "--preset", "tiny", "--trials", "2", "--replay-check"]).unwrap();
        assert!(o.replay_check);
        o.cfg.beacon_counts = vec![30, 60];
        o.out = Some(dir.clone());
        run(&o).unwrap();
        for f in ["net-interval.csv", "net-collisions.csv", "net-lifetime.csv"] {
            let path = dir.join(f);
            let csv = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("net: missing {}: {e}", path.display()));
            assert!(
                csv.starts_with("figure,series,x,y,ci95"),
                "net: bad CSV header in {f}"
            );
            assert!(csv.lines().count() > 1, "net: empty CSV {f}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_check_flag_parses_and_defaults_off() {
        assert!(parse(&["net", "--replay-check"]).unwrap().replay_check);
        assert!(!parse(&["net"]).unwrap().replay_check);
    }

    #[test]
    fn heatmap_command_runs() {
        let o = parse(&["heatmap", "--preset", "tiny"]).unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn duel_command_runs() {
        let mut o = parse(&["duel", "--preset", "tiny", "--trials", "4"]).unwrap();
        o.cfg.beacon_counts = vec![40];
        run(&o).unwrap();
    }

    #[test]
    fn beacons_option_parses() {
        let o = parse(&["robustness", "--beacons", "60"]).unwrap();
        assert_eq!(o.beacons, Some(60));
        assert!(parse(&["robustness", "--beacons", "x"]).is_err());
        // Unset by default: commands apply their own defaults.
        let o = parse(&["robustness"]).unwrap();
        assert_eq!(o.beacons, None);
    }

    #[test]
    fn bench_runs_and_writes_schema_valid_json() {
        let dir = std::env::temp_dir().join(format!("abp-bench-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut o = parse(&["bench", "--preset", "tiny", "--seed", "7"]).unwrap();
        o.out = Some(dir.clone());
        run(&o).unwrap();
        let json = std::fs::read_to_string(dir.join("BENCH_sweep.json")).unwrap();
        assert!(json.contains("\"schema\": \"abp-bench-sweep/6\""));
        assert!(json.contains("\"seed\": 7"), "--seed reaches bench: {json}");
        assert!(json.contains("\"name\": \"survey_sweep\""));
        assert!(json.contains("\"name\": \"survey_sweep_scratch\""));
        assert!(json.contains("\"name\": \"candidate_scan_grid\""));
        assert!(json.contains("\"name\": \"candidate_scan_max\""));
        assert!(json.contains("\"identical\": true"));
        assert!(!json.contains("\"identical\": false"));
        assert!(json.contains("\"skip_brute\": false"));
        assert!(json.contains("\"alloc\": {\"counting\": "));
        assert!(json.contains("\"allocs_per_trial\": "));
        assert!(json.contains("\"bytes_per_trial\": "));
        assert!(json.contains("\"serve_qps\": {"));
        assert!(json.contains("\"qps\": "));
        assert!(json.contains("\"p99_s\": "));
        assert!(json.contains("\"allocs_per_request\": "));
        assert!(json.contains("\"scrapes\": "));
        assert!(json.contains("\"qps_metrics_off\": "));
        assert!(json.contains("\"telemetry_overhead\": {\"pairs\": 2, "));
        assert!(json.contains("\"ci95_lo_pct\": "));
        assert!(json.contains("\"overload\": {"));
        assert!(json.contains("\"shed_connections\": "));
        assert!(json.contains("\"bounded\": true"));
        assert!(json.contains("\"scaling\": {"));
        assert!(json.contains("\"max_threads\": "));
        assert!(json.contains("\"efficiency\": "));
        assert!(json.contains("\"speedup_ci95\": ["));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeats_and_threads_flags_reach_bench_config() {
        let o = parse(&["bench", "--repeats", "9", "--threads", "4"]).unwrap();
        assert_eq!(o.repeats, Some(9));
        assert_eq!(o.cfg.threads, 4);
        assert!(parse(&["bench", "--repeats", "0"]).is_err());
        // Off by default: the preset's repeats stand.
        assert_eq!(parse(&["bench"]).unwrap().repeats, None);
    }

    #[test]
    fn skip_brute_flag_parses_and_bench_runs_with_it() {
        let o = parse(&["bench", "--skip-brute", "--preset", "tiny"]).unwrap();
        assert!(o.skip_brute);
        run(&o).unwrap();
        // Off by default.
        assert!(!parse(&["bench", "--preset", "tiny"]).unwrap().skip_brute);
    }

    #[test]
    fn serve_flags_parse_and_are_validated() {
        let o = parse(&[
            "serve-bench",
            "--port",
            "9000",
            "--clients",
            "3",
            "--requests",
            "80",
        ])
        .unwrap();
        assert_eq!(o.port, 9000);
        assert_eq!(o.clients, Some(3));
        assert_eq!(o.requests, Some(80));
        // Defaults: ephemeral port, preset-chosen load shape.
        let o = parse(&["serve"]).unwrap();
        assert_eq!(o.port, 0);
        assert_eq!(o.clients, None);
        assert_eq!(o.requests, None);
        // Zero clients/requests make no sense; a port must fit u16.
        assert!(parse(&["serve-bench", "--clients", "0"]).is_err());
        assert!(parse(&["serve-bench", "--requests", "0"]).is_err());
        assert!(parse(&["serve", "--port", "70000"]).is_err());
        assert!(parse(&["serve", "--port", "x"]).is_err());
    }

    #[test]
    fn top_and_metrics_flags_parse_and_are_validated() {
        let o = parse(&[
            "top",
            "--port",
            "9000",
            "--interval",
            "250ms",
            "--polls",
            "5",
        ])
        .unwrap();
        assert_eq!(o.port, 9000);
        assert_eq!(o.interval, Duration::from_millis(250));
        assert_eq!(o.polls, Some(5));
        // Defaults: 1 s cadence, run until signalled.
        let o = parse(&["top", "--port", "9000"]).unwrap();
        assert_eq!(o.interval, Duration::from_secs(1));
        assert_eq!(o.polls, None);
        assert!(parse(&["top", "--polls", "0"]).is_err());
        assert!(parse(&["top", "--interval", "abc"]).is_err());
        assert!(parse(&["serve", "--metrics-port", "x"]).is_err());
        // top refuses to guess a port.
        let o = parse(&["top"]).unwrap();
        assert!(run_fails_with(&o, "--port is required"));
    }

    #[test]
    fn resilience_flags_parse_and_reach_the_serve_config() {
        let o = parse(&[
            "serve",
            "--preset",
            "tiny",
            "--max-conns",
            "64",
            "--deadline",
            "50ms",
            "--idle-timeout",
            "30s",
            "--state",
            "world.state",
        ])
        .unwrap();
        assert_eq!(o.max_conns, Some(64));
        assert_eq!(o.deadline, Some(Duration::from_millis(50)));
        assert_eq!(o.idle_timeout, Some(Duration::from_secs(30)));
        assert_eq!(o.state.as_deref(), Some(Path::new("world.state")));
        let scfg = serve_config(&o).unwrap();
        assert_eq!(scfg.max_conns, 64);
        assert_eq!(scfg.deadline, Some(Duration::from_millis(50)));
        assert_eq!(scfg.idle_timeout, Duration::from_secs(30));
        assert_eq!(scfg.state_path.as_deref(), Some(Path::new("world.state")));

        // Defaults: every defense off/neutral.
        let o = parse(&["serve", "--preset", "tiny"]).unwrap();
        let scfg = serve_config(&o).unwrap();
        assert_eq!(scfg.max_conns, 0);
        assert_eq!(scfg.deadline, None);
        assert_eq!(scfg.idle_timeout, Duration::from_secs(300));
        assert_eq!(scfg.state_path, None);

        // A zero cap, a bare-number deadline, and a state path under a
        // missing directory are all refused before anything starts.
        assert!(parse(&["serve", "--max-conns", "0"]).is_err());
        assert!(parse(&["serve", "--deadline", "5"]).is_err());
        assert!(parse(&["serve", "--idle-timeout", "-3s"]).is_err());
        let o = parse(&["serve", "--state", "/no/such/dir/world.state"]).unwrap();
        assert!(run_fails_with(&o, "--state"));
    }

    fn run_fails_with(o: &Options, needle: &str) -> bool {
        match run(o) {
            Err(e) => e.contains(needle),
            Ok(()) => false,
        }
    }

    #[test]
    fn metrics_port_reaches_the_serve_config() {
        let o = parse(&["serve", "--preset", "tiny", "--metrics-port", "9100"]).unwrap();
        let scfg = serve_config(&o).unwrap();
        assert_eq!(scfg.metrics_addr.as_deref(), Some("127.0.0.1:9100"));
        // Absent by default: no listener thread.
        let o = parse(&["serve", "--preset", "tiny"]).unwrap();
        assert_eq!(serve_config(&o).unwrap().metrics_addr, None);
    }

    #[test]
    fn serve_config_applies_preset_and_overrides() {
        let o = parse(&[
            "serve",
            "--preset",
            "tiny",
            "--port",
            "7777",
            "--beacons",
            "9",
            "--step",
            "5",
            "--seed",
            "0xA",
            "--threads",
            "3",
        ])
        .unwrap();
        let scfg = serve_config(&o).unwrap();
        assert_eq!(scfg.addr, "127.0.0.1:7777");
        assert_eq!(scfg.beacons, 9);
        assert_eq!(scfg.step, 5.0);
        assert_eq!(scfg.seed, 0xA);
        assert_eq!(scfg.workers, 3);
        let err = {
            let mut bad = parse(&["serve", "--beacons", "1"]).unwrap();
            bad.beacons = Some(0);
            serve_config(&bad).unwrap_err()
        };
        assert!(err.contains("--beacons"), "got: {err}");
    }

    /// The daemon command itself: with the shutdown flag pre-triggered
    /// the serve loop starts, binds, and runs its orderly shutdown
    /// immediately — the full code path minus the indefinite wait.
    #[test]
    fn serve_command_starts_and_shuts_down() {
        abp_serve::signal::trigger();
        let o = parse(&["serve", "--preset", "tiny", "--beacons", "5"]).unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn serve_bench_runs_tiny_load() {
        let o = parse(&[
            "serve-bench",
            "--preset",
            "tiny",
            "--clients",
            "2",
            "--requests",
            "50",
        ])
        .unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn bench_rejects_zero_beacons() {
        let o = parse(&["bench", "--preset", "tiny", "--beacons", "0"]).unwrap();
        let err = run(&o).unwrap_err();
        assert!(err.contains("--beacons"), "got: {err}");
    }

    #[test]
    fn rejects_zero_trials() {
        let err = parse(&["fig4", "--trials", "0"]).unwrap_err();
        assert!(err.contains("--trials"), "got: {err}");
        assert!(!err.contains('\n'), "must be a one-line error: {err:?}");
    }

    #[test]
    fn rejects_bad_step() {
        for bad in ["0", "-1.5", "nan", "inf"] {
            let err = parse(&["fig4", "--step", bad])
                .map(|_| ())
                .expect_err(&format!("--step {bad} must be rejected"));
            assert!(err.contains("--step"), "got: {err}");
            assert!(!err.contains('\n'), "must be a one-line error: {err:?}");
        }
    }

    #[test]
    fn rejects_noise_outside_unit_interval() {
        for bad in ["1", "1.0", "1.5", "-0.1", "nan", "inf"] {
            let err = parse(&["ablation", "--noise", bad])
                .map(|_| ())
                .expect_err(&format!("--noise {bad} must be rejected"));
            assert!(err.contains("--noise"), "got: {err}");
            assert!(!err.contains('\n'), "must be a one-line error: {err:?}");
        }
        // The contract is half-open [0, 1) — `PerBeaconNoise` panics at a
        // noise factor of 1 (effective ranges reach 0), so the boundary
        // rejection must come with that rationale, not silently.
        let err = parse(&["ablation", "--noise", "1.0"]).unwrap_err();
        assert!(err.contains("[0, 1)"), "states the range: {err}");
        assert!(err.contains("range"), "states the rationale: {err}");
        // The boundary values that are fine.
        assert!(parse(&["ablation", "--noise", "0"]).is_ok());
        assert!(parse(&["ablation", "--noise", "0.999"]).is_ok());
    }

    #[test]
    fn rejects_malformed_seed() {
        let err = parse(&["fig4", "--seed", "0xZZ"]).unwrap_err();
        assert!(err.contains("--seed"), "got: {err}");
        assert!(!err.contains('\n'), "must be a one-line error: {err:?}");
        assert!(parse(&["fig4", "--seed", "dead_beef"]).is_err());
    }

    #[test]
    fn retry_and_trial_timeout_flags_parse() {
        let o = parse(&["faults", "--retry", "3", "--trial-timeout", "30s"]).unwrap();
        assert_eq!(o.retry, 3);
        assert_eq!(o.trial_timeout, Some(Duration::from_secs(30)));
        let o = parse(&["fig4", "--trial-timeout", "500ms"]).unwrap();
        assert_eq!(o.trial_timeout, Some(Duration::from_millis(500)));
        let o = parse(&["fig4", "--trial-timeout", "2.5s"]).unwrap();
        assert_eq!(o.trial_timeout, Some(Duration::from_millis(2500)));
        // Defaults: supervision off.
        let o = parse(&["fig4"]).unwrap();
        assert_eq!(o.retry, 0);
        assert_eq!(o.trial_timeout, None);
    }

    #[test]
    fn rejects_zero_retry() {
        let err = parse(&["fig4", "--retry", "0"]).unwrap_err();
        assert!(err.contains("--retry"), "got: {err}");
        assert!(!err.contains('\n'), "must be a one-line error: {err:?}");
        assert!(parse(&["fig4", "--retry", "-1"]).is_err());
        assert!(parse(&["fig4", "--retry", "two"]).is_err());
        assert!(parse(&["fig4", "--retry"]).is_err(), "missing value");
    }

    #[test]
    fn rejects_nonsense_trial_timeout() {
        for bad in [
            "0s", "0ms", "-5s", "10", "nan s", "nans", "infs", "fast", "1e300s",
        ] {
            let err = parse(&["fig4", "--trial-timeout", bad])
                .map(|_| ())
                .expect_err(&format!("--trial-timeout {bad} must be rejected"));
            assert!(err.contains("--trial-timeout"), "got: {err}");
            assert!(!err.contains('\n'), "must be a one-line error: {err:?}");
        }
    }

    /// A healthy run is bit-identical with and without the supervised
    /// engine: attempt 0 re-derives exactly the plain trial seed, so
    /// turning on `--retry`/`--trial-timeout` cannot move any number.
    #[test]
    fn supervised_healthy_run_matches_plain_csv() {
        let dir = std::env::temp_dir().join(format!("abp-cli-retry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for (sub, extra) in [("plain", &[][..]), ("supervised", &["--retry", "2"][..])] {
            let mut words = vec!["fig4", "--preset", "tiny", "--trials", "2"];
            words.extend_from_slice(extra);
            let mut o = parse(&words).unwrap();
            o.cfg.beacon_counts = vec![30, 120];
            o.out = Some(dir.join(sub));
            run(&o).unwrap();
        }
        let plain = std::fs::read_to_string(dir.join("plain/fig4.csv")).unwrap();
        let supervised = std::fs::read_to_string(dir.join("supervised/fig4.csv")).unwrap();
        assert_eq!(plain, supervised, "retry policy changed a healthy run");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_json_is_written_and_valid() {
        let path = std::env::temp_dir().join(format!("abp-metrics-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut o = parse(&["fig4", "--preset", "tiny", "--trials", "2"]).unwrap();
        o.cfg.beacon_counts = vec![30, 120];
        o.metrics_json = Some(path.clone());
        run(&o).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        // Structural checks on the documented schema.
        assert!(json.trim_start().starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"threads\":"));
        assert!(json.contains("\"total_wall_seconds\":"));
        assert!(json.contains("\"figure\": \"fig4\""));
        assert!(json.contains("\"trials_per_sec\":"));
        assert!(json.contains("\"worker_utilization\":"));
        // fig4 runs 2 densities × 2 trials = 4 observed trials.
        assert!(json.contains("\"trials\": 4"), "got: {json}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trace_flags_parse() {
        let o = parse(&[
            "fig4",
            "--trace",
            "t.json",
            "--trace-format",
            "chrome",
            "--counters",
        ])
        .unwrap();
        assert_eq!(o.trace.as_deref(), Some(Path::new("t.json")));
        assert_eq!(o.trace_format, TraceFormat::Chrome);
        assert!(o.counters);
        // Defaults: JSONL, counters off.
        let o = parse(&["fig4", "--trace", "t.jsonl"]).unwrap();
        assert_eq!(o.trace_format, TraceFormat::Jsonl);
        assert!(!o.counters);
        let err = parse(&["fig4", "--trace-format", "xml"]).unwrap_err();
        assert!(err.contains("--trace-format"), "got: {err}");
        assert!(err.contains("xml"), "echoes the bad value: {err}");
        assert!(!err.contains('\n'), "must be a one-line error: {err:?}");
    }

    /// Every output flag is validated before any computation starts: a
    /// missing parent directory or a directory-instead-of-file path is a
    /// one-line error naming the flag.
    #[test]
    fn output_paths_are_validated_up_front() {
        let missing = PathBuf::from("/nonexistent-abp-dir/out.json");
        type SetPath = fn(&mut Options, PathBuf);
        let cases: [(&str, SetPath); 3] = [
            ("--metrics-json", |o, p| o.metrics_json = Some(p)),
            ("--checkpoint", |o, p| o.checkpoint = Some(p)),
            ("--trace", |o, p| o.trace = Some(p)),
        ];
        for (flag, set) in cases {
            let mut o = parse(&["table1", "--preset", "tiny"]).unwrap();
            set(&mut o, missing.clone());
            let err = run(&o).unwrap_err();
            assert!(err.contains(flag), "{flag}: got: {err}");
            assert!(err.contains("does not exist"), "{flag}: got: {err}");
            assert!(!err.contains('\n'), "{flag}: one-line error: {err:?}");
        }
        // A directory is rejected too.
        let mut o = parse(&["table1", "--preset", "tiny"]).unwrap();
        o.trace = Some(std::env::temp_dir());
        let err = run(&o).unwrap_err();
        assert!(err.contains("is a directory"), "got: {err}");
    }

    /// Traced runs flip the process-global gate and share one sink;
    /// serialize them so they cannot drain each other's events.
    static TRACE_TEST_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn traced_run_writes_parseable_jsonl() {
        let _g = TRACE_TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let path = std::env::temp_dir().join(format!("abp-trace-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut o = parse(&["fig4", "--preset", "tiny", "--trials", "2"]).unwrap();
        o.cfg.beacon_counts = vec![30, 120];
        o.trace = Some(path.clone());
        run(&o).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert!(lines.len() > 1, "trace must hold events: {body}");
        for line in &lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "not a JSON object line: {line}"
            );
        }
        assert!(lines[0].contains("\"kind\":\"meta\""), "got: {}", lines[0]);
        assert!(body.contains("\"kind\":\"span\""), "spans recorded");
        assert!(body.contains("trial.density_error"), "trial span named");
        assert!(
            body.contains("radio.connectivity_sweep"),
            "radio span named"
        );
        assert!(body.contains("links_tested"), "counters exported");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chrome_trace_has_worker_tracks_and_named_spans() {
        let _g = TRACE_TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let path = std::env::temp_dir().join(format!("abp-trace-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut o = parse(&["fig5", "--preset", "tiny", "--trials", "2"]).unwrap();
        o.cfg.beacon_counts = vec![30];
        o.trace = Some(path.clone());
        o.trace_format = TraceFormat::Chrome;
        o.counters = true;
        run(&o).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.trim_start().starts_with('{'));
        assert!(body.trim_end().ends_with('}'));
        assert!(body.contains("\"traceEvents\""));
        assert!(body.contains("\"thread_name\""), "per-worker tracks named");
        assert!(body.contains("\"ph\":\"X\""), "complete events present");
        // Named spans for the radio, localizer, and placement phases.
        assert!(body.contains("radio.connectivity_sweep"), "got: {body}");
        assert!(body.contains("localize.derive_errors"));
        assert!(body.contains("placement.grid"));
        assert!(body.contains("trial.improvement"));
        // The hot-path counters observed real work during the run.
        let (counters, _hists) = abp_trace::counters_snapshot();
        let total = |name: &str| {
            counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.total)
        };
        assert!(total("links_tested") > 0, "links_tested counted");
        assert!(
            total("candidates_scanned") > 0,
            "candidates_scanned counted"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("abp-cli-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = dir.join("sweep.ckpt");
        let parse_fig6 = || {
            let mut o = parse(&["fig6", "--preset", "tiny", "--trials", "2"]).unwrap();
            o.cfg.beacon_counts = vec![30, 120];
            o
        };
        // Uninterrupted baseline.
        let mut base = parse_fig6();
        base.out = Some(dir.join("base"));
        run(&base).unwrap();
        // First checkpointed run populates the store; a rerun restores
        // every sweep from it. Both must match the baseline bit for bit.
        for out in ["first", "resumed"] {
            let mut o = parse_fig6();
            o.out = Some(dir.join(out));
            o.checkpoint = Some(ckpt.clone());
            run(&o).unwrap();
        }
        let baseline = std::fs::read_to_string(dir.join("base/fig6.csv")).unwrap();
        for out in ["first", "resumed"] {
            let csv = std::fs::read_to_string(dir.join(out).join("fig6.csv")).unwrap();
            assert_eq!(csv, baseline, "{out} run diverged from baseline");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
