//! `abp top` — a live terminal dashboard over the daemon's Stats wire
//! opcode.
//!
//! Polls opcode 4 (stats) on one persistent connection at a fixed
//! interval and renders the *differences* between consecutive snapshots:
//! per-opcode request rates and interval latency quantiles (via
//! [`abp_trace::histogram_interval`]), live gauges (epoch, connections,
//! pending rebuilds), and the daemon's slow-request flight recorder.
//!
//! On a TTY the dashboard redraws in place (ANSI clear-home); when
//! stdout is a pipe it degrades to one summary line per poll, so
//! `abp top | tee` and CI logs stay readable.
//!
//! The dashboard outlives the daemon: when a poll's socket dies (the
//! daemon restarted, was SIGKILLed, or is not up yet), `top` retries
//! the connection with capped exponential backoff — 250 ms doubling to
//! a 4 s ceiling, the same discipline the sweep runner uses between
//! trial retries — and resets its rate baseline so the first interval
//! after a reconnect never shows garbage deltas. Only
//! [`RECONNECT_ATTEMPTS`] *consecutive* failures end the run.

use abp_serve::metrics::{OpClass, ALL_CLASSES};
use abp_serve::protocol::{self as wire, StatsReply};
use abp_trace::{histogram_interval, HistogramSnapshot};
use std::fmt::Write as _;
use std::io::{IsTerminal, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What to poll and for how long.
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// The daemon's request port (`abp serve --port`).
    pub port: u16,
    /// Delay between polls.
    pub interval: Duration,
    /// Render this many updates then exit; `None` runs until
    /// SIGINT/SIGTERM.
    pub polls: Option<u64>,
}

/// First pause after a lost connection; doubles per consecutive
/// failure (matching the sweep runner's retry discipline).
const RECONNECT_BASE: Duration = Duration::from_millis(250);
/// Backoff ceiling between reconnect attempts.
const RECONNECT_CAP: Duration = Duration::from_secs(4);
/// Consecutive failed connection attempts before `top` gives the
/// daemon up for dead.
pub const RECONNECT_ATTEMPTS: u32 = 6;

/// The pause before reconnect attempt `attempt` (1-based):
/// 250 ms · 2^(attempt−1), capped at [`RECONNECT_CAP`].
fn backoff_before(attempt: u32) -> Duration {
    RECONNECT_BASE
        .saturating_mul(1u32 << (attempt - 1).min(8))
        .min(RECONNECT_CAP)
}

/// Connects with capped exponential backoff. `Ok(None)` means a
/// termination signal arrived mid-backoff; `Err` means the budget of
/// consecutive attempts ran out.
fn connect_with_backoff(addr: &str, until_signal: bool) -> Result<Option<TcpStream>, String> {
    let mut last_err = String::new();
    for attempt in 1..=RECONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(conn) => {
                let _ = conn.set_nodelay(true);
                return Ok(Some(conn));
            }
            Err(e) => last_err = e.to_string(),
        }
        if until_signal && abp_serve::signal::triggered() {
            return Ok(None);
        }
        if attempt < RECONNECT_ATTEMPTS {
            std::thread::sleep(backoff_before(attempt));
        }
    }
    Err(format!(
        "top: connect {addr}: {last_err} ({RECONNECT_ATTEMPTS} attempts)"
    ))
}

/// One stats poll on the live connection.
enum Poll {
    /// A decoded snapshot.
    Stats(Box<StatsReply>),
    /// The socket died (daemon restart or shutdown) — reconnect.
    Lost(String),
}

fn poll_once(conn: &mut TcpStream, out: &mut Vec<u8>, frame: &mut Vec<u8>) -> Result<Poll, String> {
    wire::encode_stats_request(out);
    if let Err(e) = conn.write_all(out) {
        return Ok(Poll::Lost(format!("send: {e}")));
    }
    match wire::read_frame(conn, frame) {
        Ok(true) => {}
        Ok(false) => return Ok(Poll::Lost("the daemon hung up".into())),
        Err(e) => return Ok(Poll::Lost(format!("read: {e}"))),
    }
    // A frame that arrives but does not decode is a protocol breach,
    // not a restart — that stays fatal.
    let stats = wire::decode_stats_response(frame)
        .map_err(|s| format!("top: bad stats response: {s:?}"))?;
    Ok(Poll::Stats(Box::new(stats)))
}

/// Runs the dashboard loop. Returns when the poll budget is exhausted,
/// a termination signal arrives, or the daemon stays unreachable
/// through a full backoff ladder.
pub fn run_top(cfg: &TopConfig) -> Result<(), String> {
    let addr = format!("127.0.0.1:{}", cfg.port);
    let tty = std::io::stdout().is_terminal();
    // Bounded runs (`--polls N`) exit on their own; only unbounded runs
    // trade the default Ctrl-C kill for an orderly loop exit. (The flag
    // is process-global and sticky, so bounded runs never consult it.)
    let until_signal = cfg.polls.is_none();
    if until_signal {
        abp_serve::signal::install();
    }

    let Some(mut conn) = connect_with_backoff(&addr, until_signal)? else {
        return Ok(());
    };
    let mut out = Vec::new();
    let mut frame = Vec::new();
    let mut prev: Option<(Instant, StatsReply)> = None;
    let mut rendered = 0u64;
    loop {
        let now = Instant::now();
        let stats = match poll_once(&mut conn, &mut out, &mut frame)? {
            Poll::Stats(stats) => *stats,
            Poll::Lost(reason) => {
                eprintln!("top: lost the daemon ({reason}); reconnecting");
                // The old baseline belongs to the dead process; deltas
                // across a restart would render as negative-rate noise.
                prev = None;
                match connect_with_backoff(&addr, until_signal)? {
                    Some(fresh) => conn = fresh,
                    None => return Ok(()),
                }
                continue;
            }
        };

        if let Some((t0, before)) = &prev {
            let elapsed = now.duration_since(*t0).as_secs_f64().max(1e-9);
            if tty {
                // Clear screen, cursor home, redraw.
                print!(
                    "\x1b[2J\x1b[H{}",
                    render_dashboard(&addr, before, &stats, elapsed)
                );
            } else {
                println!("{}", render_line(before, &stats, elapsed));
            }
            let _ = std::io::stdout().flush();
            rendered += 1;
            if cfg.polls.is_some_and(|n| rendered >= n) {
                return Ok(());
            }
        }
        prev = Some((now, stats));
        if until_signal && abp_serve::signal::triggered() {
            return Ok(());
        }
        std::thread::sleep(cfg.interval);
        if until_signal && abp_serve::signal::triggered() {
            return Ok(());
        }
    }
}

/// The count delta and interval histogram for class `i` between two
/// snapshots (class lists shorter than `i` count as empty).
fn class_interval(
    before: &StatsReply,
    after: &StatsReply,
    i: usize,
) -> (u64, Option<HistogramSnapshot>) {
    let name = ALL_CLASSES[i].metric_name();
    let (Some(b), Some(a)) = (before.classes.get(i), after.classes.get(i)) else {
        return (0, None);
    };
    let delta = a.count.saturating_sub(b.count);
    (
        delta,
        Some(histogram_interval(&b.histogram(name), &a.histogram(name))),
    )
}

/// Element-wise merge of interval histograms into one all-opcodes view.
fn merge_intervals(parts: &[HistogramSnapshot]) -> HistogramSnapshot {
    let mut total = HistogramSnapshot {
        name: "all",
        count: 0,
        sum_ns: 0,
        min_ns: u64::MAX,
        max_ns: 0,
        buckets: vec![0; abp_trace::HIST_BUCKETS],
    };
    for h in parts {
        if h.count == 0 {
            continue;
        }
        total.count += h.count;
        total.sum_ns += h.sum_ns;
        total.min_ns = total.min_ns.min(h.min_ns);
        total.max_ns = total.max_ns.max(h.max_ns);
        for (t, &b) in total.buckets.iter_mut().zip(h.buckets.iter()) {
            *t += b;
        }
    }
    if total.count == 0 {
        total.min_ns = 0;
    }
    total
}

/// Renders a nanosecond latency with a readable unit.
fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", v / 1e6)
    } else {
        format!("{:.2}s", v / 1e9)
    }
}

fn quantile_cell(hist: &Option<HistogramSnapshot>, q: f64) -> String {
    hist.as_ref()
        .and_then(|h| h.quantile_ns(q))
        .map_or_else(|| "-".into(), fmt_ns)
}

/// The full-screen dashboard body.
fn render_dashboard(addr: &str, before: &StatsReply, after: &StatsReply, elapsed: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "abp top — {addr}    epoch {}    up {:.1}s    conns {} live / {} total",
        after.epoch,
        after.uptime_ns as f64 * 1e-9,
        after.connections_live,
        after.connections_total,
    );
    let _ = writeln!(
        s,
        "rebuilds {} done, {} pending, last {}    flight drops {}",
        after.rebuilds_total,
        after.rebuilds_pending,
        if after.last_rebuild_ns == 0 {
            "-".into()
        } else {
            fmt_ns(after.last_rebuild_ns)
        },
        after.flight_dropped,
    );
    s.push('\n');
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "opcode", "total", "qps", "p50", "p95", "p99"
    );
    let mut intervals = Vec::new();
    for (i, &class) in ALL_CLASSES.iter().enumerate() {
        let total = after.classes.get(i).map_or(0, |c| c.count);
        let (delta, hist) = class_interval(before, after, i);
        if let Some(h) = &hist {
            intervals.push(h.clone());
        }
        if total == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>9.1} {:>9} {:>9} {:>9}",
            class.name(),
            total,
            delta as f64 / elapsed,
            quantile_cell(&hist, 0.50),
            quantile_cell(&hist, 0.95),
            quantile_cell(&hist, 0.99),
        );
    }
    let all = merge_intervals(&intervals);
    let all_hist = Some(all.clone());
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>9.1} {:>9} {:>9} {:>9}",
        "all",
        after.requests_total(),
        all.count as f64 / elapsed,
        quantile_cell(&all_hist, 0.50),
        quantile_cell(&all_hist, 0.95),
        quantile_cell(&all_hist, 0.99),
    );
    if !after.flight.is_empty() {
        s.push('\n');
        let _ = writeln!(s, "slowest requests (flight recorder):");
        for e in after.flight.iter().take(8) {
            let name = OpClass::from_index(e.class as usize).map_or("?", |c| c.name());
            let _ = writeln!(
                s,
                "  {:>9}  {:<10} heard={:<4} epoch={}",
                fmt_ns(e.latency_ns),
                name,
                e.heard,
                e.epoch,
            );
        }
    }
    s
}

/// The one-line-per-poll degradation for non-TTY stdout.
fn render_line(before: &StatsReply, after: &StatsReply, elapsed: f64) -> String {
    let intervals: Vec<HistogramSnapshot> = (0..ALL_CLASSES.len())
        .filter_map(|i| class_interval(before, after, i).1)
        .collect();
    let all = merge_intervals(&intervals);
    let hist = Some(all.clone());
    format!(
        "epoch {} conns {} qps {:.1} p50 {} p95 {} p99 {} pending {} drops {}",
        after.epoch,
        after.connections_live,
        all.count as f64 / elapsed,
        quantile_cell(&hist, 0.50),
        quantile_cell(&hist, 0.95),
        quantile_cell(&hist, 0.99),
        after.rebuilds_pending,
        after.flight_dropped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_serve::daemon::{Daemon, ServeConfig};

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(950), "950ns");
        assert_eq!(fmt_ns(12_300), "12.3us");
        assert_eq!(fmt_ns(4_560_000), "4.56ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }

    #[test]
    fn merge_intervals_sums_counts_and_buckets() {
        let mk = |count: u64, bucket: usize| {
            let mut buckets = vec![0u64; abp_trace::HIST_BUCKETS];
            buckets[bucket] = count;
            HistogramSnapshot {
                name: "x",
                count,
                sum_ns: count * 100,
                min_ns: 50,
                max_ns: 200,
                buckets,
            }
        };
        let merged = merge_intervals(&[mk(3, 5), mk(2, 7)]);
        assert_eq!(merged.count, 5);
        assert_eq!(merged.sum_ns, 500);
        assert_eq!(merged.buckets[5], 3);
        assert_eq!(merged.buckets[7], 2);
        assert!(merged.quantile_ns(0.5).is_some());
        let empty = merge_intervals(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.min_ns, 0);
    }

    #[test]
    fn backoff_ladder_doubles_and_caps() {
        assert_eq!(backoff_before(1), Duration::from_millis(250));
        assert_eq!(backoff_before(2), Duration::from_millis(500));
        assert_eq!(backoff_before(3), Duration::from_millis(1000));
        assert_eq!(backoff_before(5), Duration::from_secs(4), "capped");
        assert_eq!(
            backoff_before(30),
            Duration::from_secs(4),
            "cap holds far out"
        );
    }

    /// `top` must survive both a daemon that is not up yet (initial
    /// backoff) and one that dies mid-poll (reconnect + baseline
    /// reset). A scripted stand-in daemon makes the restart
    /// deterministic: it binds late, answers the first connection one
    /// poll then drops it, and serves the second connection to EOF —
    /// all on one listening socket, so no port is ever rebound.
    #[test]
    fn top_reconnects_through_a_daemon_restart() {
        use std::net::TcpListener;

        // Discover a free port, then release it for the late binder.
        // (The discovery socket never accepts, so no TIME_WAIT lingers.)
        let port = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();

        let fake = std::thread::spawn(move || {
            let answer = |conn: &mut TcpStream, budget: Option<usize>| {
                let metrics = abp_serve::metrics::ServeMetrics::new();
                let mut frame = Vec::new();
                let mut reply = Vec::new();
                let mut answered = 0usize;
                while budget.is_none_or(|n| answered < n) {
                    match wire::read_frame(conn, &mut frame) {
                        Ok(true) => {}
                        _ => return answered,
                    }
                    wire::encode_stats_response(
                        &mut reply,
                        &wire::StatsView {
                            epoch: 1,
                            connections_total: 1,
                            metrics: &metrics,
                            flight: &[],
                        },
                    );
                    if conn.write_all(&reply).is_err() {
                        return answered;
                    }
                    answered += 1;
                }
                answered
            };
            // Bind late: top's first connect attempts must ride the
            // backoff ladder to reach us.
            std::thread::sleep(Duration::from_millis(400));
            let listener = TcpListener::bind(("127.0.0.1", port)).unwrap();
            // First life: one poll, then die mid-session.
            let (mut conn, _) = listener.accept().unwrap();
            assert_eq!(answer(&mut conn, Some(1)), 1);
            drop(conn);
            // Second life: serve until top is done and hangs up.
            let (mut conn, _) = listener.accept().unwrap();
            assert!(
                answer(&mut conn, None) >= 2,
                "reconnected top must poll again"
            );
        });

        run_top(&TopConfig {
            port,
            interval: Duration::from_millis(20),
            polls: Some(2),
        })
        .unwrap();
        fake.join().unwrap();
    }

    /// End-to-end: a tiny daemon under a little traffic, two dashboard
    /// polls in line mode (tests run without a TTY), clean exit.
    #[test]
    fn top_polls_a_live_daemon_and_exits() {
        let daemon = Daemon::start(&ServeConfig::tiny()).unwrap();
        let port = daemon.local_addr().port();
        // Background traffic so the rates are non-trivial.
        let addr = daemon.local_addr();
        let driver = std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).unwrap();
            let mut out = Vec::new();
            let mut frame = Vec::new();
            for _ in 0..50 {
                wire::encode_info_request(&mut out);
                conn.write_all(&out).unwrap();
                wire::read_frame(&mut conn, &mut frame).unwrap();
            }
        });
        run_top(&TopConfig {
            port,
            interval: Duration::from_millis(20),
            polls: Some(2),
        })
        .unwrap();
        driver.join().unwrap();
        let stats = daemon.shutdown();
        assert!(stats.stats >= 3, "top polled at least thrice");
    }
}
