//! RAII wall-clock spans and per-thread track identity.

use crate::sink::{self, Event};
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The trace epoch: all timestamps are nanoseconds since the first
/// instrumented event of the process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

static NEXT_TRACK: AtomicU32 = AtomicU32::new(0);
static TRACK_NAMES: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());

thread_local! {
    static TRACK: Cell<u32> = const { Cell::new(u32::MAX) };
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// The calling thread's stable track id (assigned on first use). Tracks
/// become per-thread rows in the Chrome trace export.
pub fn track_id() -> u32 {
    TRACK.with(|cell| {
        let mut t = cell.get();
        if t == u32::MAX {
            t = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
            cell.set(t);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("worker-{t}"));
            if let Ok(mut names) = TRACK_NAMES.lock() {
                names.push((t, name));
            }
        }
        t
    })
}

/// Every `(track, thread name)` pair assigned so far.
pub(crate) fn track_names() -> Vec<(u32, String)> {
    TRACK_NAMES.lock().map(|v| v.clone()).unwrap_or_default()
}

/// An open span; created by [`span!`](crate::span!), closed (and emitted)
/// on drop.
///
/// While instrumentation is disabled, or while no sink is installed,
/// entering is a relaxed load plus a branch and dropping is a branch.
#[must_use = "a span measures until it is dropped; bind it with `let _span = ...`"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    tid: u32,
    depth: u16,
    active: bool,
    start_alloc: crate::AllocSnapshot,
}

impl SpanGuard {
    /// Opens a span named `name` on the calling thread's track.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::enabled() || !sink::installed() {
            return SpanGuard {
                name,
                start_ns: 0,
                tid: 0,
                depth: 0,
                active: false,
                start_alloc: crate::AllocSnapshot::default(),
            };
        }
        let tid = track_id();
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        });
        SpanGuard {
            name,
            start_ns: now_ns(),
            tid,
            depth,
            active: true,
            // Free in default builds (const zeros); one TLS read per
            // live span under `count-allocs`.
            start_alloc: crate::thread_snapshot(),
        }
    }

    /// Whether this guard is live (instrumentation was on at entry).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let end = now_ns();
        let alloc = crate::thread_snapshot().delta_since(self.start_alloc);
        sink::emit(Event::Span {
            name: self.name,
            tid: self.tid,
            depth: self.depth,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            allocs: alloc.allocs,
            alloc_bytes: alloc.bytes,
        });
    }
}

/// Emits a zero-duration instant event (used by the probe bridge for
/// figure/sweep/trial lifecycle marks). A no-op while disabled or
/// sink-less.
pub fn instant(name: impl Into<String>, category: &'static str) {
    if !crate::enabled() || !sink::installed() {
        return;
    }
    sink::emit(Event::Instant {
        name: name.into(),
        category,
        tid: track_id(),
        ts_ns: now_ns(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn inactive_without_gate() {
        let _g = test_support::lock();
        crate::set_enabled(false);
        let s = SpanGuard::enter("closed");
        assert!(!s.is_active());
    }

    #[test]
    fn track_ids_are_stable_per_thread_and_distinct() {
        let a = track_id();
        assert_eq!(a, track_id(), "same thread, same track");
        let b = std::thread::spawn(track_id).join().unwrap();
        assert_ne!(a, b, "different threads get different tracks");
        let names = track_names();
        assert!(names.iter().any(|(t, _)| *t == a));
        assert!(names.iter().any(|(t, _)| *t == b));
    }
}
