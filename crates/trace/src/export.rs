//! Renders a drained run as JSONL or Chrome Trace Event JSON.
//!
//! Both exporters hand-serialize (the crate is dependency-free); strings
//! are escaped per RFC 8259 so the output always parses.
//!
//! * [`to_jsonl`] — one self-describing JSON object per line: a `meta`
//!   header (drop count, thread table), every span/instant event, then
//!   every counter and histogram snapshot. Good for `grep`/`jq` pipelines.
//! * [`to_chrome_json`] — the [Trace Event Format] consumed by
//!   `chrome://tracing` and Perfetto: `"M"` thread-name metadata rows,
//!   `"X"` complete events (µs timestamps) for spans, `"i"` instants.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::metrics::{CounterSnapshot, HistogramSnapshot};
use crate::sink::{Event, TraceReport};
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the run as JSONL: one JSON object per line, every line
/// self-describing via a `"kind"` field (`meta`, `span`, `instant`,
/// `counter`, `histogram`).
pub fn to_jsonl(
    report: &TraceReport,
    counters: &[CounterSnapshot],
    hists: &[HistogramSnapshot],
) -> String {
    let mut out = String::new();
    let mut threads = String::new();
    for (i, (tid, name)) in report.threads.iter().enumerate() {
        if i > 0 {
            threads.push(',');
        }
        let _ = write!(threads, "{{\"tid\":{tid},\"name\":\"{}\"}}", escape(name));
    }
    let _ = writeln!(
        out,
        "{{\"kind\":\"meta\",\"events\":{},\"dropped\":{},\"threads\":[{threads}]}}",
        report.events.len(),
        report.dropped,
    );
    for ev in &report.events {
        match ev {
            Event::Span {
                name,
                tid,
                depth,
                start_ns,
                dur_ns,
                allocs,
                alloc_bytes,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"span\",\"name\":\"{}\",\"tid\":{tid},\"depth\":{depth},\"start_ns\":{start_ns},\"dur_ns\":{dur_ns},\"allocs\":{allocs},\"alloc_bytes\":{alloc_bytes}}}",
                    escape(name),
                );
            }
            Event::Instant {
                name,
                category,
                tid,
                ts_ns,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"instant\",\"name\":\"{}\",\"cat\":\"{}\",\"tid\":{tid},\"ts_ns\":{ts_ns}}}",
                    escape(name),
                    escape(category),
                );
            }
        }
    }
    for c in counters {
        let _ = writeln!(
            out,
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"total\":{}}}",
            escape(c.name),
            c.total,
        );
    }
    for h in hists {
        let mut buckets = String::new();
        for (i, b) in h.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let _ = write!(buckets, "{b}");
        }
        let _ = writeln!(
            out,
            "{{\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"buckets\":[{buckets}]}}",
            escape(h.name),
            h.count,
            h.sum_ns,
            h.min_ns,
            h.max_ns,
        );
    }
    out
}

/// Nanoseconds → the format's microsecond timestamps, with fractional
/// precision preserved.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

/// Renders the run in Chrome Trace Event format (JSON Object variant):
/// loadable in `chrome://tracing` and Perfetto, one named track per
/// worker thread, spans as `"X"` complete events, probe marks as `"i"`
/// instants, counter totals in `otherData`.
pub fn to_chrome_json(
    report: &TraceReport,
    counters: &[CounterSnapshot],
    hists: &[HistogramSnapshot],
) -> String {
    let mut events = String::new();
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            events.push_str(",\n");
        }
        *first = false;
        events.push_str("  ");
        events.push_str(&line);
    };
    push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"beaconplace\"}}"
            .to_string(),
        &mut first,
    );
    for (tid, name) in &report.threads {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                escape(name),
            ),
            &mut first,
        );
    }
    for ev in &report.events {
        match ev {
            Event::Span {
                name,
                tid,
                depth,
                start_ns,
                dur_ns,
                allocs,
                alloc_bytes,
            } => {
                push(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{depth},\"allocs\":{allocs},\"alloc_bytes\":{alloc_bytes}}}}}",
                        escape(name),
                        us(*start_ns),
                        us(*dur_ns),
                    ),
                    &mut first,
                );
            }
            Event::Instant {
                name,
                category,
                tid,
                ts_ns,
            } => {
                push(
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}",
                        escape(name),
                        escape(category),
                        us(*ts_ns),
                    ),
                    &mut first,
                );
            }
        }
    }
    let mut other = String::new();
    let _ = write!(other, "\"dropped_events\":{}", report.dropped);
    for c in counters {
        let _ = write!(other, ",\"{}\":{}", escape(c.name), c.total);
    }
    for h in hists {
        let _ = write!(
            other,
            ",\"{}_count\":{},\"{}_sum_ns\":{}",
            escape(h.name),
            h.count,
            escape(h.name),
            h.sum_ns,
        );
    }
    format!(
        "{{\n\"traceEvents\": [\n{events}\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {{{other}}}\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceReport;

    fn sample_report() -> TraceReport {
        TraceReport {
            events: vec![
                Event::Span {
                    name: "radio.connectivity_sweep",
                    tid: 0,
                    depth: 0,
                    start_ns: 1_500,
                    dur_ns: 2_250_000,
                    allocs: 7,
                    alloc_bytes: 1_024,
                },
                Event::Instant {
                    name: "figure_start \"fig5\"".to_string(),
                    category: "probe",
                    tid: 1,
                    ts_ns: 3_000,
                },
            ],
            dropped: 2,
            threads: vec![(0, "main".to_string()), (1, "worker-1".to_string())],
        }
    }

    fn sample_metrics() -> (Vec<CounterSnapshot>, Vec<HistogramSnapshot>) {
        (
            vec![CounterSnapshot {
                name: "links_tested",
                total: 42,
            }],
            vec![HistogramSnapshot {
                name: "trial_wall",
                count: 4,
                sum_ns: 4_000,
                min_ns: 900,
                max_ns: 1_100,
                buckets: vec![0, 4],
            }],
        )
    }

    #[test]
    fn jsonl_lines_are_well_formed_and_complete() {
        let (counters, hists) = sample_metrics();
        let jsonl = to_jsonl(&sample_report(), &counters, &hists);
        let lines: Vec<&str> = jsonl.lines().collect();
        // meta + 2 events + 1 counter + 1 histogram
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        }
        assert!(lines[0].contains("\"kind\":\"meta\""));
        assert!(lines[0].contains("\"dropped\":2"));
        assert!(lines[1].contains("\"kind\":\"span\""));
        assert!(lines[1].contains("radio.connectivity_sweep"));
        assert!(lines[1].contains("\"allocs\":7"));
        assert!(lines[1].contains("\"alloc_bytes\":1024"));
        assert!(
            lines[2].contains("figure_start \\\"fig5\\\""),
            "quotes escaped: {}",
            lines[2]
        );
        assert!(lines[3].contains("\"total\":42"));
        assert!(lines[4].contains("\"buckets\":[0,4]"));
    }

    #[test]
    fn chrome_export_has_thread_tracks_and_complete_events() {
        let (counters, hists) = sample_metrics();
        let chrome = to_chrome_json(&sample_report(), &counters, &hists);
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"M\""), "thread metadata present");
        assert!(chrome.contains("\"args\":{\"name\":\"worker-1\"}"));
        // 1500 ns span start → 1.5 µs; 2.25 ms duration → 2250 µs.
        assert!(chrome.contains("\"ts\":1.500"), "µs timestamps: {chrome}");
        assert!(chrome.contains("\"dur\":2250.000"));
        assert!(chrome.contains("\"ph\":\"i\""), "instant present");
        assert!(
            chrome.contains("\"allocs\":7,\"alloc_bytes\":1024"),
            "span args carry alloc deltas"
        );
        assert!(chrome.contains("\"dropped_events\":2"));
        assert!(chrome.contains("\"links_tested\":42"));
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
