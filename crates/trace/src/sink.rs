//! A bounded, never-blocking event sink with explicit drop accounting.
//!
//! Workers emit through [`emit`], which uses a bounded channel's
//! `try_send`: when the buffer is full the event is *dropped* and a
//! counter incremented, so instrumentation can never stall the Monte-Carlo
//! workers. [`drain`] collects everything buffered so far plus the drop
//! count, for the exporters in [`crate::export`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Mutex, OnceLock};

/// Default sink capacity: enough for every span of a full figure run at
/// tiny/default presets without shedding, small enough to bound memory.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// One telemetry event. Timestamps are nanoseconds since the trace epoch
/// (first instrumented event of the process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A completed wall-clock span.
    Span {
        /// Static span name, e.g. `"placement.grid"`.
        name: &'static str,
        /// Emitting thread's track id.
        tid: u32,
        /// Nesting depth at entry (0 = top level on that thread).
        depth: u16,
        /// Start, ns since the trace epoch.
        start_ns: u64,
        /// Duration in ns.
        dur_ns: u64,
        /// Allocator calls on this thread while the span was open
        /// (0 unless built with the `count-allocs` feature).
        allocs: u64,
        /// Bytes requested by those calls (0 unless counting).
        alloc_bytes: u64,
    },
    /// A zero-duration mark (probe lifecycle events: figure/sweep/trial).
    Instant {
        /// Event name, e.g. `"figure_start fig5"`.
        name: String,
        /// Coarse grouping, e.g. `"probe"`.
        category: &'static str,
        /// Emitting thread's track id.
        tid: u32,
        /// Timestamp, ns since the trace epoch.
        ts_ns: u64,
    },
}

struct Sink {
    tx: SyncSender<Event>,
    rx: Mutex<Receiver<Event>>,
    dropped: AtomicU64,
}

static SINK: OnceLock<Sink> = OnceLock::new();
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Is a sink installed? Checked (relaxed) on every span entry so that
/// `--counters` without `--trace` pays no span cost beyond the gate.
#[inline]
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Installs the global event sink with room for `capacity` buffered
/// events (clamped to at least 1). Idempotent: the first call wins and
/// later calls only re-arm the installed flag; the process keeps one sink
/// for its lifetime.
pub fn install(capacity: usize) {
    SINK.get_or_init(|| {
        let (tx, rx) = sync_channel(capacity.max(1));
        Sink {
            tx,
            rx: Mutex::new(rx),
            dropped: AtomicU64::new(0),
        }
    });
    INSTALLED.store(true, Ordering::Relaxed);
}

/// Stops span emission (counters are unaffected; they have their own gate).
/// Buffered events stay drainable.
pub fn uninstall() {
    INSTALLED.store(false, Ordering::Relaxed);
}

/// Offers an event to the sink. Never blocks: with the buffer full the
/// event is shed and counted in [`TraceReport::dropped`]. A no-op before
/// [`install`].
pub fn emit(event: Event) {
    let Some(sink) = SINK.get() else { return };
    match sink.tx.try_send(event) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
            sink.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Everything the sink captured: buffered events, how many were shed, and
/// the `(track id, thread name)` table for per-worker trace tracks.
#[derive(Debug, Default)]
pub struct TraceReport {
    /// Buffered events, in arrival order.
    pub events: Vec<Event>,
    /// Events shed because the buffer was full.
    pub dropped: u64,
    /// `(track id, thread name)` for every thread that emitted.
    pub threads: Vec<(u32, String)>,
}

/// Drains all currently-buffered events and the drop count. The sink
/// stays usable afterwards; the drop counter is reset by the drain.
pub fn drain() -> TraceReport {
    let mut report = TraceReport {
        threads: crate::span::track_names(),
        ..TraceReport::default()
    };
    let Some(sink) = SINK.get() else {
        return report;
    };
    if let Ok(rx) = sink.rx.lock() {
        while let Ok(ev) = rx.try_recv() {
            report.events.push(ev);
        }
    }
    report.dropped = sink.dropped.swap(0, Ordering::Relaxed);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn emit_before_install_is_a_noop() {
        let _g = test_support::lock();
        // SINK may already be installed by another test binary order; this
        // only checks emit() does not panic either way.
        emit(Event::Instant {
            name: "pre".into(),
            category: "test",
            tid: 0,
            ts_ns: 0,
        });
    }

    #[test]
    fn full_sink_sheds_and_accounts_drops() {
        let _g = test_support::lock();
        install(DEFAULT_CAPACITY);
        drain(); // start from an empty buffer
        crate::set_enabled(true);
        {
            let _a = crate::span!("outer");
            let _b = crate::span!("inner");
        }
        crate::span::instant("mark", "test");
        crate::set_enabled(false);
        let report = drain();
        assert_eq!(report.dropped, 0);
        let names: Vec<&str> = report
            .events
            .iter()
            .map(|e| match e {
                Event::Span { name, .. } => *name,
                Event::Instant { name, .. } => name.as_str(),
            })
            .collect();
        // Spans close inner-first; the instant arrives last.
        assert_eq!(names, vec!["inner", "outer", "mark"]);
        match &report.events[0] {
            Event::Span { depth, .. } => assert_eq!(*depth, 1, "inner span is nested"),
            other => panic!("expected span, got {other:?}"),
        }
        assert!(
            !report.threads.is_empty(),
            "emitting thread must be in the track table"
        );
    }

    #[test]
    fn drop_counter_counts_shed_events() {
        let _g = test_support::lock();
        install(DEFAULT_CAPACITY);
        drain();
        let sink = SINK.get().expect("installed above");
        // Simulate shedding directly: the process-wide sink's capacity is
        // fixed at first install, so fill-to-capacity would be slow here.
        sink.dropped.fetch_add(3, Ordering::Relaxed);
        let report = drain();
        assert_eq!(report.dropped, 3);
        assert_eq!(drain().dropped, 0, "drain resets the drop counter");
    }
}
