//! Structured telemetry for the `beaconplace` pipeline.
//!
//! The Monte-Carlo evaluation spends its time in inner loops the
//! figure/sweep/trial lifecycle events of `abp-sim`'s probe layer cannot
//! see: per-trial radio link decisions, localizer evaluations, and
//! placement candidate scans. This crate provides the phase-level timing
//! and counting needed to know *where* trial time goes, with a disabled
//! path cheap enough to stay in release builds:
//!
//! * [`span!`] — RAII wall-clock spans with per-thread tracks and nesting
//!   depth, emitted to the global event sink,
//! * [`Counter`] — sharded monotonic counters (e.g. `links_tested`)
//!   registered in a global registry and aggregated lock-free at drain
//!   time,
//! * [`DurationHistogram`] — log₂-bucketed duration histograms (e.g. per
//!   trial wall time), built on the ungated embeddable [`RawHistogram`]
//!   core, plus [`Gauge`] for last-value state,
//! * [`expo`] — a Prometheus text-exposition renderer
//!   ([`render_prometheus`]) and the snapshot-diff helpers
//!   ([`counter_rates`], [`histogram_interval`]) live dashboards build
//!   rates and interval quantiles from,
//! * [`sink`] — a bounded, never-blocking event sink with explicit drop
//!   accounting,
//! * [`export`] — renders a completed run as JSONL or as Chrome Trace
//!   Event JSON loadable in `chrome://tracing` / [Perfetto], one track per
//!   worker thread,
//! * [`alloc`] — allocation accounting: a counting global allocator
//!   (behind the `count-allocs` feature) with thread/process snapshots;
//!   `abp bench` turns the deltas into allocs/trial, and live spans
//!   record their own alloc/bytes deltas.
//!
//! [Perfetto]: https://ui.perfetto.dev
//!
//! # The gate
//!
//! Everything hangs off one global flag ([`set_enabled`]). While the flag
//! is off, a [`span!`] or [`Counter::add`] costs a single relaxed atomic
//! load and a predictable branch — a few hundred picoseconds — so
//! instrumentation can ship in release binaries (a test asserts the
//! budget). Flip the flag on and counters start counting; install a sink
//! ([`sink::install`]) and spans start recording.
//!
//! # Example
//!
//! ```
//! use abp_trace::{Counter, DurationHistogram};
//!
//! static CANDIDATES: Counter = Counter::new("candidates_scanned");
//! static SCAN_WALL: DurationHistogram = DurationHistogram::new("scan_wall");
//!
//! abp_trace::set_enabled(true);
//! {
//!     let _span = abp_trace::span!("placement.scan"); // no sink: metadata only
//!     CANDIDATES.add(400);
//!     SCAN_WALL.record(std::time::Duration::from_micros(250));
//! }
//! assert!(CANDIDATES.total() >= 400);
//! abp_trace::set_enabled(false);
//! ```

// The counting global allocator (feature `count-allocs`, see [`alloc`])
// is the one place the workspace needs `unsafe`: a `GlobalAlloc` impl
// cannot be written without it. Default builds still *forbid* unsafe
// code; counting builds downgrade to `deny` and the allocator module
// opts out explicitly.
#![cfg_attr(not(feature = "count-allocs"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod expo;
pub mod export;
pub mod metrics;
pub mod sink;
pub mod span;

pub use crate::alloc::{counting, process_snapshot, thread_snapshot, AllocSnapshot};
pub use expo::render_prometheus;
pub use metrics::{
    bucket_lower_ns, bucket_of, bucket_upper_ns, counter_rates, counters_snapshot, gauges_snapshot,
    histogram_interval, render_table, reset_metrics, Counter, CounterRate, CounterSnapshot,
    DurationHistogram, Gauge, GaugeSnapshot, HistogramSnapshot, RawHistogram, HIST_BUCKETS,
};
pub use sink::{drain, Event, TraceReport};
pub use span::SpanGuard;

use std::sync::atomic::{AtomicBool, Ordering};

/// The global instrumentation gate.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is instrumentation currently enabled?
///
/// A single relaxed atomic load — this is the *entire* disabled-path cost
/// of every span and counter in the workspace.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns instrumentation on or off globally.
///
/// Off (the default): spans and counters are no-ops. On: counters and
/// histograms accumulate; spans additionally emit events when a sink is
/// installed ([`sink::install`]).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Opens a named wall-clock span that lasts until the returned guard is
/// dropped.
///
/// The name must be a `&'static str`. Bind the guard — `let _span =
/// span!("phase");` — because `let _ =` drops it immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// Tests that flip the global gate or drain the sink serialize on
    /// this lock so they cannot observe each other's state.
    static GLOBAL: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn gate_defaults_off_and_toggles() {
        let _g = test_support::lock();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    /// The acceptance guard: the gated no-op span + counter path must stay
    /// under a fixed per-operation budget so instrumentation can remain in
    /// release builds (a disabled-tracing release run of the smallest
    /// figure preset stays within noise of baseline).
    #[test]
    fn disabled_path_stays_under_ns_budget() {
        let _g = test_support::lock();
        static C: Counter = Counter::new("budget_probe");
        static H: DurationHistogram = DurationHistogram::new("budget_probe_hist");
        set_enabled(false);
        let iters: u32 = 2_000_000;
        let start = Instant::now();
        for i in 0..iters {
            let _span = span!("noop");
            C.add(1);
            H.record(Duration::from_nanos(u64::from(i)));
        }
        let per_op = start.elapsed().as_nanos() as f64 / f64::from(iters);
        // One span + one counter + one histogram op per iteration. The
        // budget is deliberately generous (CI machines, debug builds);
        // the real-world release cost is ~1 ns for all three.
        let budget = if cfg!(debug_assertions) {
            1500.0
        } else {
            100.0
        };
        assert!(
            per_op < budget,
            "disabled span+counter+histogram path costs {per_op:.1} ns/iter, budget {budget} ns"
        );
        assert_eq!(C.total(), 0, "disabled counter must not count");
    }
}
