//! Counters and duration histograms with a global registry.
//!
//! Both types are designed to live in `static`s ([`Counter::new`] and
//! [`DurationHistogram::new`] are `const`). Updates are relaxed atomic
//! adds on a shard picked by the calling thread's track id, so
//! simultaneous workers do not contend on one cache line; reads
//! ([`Counter::total`], [`counters_snapshot`]) sum the shards lock-free.
//! Instruments register themselves in the global registry on first use,
//! so the drain side discovers every counter the run actually touched.

use crate::span::track_id;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of independent accumulation shards per instrument. Threads map
/// onto shards by track id, so up to this many workers update disjoint
/// cache lines.
const SHARDS: usize = 16;

/// Number of log₂ duration buckets: bucket `b` holds durations in
/// `[2^(b-1), 2^b)` nanoseconds, so 40 buckets span 1 ns to ~18 minutes.
/// Public because wire formats (the serve `Stats` opcode) and the
/// Prometheus exposition renderer need the bucket count and bounds.
pub const HIST_BUCKETS: usize = 40;

/// The bucket a duration of `ns` nanoseconds lands in: 0 and 1 ns land
/// in bucket 0, otherwise `floor(log2(ns)) + 1`, clamped to the last
/// bucket.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// The upper bound (ns, inclusive under the quantile convention) of
/// bucket `b` — what quantile estimates report: `2^b`.
#[inline]
pub fn bucket_upper_ns(b: usize) -> u64 {
    1u64 << b.min(63)
}

/// The lower bound (ns) of bucket `b`: `2^(b-1)`, except bucket 0 which
/// starts at 0.
#[inline]
pub fn bucket_lower_ns(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        bucket_upper_ns(b - 1)
    }
}

/// One cache line per shard so concurrent workers do not false-share.
#[repr(align(64))]
struct Shard(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)] // used only as an array initializer
const ZERO_SHARD: Shard = Shard(AtomicU64::new(0));

/// A monotonic event counter, aggregated across threads at read time.
///
/// ```
/// static LINKS: abp_trace::Counter = abp_trace::Counter::new("links_tested");
/// abp_trace::set_enabled(true);
/// LINKS.add(128);
/// assert!(LINKS.total() >= 128);
/// abp_trace::set_enabled(false);
/// ```
pub struct Counter {
    name: &'static str,
    registered: AtomicBool,
    shards: [Shard; SHARDS],
}

impl Counter {
    /// Creates a counter. Intended for `static` items.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            registered: AtomicBool::new(false),
            shards: [ZERO_SHARD; SHARDS],
        }
    }

    /// The counter's registry name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to the counter. A no-op (one relaxed load) while
    /// instrumentation is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        let shard = track_id() as usize % SHARDS;
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards (lock-free).
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn register(&'static self) {
        if self.registered.load(Ordering::Relaxed) {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().counters.lock().expect("registry").push(self);
        }
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// The bare accumulation core of a duration histogram: log₂ buckets plus
/// exact count/sum/min/max, updated with relaxed atomics only.
///
/// Unlike [`DurationHistogram`] it is **ungated** (records regardless of
/// the global instrumentation flag), **unnamed**, and **unregistered** —
/// it can live inside any struct, not just a `static`. The serving
/// daemon embeds one per opcode class so live telemetry works without
/// flipping the process-wide trace gate and without touching the global
/// registry's mutex on the request path.
pub struct RawHistogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    /// Exact smallest recorded duration (`u64::MAX` until first record).
    min_ns: AtomicU64,
    /// Exact largest recorded duration (0 until first record).
    max_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)] // used only as an array initializer
const ZERO_BUCKET: AtomicU64 = AtomicU64::new(0);

impl RawHistogram {
    /// Creates an empty histogram core (usable in `const` contexts).
    pub const fn new() -> Self {
        RawHistogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: [ZERO_BUCKET; HIST_BUCKETS],
        }
    }

    /// Records one duration: five relaxed atomic ops, no allocation, no
    /// gate, no lock.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one duration given directly in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded durations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Exact smallest recorded duration in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min_ns.load(Ordering::Relaxed)
        }
    }

    /// Exact largest recorded duration in nanoseconds (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The count in bucket `b` (0 for an out-of-range index). Lets wire
    /// encoders walk the buckets without the [`Self::snapshot`]
    /// allocation.
    pub fn bucket(&self, b: usize) -> u64 {
        self.buckets.get(b).map_or(0, |x| x.load(Ordering::Relaxed))
    }

    /// Takes a consistent-enough snapshot under `name` (relaxed reads;
    /// exact once writers have quiesced).
    pub fn snapshot(&self, name: &'static str) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for RawHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A log₂-bucketed histogram of durations, plus exact count and sum.
///
/// Bucket `b` covers `[2^(b-1), 2^b)` nanoseconds; quantile estimates
/// report a bucket's upper bound, so they are accurate to a factor of two
/// — plenty for "where does trial time go" questions. A named, globally
/// registered, gate-respecting wrapper around [`RawHistogram`].
pub struct DurationHistogram {
    name: &'static str,
    registered: AtomicBool,
    raw: RawHistogram,
}

impl DurationHistogram {
    /// Creates a histogram. Intended for `static` items.
    pub const fn new(name: &'static str) -> Self {
        DurationHistogram {
            name,
            registered: AtomicBool::new(false),
            raw: RawHistogram::new(),
        }
    }

    /// The histogram's registry name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one duration. A no-op (one relaxed load) while
    /// instrumentation is disabled.
    #[inline]
    pub fn record(&'static self, d: Duration) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.raw.record(d);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.raw.count()
    }

    /// Takes a consistent-enough snapshot (relaxed reads; exact once
    /// writers have quiesced, which is the drain-time contract).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.raw.snapshot(self.name)
    }

    fn register(&'static self) {
        if self.registered.load(Ordering::Relaxed) {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().histograms.lock().expect("registry").push(self);
        }
    }

    fn reset(&self) {
        self.raw.reset();
    }
}

/// A last-value instrument for live state: connection counts, queue
/// depths, the current epoch. Like [`Counter`] it is `const`-creatable
/// for `static` items, self-registers on first write, and is a single
/// relaxed load while instrumentation is disabled.
pub struct Gauge {
    name: &'static str,
    registered: AtomicBool,
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge. Intended for `static` items.
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            registered: AtomicBool::new(false),
            value: AtomicU64::new(0),
        }
    }

    /// The gauge's registry name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the gauge. A no-op (one relaxed load) while instrumentation
    /// is disabled.
    #[inline]
    pub fn set(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (for up/down gauges like live connections).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero.
    #[inline]
    pub fn sub(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.register();
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn register(&'static self) {
        if self.registered.load(Ordering::Relaxed) {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().gauges.lock().expect("registry").push(self);
        }
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A counter's name and drained total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registry name (e.g. `links_tested`).
    pub name: &'static str,
    /// Total across all threads.
    pub total: u64,
}

/// A histogram's drained state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name (e.g. `trial_wall`).
    pub name: &'static str,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of all recorded durations in nanoseconds.
    pub sum_ns: u64,
    /// Exact smallest recorded duration in nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Exact largest recorded duration in nanoseconds (0 when empty).
    pub max_ns: u64,
    /// Log₂ bucket counts; bucket `b` covers `[2^(b-1), 2^b)` ns.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean recorded duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Quantile estimate, `None` when empty.
    ///
    /// The rank rule, pinned down because the serve latency report is
    /// built on it:
    ///
    /// * `q <= 0` returns the **exact recorded minimum** ([`min_ns`](HistogramSnapshot::min_ns)),
    ///   and `q >= 1` the **exact recorded maximum** — not a bucket bound
    ///   (histograms track min/max alongside the buckets).
    /// * For `0 < q < 1` the rank is `ceil(q · count)` (1-based, so a
    ///   single-sample histogram answers that sample's bucket at every
    ///   `q`), and the estimate is the **upper bound** of the bucket
    ///   holding that rank — log₂ buckets make mid quantiles accurate to
    ///   a factor of two. The answer is clamped into `[min_ns, max_ns]`
    ///   so a bucket bound never exceeds an actually-recorded extreme.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min_ns);
        }
        if q >= 1.0 {
            return Some(self.max_ns);
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                let upper = bucket_upper_ns(b);
                return Some(upper.clamp(self.min_ns, self.max_ns));
            }
        }
        Some(self.max_ns)
    }
}

/// A gauge's name and value at snapshot time.
///
/// The value is `f64` (not the gauge's stored `u64`) so callers that
/// build snapshots directly — e.g. the serving daemon exposing a rebuild
/// duration in seconds — can carry non-integer readings into the
/// exposition renderer.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Registry name (e.g. `serve_connections_live`).
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: f64,
}

/// A counter's movement between two snapshots, as computed by
/// [`counter_rates`].
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRate {
    /// Registry name.
    pub name: &'static str,
    /// `after − before` (0 for a counter absent from `before`; counters
    /// are monotonic, so a negative movement clamps to 0).
    pub delta: u64,
    /// `delta / elapsed` in events per second (0 when `elapsed` is 0).
    pub per_sec: f64,
}

/// Rate computation between two [`counters_snapshot`] calls: pairs
/// `before` and `after` by name and reports each `after` counter's delta
/// and per-second rate over `elapsed`.
///
/// Both inputs are expected sorted by name (the [`counters_snapshot`]
/// contract); counters that appear only in `after` — registered between
/// the two snapshots — count from zero. Counters that vanished (only
/// possible across a [`reset_metrics`]) are dropped.
pub fn counter_rates(
    before: &[CounterSnapshot],
    after: &[CounterSnapshot],
    elapsed: Duration,
) -> Vec<CounterRate> {
    let secs = elapsed.as_secs_f64();
    after
        .iter()
        .map(|a| {
            let prev = before
                .binary_search_by(|b| b.name.cmp(a.name))
                .map(|i| before[i].total)
                .unwrap_or(0);
            let delta = a.total.saturating_sub(prev);
            CounterRate {
                name: a.name,
                delta,
                per_sec: if secs > 0.0 { delta as f64 / secs } else { 0.0 },
            }
        })
        .collect()
}

/// The histogram of everything recorded *between* two snapshots of the
/// same instrument: per-bucket deltas, delta count and sum.
///
/// Exact extremes are not recoverable from cumulative state, so the
/// interval's `min_ns`/`max_ns` are the tightest bucket bounds that
/// cover the nonzero delta buckets ([`bucket_lower_ns`] of the first,
/// [`bucket_upper_ns`] of the last) — which keeps
/// [`HistogramSnapshot::quantile_ns`]'s clamp honest for interval
/// quantiles. Empty intervals report all-zero.
pub fn histogram_interval(
    before: &HistogramSnapshot,
    after: &HistogramSnapshot,
) -> HistogramSnapshot {
    let n = after.buckets.len().max(before.buckets.len());
    let mut buckets = Vec::with_capacity(n);
    for b in 0..n {
        let a = after.buckets.get(b).copied().unwrap_or(0);
        let p = before.buckets.get(b).copied().unwrap_or(0);
        buckets.push(a.saturating_sub(p));
    }
    let first = buckets.iter().position(|&c| c > 0);
    let last = buckets.iter().rposition(|&c| c > 0);
    HistogramSnapshot {
        name: after.name,
        count: after.count.saturating_sub(before.count),
        sum_ns: after.sum_ns.saturating_sub(before.sum_ns),
        min_ns: first.map_or(0, bucket_lower_ns),
        max_ns: last.map_or(0, bucket_upper_ns),
        buckets,
    }
}

struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static DurationHistogram>>,
    gauges: Mutex<Vec<&'static Gauge>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: Registry = Registry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
    };
    &REGISTRY
}

/// Snapshots every registered counter and histogram, sorted by name.
///
/// The registry lock guards only the *list* of instruments; the totals
/// themselves are read lock-free from the shards.
pub fn counters_snapshot() -> (Vec<CounterSnapshot>, Vec<HistogramSnapshot>) {
    let mut counters: Vec<CounterSnapshot> = registry()
        .counters
        .lock()
        .expect("registry")
        .iter()
        .map(|c| CounterSnapshot {
            name: c.name,
            total: c.total(),
        })
        .collect();
    counters.sort_by_key(|c| c.name);
    let mut hists: Vec<HistogramSnapshot> = registry()
        .histograms
        .lock()
        .expect("registry")
        .iter()
        .map(|h| h.snapshot())
        .collect();
    hists.sort_by_key(|h| h.name);
    (counters, hists)
}

/// Snapshots every registered gauge, sorted by name.
pub fn gauges_snapshot() -> Vec<GaugeSnapshot> {
    let mut gauges: Vec<GaugeSnapshot> = registry()
        .gauges
        .lock()
        .expect("registry")
        .iter()
        .map(|g| GaugeSnapshot {
            name: g.name,
            value: g.value() as f64,
        })
        .collect();
    gauges.sort_by_key(|g| g.name);
    gauges
}

/// Zeroes every registered counter, histogram, and gauge (the
/// instruments stay registered). Intended for tests and repeated
/// in-process runs.
pub fn reset_metrics() {
    for c in registry().counters.lock().expect("registry").iter() {
        c.reset();
    }
    for h in registry().histograms.lock().expect("registry").iter() {
        h.reset();
    }
    for g in registry().gauges.lock().expect("registry").iter() {
        g.reset();
    }
}

/// Formats nanoseconds human-readably (`812ns`, `4.1us`, `12.3ms`, `2.5s`).
pub(crate) fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Renders the aggregated counter/histogram table the CLI prints for
/// `--counters`.
pub fn render_table(counters: &[CounterSnapshot], hists: &[HistogramSnapshot]) -> String {
    let mut out = String::new();
    if !counters.is_empty() {
        out.push_str(&format!("{:<28} {:>16}\n", "counter", "total"));
        for c in counters {
            out.push_str(&format!("{:<28} {:>16}\n", c.name, c.total));
        }
    }
    if !hists.is_empty() {
        if !counters.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "{:<28} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
            "histogram", "count", "mean", "p50", "p90", "p99"
        ));
        for h in hists {
            let q = |q: f64| {
                h.quantile_ns(q)
                    .map_or_else(|| "--".to_string(), |ns| human_ns(ns as f64))
            };
            out.push_str(&format!(
                "{:<28} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
                h.name,
                h.count,
                human_ns(h.mean_ns()),
                q(0.5),
                q(0.9),
                q(0.99),
            ));
        }
    }
    if out.is_empty() {
        out.push_str("no counters or histograms were touched\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn counter_counts_only_when_enabled() {
        let _g = test_support::lock();
        static C: Counter = Counter::new("test_counter_gate");
        crate::set_enabled(false);
        C.add(5);
        assert_eq!(C.total(), 0);
        crate::set_enabled(true);
        C.add(5);
        C.add(2);
        assert_eq!(C.total(), 7);
        crate::set_enabled(false);
        C.reset();
    }

    #[test]
    fn counter_aggregates_across_threads() {
        let _g = test_support::lock();
        static C: Counter = Counter::new("test_counter_threads");
        crate::set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.add(1);
                    }
                });
            }
        });
        assert_eq!(C.total(), 8000);
        crate::set_enabled(false);
        C.reset();
    }

    #[test]
    fn registered_instruments_appear_in_snapshot() {
        let _g = test_support::lock();
        static C: Counter = Counter::new("test_snapshot_counter");
        static H: DurationHistogram = DurationHistogram::new("test_snapshot_hist");
        crate::set_enabled(true);
        C.add(3);
        H.record(Duration::from_micros(10));
        let (counters, hists) = counters_snapshot();
        let c = counters
            .iter()
            .find(|c| c.name == "test_snapshot_counter")
            .expect("counter registered");
        assert!(c.total >= 3);
        let h = hists
            .iter()
            .find(|h| h.name == "test_snapshot_hist")
            .expect("histogram registered");
        assert!(h.count >= 1);
        crate::set_enabled(false);
        C.reset();
        H.reset();
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = test_support::lock();
        static H: DurationHistogram = DurationHistogram::new("test_hist_buckets");
        crate::set_enabled(true);
        H.reset();
        // 90 fast ops (~1 us) and 10 slow ones (~1 ms).
        for _ in 0..90 {
            H.record(Duration::from_micros(1));
        }
        for _ in 0..10 {
            H.record(Duration::from_millis(1));
        }
        let s = H.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.quantile_ns(0.5).unwrap();
        let p99 = s.quantile_ns(0.99).unwrap();
        // p50 sits in the microsecond bucket, p99 in the millisecond one;
        // log2 buckets are accurate to a factor of two.
        assert!((1_000..4_000).contains(&p50), "p50 = {p50}");
        assert!((1_000_000..4_000_000).contains(&p99), "p99 = {p99}");
        let mean = s.mean_ns();
        assert!(mean > 90_000.0 && mean < 120_000.0, "mean = {mean}");
        crate::set_enabled(false);
        H.reset();
    }

    #[test]
    fn quantile_extremes_and_edge_counts() {
        let _g = test_support::lock();
        static H: DurationHistogram = DurationHistogram::new("test_hist_extremes");
        crate::set_enabled(true);
        H.reset();

        // Empty histogram: every quantile is None.
        let empty = H.snapshot();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.quantile_ns(0.0), None);
        assert_eq!(empty.quantile_ns(0.5), None);
        assert_eq!(empty.quantile_ns(1.0), None);

        // Single sample: every quantile answers that sample (q = 0 and
        // q = 1 exactly; mid quantiles its bucket, clamped to it).
        H.record(Duration::from_nanos(777));
        let one = H.snapshot();
        assert_eq!(one.count, 1);
        assert_eq!(one.quantile_ns(0.0), Some(777));
        assert_eq!(one.quantile_ns(0.5), Some(777));
        assert_eq!(one.quantile_ns(1.0), Some(777));

        // Two distinct samples: q = 0 is the exact recorded minimum, not
        // the minimum's bucket upper bound (regression: the old rank rule
        // mapped q = 0 to rank 1's bucket).
        H.record(Duration::from_micros(500));
        let two = H.snapshot();
        assert_eq!(two.quantile_ns(0.0), Some(777), "p0 must be the min");
        assert_eq!(two.quantile_ns(1.0), Some(500_000), "p100 must be the max");
        assert_eq!(two.min_ns, 777);
        assert_eq!(two.max_ns, 500_000);
        // Out-of-range q clamps to the extremes.
        assert_eq!(two.quantile_ns(-3.0), Some(777));
        assert_eq!(two.quantile_ns(7.0), Some(500_000));
        // Mid quantiles stay within the recorded range.
        let p50 = two.quantile_ns(0.5).unwrap();
        assert!((777..=500_000).contains(&p50), "p50 = {p50}");

        crate::set_enabled(false);
        H.reset();
        // Reset restores the empty-histogram extremes.
        let after = H.snapshot();
        assert_eq!(after.min_ns, 0);
        assert_eq!(after.max_ns, 0);
    }

    #[test]
    fn bucket_of_is_monotonic_and_bounded() {
        let mut last = 0;
        for exp in 0..64u32 {
            let b = bucket_of(1u64 << exp);
            assert!(b >= last);
            assert!(b < HIST_BUCKETS);
            last = b;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
    }

    #[test]
    fn bucket_bounds_tile_the_axis() {
        assert_eq!(bucket_lower_ns(0), 0);
        for b in 1..HIST_BUCKETS {
            assert_eq!(bucket_lower_ns(b), bucket_upper_ns(b - 1));
            assert!(bucket_lower_ns(b) < bucket_upper_ns(b));
            // Every duration inside the bounds maps back to bucket b.
            assert_eq!(bucket_of(bucket_lower_ns(b).max(2)), b.max(2));
        }
    }

    #[test]
    fn raw_histogram_records_without_the_gate() {
        let _g = test_support::lock();
        crate::set_enabled(false);
        let raw = RawHistogram::new();
        raw.record(Duration::from_micros(3));
        raw.record_ns(700);
        let s = raw.snapshot("raw_probe");
        assert_eq!(s.name, "raw_probe");
        assert_eq!(s.count, 2, "RawHistogram must ignore the global gate");
        assert_eq!(s.min_ns, 700);
        assert_eq!(s.max_ns, 3_000);
        assert_eq!(s.sum_ns, 3_700);
        raw.reset();
        assert_eq!(raw.snapshot("raw_probe").count, 0);
    }

    #[test]
    fn gauge_sets_adds_and_saturates() {
        let _g = test_support::lock();
        static G: Gauge = Gauge::new("test_gauge");
        crate::set_enabled(false);
        G.set(9);
        assert_eq!(G.value(), 0, "disabled gauge must not move");
        crate::set_enabled(true);
        G.set(5);
        G.add(3);
        G.sub(2);
        assert_eq!(G.value(), 6);
        G.sub(100);
        assert_eq!(G.value(), 0, "sub saturates at zero");
        G.set(7);
        let snap = gauges_snapshot();
        let g = snap
            .iter()
            .find(|g| g.name == "test_gauge")
            .expect("gauge registered");
        assert_eq!(g.value, 7.0);
        crate::set_enabled(false);
        G.reset();
    }

    #[test]
    fn counter_rates_pairs_by_name_and_divides_by_elapsed() {
        let before = vec![
            CounterSnapshot {
                name: "a",
                total: 10,
            },
            CounterSnapshot {
                name: "c",
                total: 5,
            },
        ];
        let after = vec![
            CounterSnapshot {
                name: "a",
                total: 30,
            },
            CounterSnapshot {
                name: "b",
                total: 4,
            },
            CounterSnapshot {
                name: "c",
                total: 5,
            },
        ];
        let rates = counter_rates(&before, &after, Duration::from_secs(2));
        assert_eq!(rates.len(), 3);
        assert_eq!(
            rates[0],
            CounterRate {
                name: "a",
                delta: 20,
                per_sec: 10.0
            }
        );
        assert_eq!(
            rates[1],
            CounterRate {
                name: "b",
                delta: 4,
                per_sec: 2.0
            },
            "a counter born between snapshots counts from zero"
        );
        assert_eq!(rates[2].delta, 0);
        // Zero elapsed: deltas survive, rates report 0 instead of inf.
        let instant = counter_rates(&before, &after, Duration::ZERO);
        assert_eq!(instant[0].delta, 20);
        assert_eq!(instant[0].per_sec, 0.0);
    }

    #[test]
    fn histogram_interval_diffs_buckets_and_bounds_extremes() {
        let raw = RawHistogram::new();
        raw.record_ns(1_000);
        let before = raw.snapshot("h");
        raw.record_ns(1_000);
        raw.record_ns(1_000_000);
        let after = raw.snapshot("h");
        let delta = histogram_interval(&before, &after);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum_ns, 1_001_000);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 2);
        // Interval extremes are the covering bucket bounds.
        assert_eq!(delta.min_ns, bucket_lower_ns(bucket_of(1_000)));
        assert_eq!(delta.max_ns, bucket_upper_ns(bucket_of(1_000_000)));
        // Interval quantiles answer from the delta distribution: both
        // recorded samples fall inside [min, max].
        let p50 = delta.quantile_ns(0.5).unwrap();
        assert!((delta.min_ns..=delta.max_ns).contains(&p50));
        // Identical snapshots produce an all-zero interval.
        let none = histogram_interval(&after, &after);
        assert_eq!(none.count, 0);
        assert_eq!(none.min_ns, 0);
        assert_eq!(none.max_ns, 0);
        assert!(none.quantile_ns(0.5).is_none());
    }

    #[test]
    fn table_renders_counters_and_histograms() {
        let counters = vec![CounterSnapshot {
            name: "links_tested",
            total: 123_456,
        }];
        let hists = vec![HistogramSnapshot {
            name: "trial_wall",
            count: 240,
            sum_ns: 240 * 8_000_000,
            min_ns: 8_000_000,
            max_ns: 16_000_000,
            buckets: {
                let mut b = vec![0u64; HIST_BUCKETS];
                b[24] = 240; // ~8-16 ms
                b
            },
        }];
        let table = render_table(&counters, &hists);
        assert!(table.contains("links_tested"));
        assert!(table.contains("123456"));
        assert!(table.contains("trial_wall"));
        assert!(table.contains("240"));
        assert!(table.contains("8.0ms"));
        assert!(render_table(&[], &[]).contains("no counters"));
    }

    #[test]
    fn human_ns_picks_sane_units() {
        assert_eq!(human_ns(812.0), "812ns");
        assert_eq!(human_ns(4_100.0), "4.1us");
        assert_eq!(human_ns(12_300_000.0), "12.3ms");
        assert_eq!(human_ns(2_500_000_000.0), "2.50s");
    }
}
