//! Prometheus text-exposition rendering for the metrics registry.
//!
//! [`render_prometheus`] turns counter/gauge/histogram snapshots into
//! the Prometheus text exposition format (version 0.0.4): `# HELP` and
//! `# TYPE` comments followed by sample lines, one metric family per
//! instrument. It is data-driven — any snapshots work, whether they came
//! from the global registry ([`crate::counters_snapshot`] /
//! [`crate::gauges_snapshot`]) or were built directly, as the serving
//! daemon does for its per-daemon instruments.
//!
//! # Unit and naming conventions
//!
//! * Counters render as `<name>_total` with their raw totals.
//! * Gauges render under their snapshot name, unscaled — a caller
//!   exporting a duration gauge should pre-convert to seconds and name
//!   it `*_seconds`.
//! * Duration histograms record nanoseconds internally (the
//!   [`crate::DurationHistogram`] contract), but Prometheus convention
//!   is base-unit seconds: a histogram named `*_ns` renders as
//!   `*_seconds`, with every `le` bound and the `_sum` scaled by 1e-9.
//!   The log₂ bucket layout maps directly: bucket `b`'s upper bound
//!   `2^b` ns becomes `le="2^b × 1e-9"`, counts accumulate cumulatively
//!   in `le` order, and the terminal `le="+Inf"` bucket equals `_count`.

use crate::metrics::{bucket_upper_ns, CounterSnapshot, GaugeSnapshot, HistogramSnapshot};
use std::fmt::Write as _;

/// Maps an instrument name onto the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_`, and a
/// leading digit gets a `_` prefix.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.push('_');
    }
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// The exposition base name of a duration histogram: `_ns` is replaced
/// by `_seconds` (appended when the name carries no unit suffix).
fn seconds_name(name: &str) -> String {
    let base = name.strip_suffix("_ns").unwrap_or(name);
    format!("{}_seconds", sanitize(base))
}

/// Renders counter, gauge, and histogram snapshots as one Prometheus
/// text-exposition document (format version 0.0.4).
///
/// Families render in input order: counters, then gauges, then
/// histograms. Feed pre-sorted snapshots (what the registry snapshot
/// functions return) for a deterministic document.
pub fn render_prometheus(
    counters: &[CounterSnapshot],
    gauges: &[GaugeSnapshot],
    hists: &[HistogramSnapshot],
) -> String {
    let mut out = String::new();
    for c in counters {
        let name = format!("{}_total", sanitize(c.name));
        let _ = writeln!(out, "# HELP {name} Monotonic event counter `{}`.", c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.total);
    }
    for g in gauges {
        let name = sanitize(g.name);
        let _ = writeln!(out, "# HELP {name} Gauge `{}`.", g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_f64(g.value));
    }
    for h in hists {
        let name = seconds_name(h.name);
        let _ = writeln!(
            out,
            "# HELP {name} Duration histogram `{}` (log2 buckets, seconds).",
            h.name
        );
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (b, &n) in h.buckets.iter().enumerate() {
            cum += n;
            let le = bucket_upper_ns(b) as f64 * 1e-9;
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", fmt_f64(le));
        }
        // Relaxed snapshots can momentarily undercount the buckets
        // relative to `count`; +Inf takes the max so the cumulative
        // series stays monotone and terminates at the family count.
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", cum.max(h.count));
        let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum_ns as f64 * 1e-9));
        let _ = writeln!(out, "{name}_count {}", cum.max(h.count));
    }
    out
}

/// Formats an exposition float: plain decimal, no exponent for the
/// magnitudes metrics take, and finite by construction (Rust's shortest
/// round-trip `Display` for `f64` is valid Prometheus float syntax).
fn fmt_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite exposition value: {v}");
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HIST_BUCKETS;

    #[test]
    fn sanitize_maps_to_metric_alphabet() {
        assert_eq!(sanitize("serve_requests"), "serve_requests");
        assert_eq!(sanitize("bad-name.with/chars"), "bad_name_with_chars");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn seconds_name_strips_ns_suffix() {
        assert_eq!(seconds_name("serve_request_ns"), "serve_request_seconds");
        assert_eq!(seconds_name("trial_wall"), "trial_wall_seconds");
    }

    #[test]
    fn counters_and_gauges_render_with_help_and_type() {
        let counters = vec![CounterSnapshot {
            name: "links_tested",
            total: 42,
        }];
        let gauges = vec![GaugeSnapshot {
            name: "serve_epoch",
            value: 3.0,
        }];
        let text = render_prometheus(&counters, &gauges, &[]);
        assert!(text.contains("# TYPE links_tested_total counter"));
        assert!(text.contains("links_tested_total 42"));
        assert!(text.contains("# TYPE serve_epoch gauge"));
        assert!(text.contains("serve_epoch 3"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn histogram_renders_cumulative_le_buckets_in_seconds() {
        let mut buckets = vec![0u64; HIST_BUCKETS];
        buckets[10] = 3; // (512, 1024] ns
        buckets[20] = 1; // ~1 ms
        let hists = vec![HistogramSnapshot {
            name: "serve_request_ns",
            count: 4,
            sum_ns: 1_051_572,
            min_ns: 700,
            max_ns: 1_048_000,
            buckets,
        }];
        let text = render_prometheus(&[], &[], &hists);
        assert!(text.contains("# TYPE serve_request_seconds histogram"));
        // Bucket 10's upper bound is 1024 ns = 1.024e-6 s.
        assert!(
            text.contains("serve_request_seconds_bucket{le=\"0.000001024\"} 3"),
            "missing the 1024ns cumulative bucket:\n{text}"
        );
        assert!(text.contains("serve_request_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("serve_request_seconds_count 4"));
        assert!(text.contains("serve_request_seconds_sum 0.001051572"));
        // Cumulative counts never decrease in le order.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone cumulative bucket: {line}");
            last = v;
        }
    }
}
