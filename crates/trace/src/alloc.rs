//! Allocation accounting: a counting global allocator behind the
//! `count-allocs` feature, plus an always-present snapshot API.
//!
//! With the feature **off** (the default) this module compiles to inert
//! stubs: [`counting`] is `false`, snapshots are all zeros, and the
//! process keeps the system allocator untouched — zero overhead, no
//! `unsafe`. With `--features count-allocs` the crate installs a
//! [`std::alloc::GlobalAlloc`] wrapper around the system allocator that
//! counts every allocation (and the bytes requested) into both a global
//! total and a per-thread total. `abp bench` uses the per-thread deltas
//! to report allocs/trial and bytes/trial, and the span layer attaches
//! per-span deltas to every emitted [`Event::Span`](crate::Event::Span).
//!
//! Deallocations are deliberately *not* subtracted: the counters measure
//! allocator traffic (how often the trial loop hits the allocator), not
//! live heap size, so a steady-state reading of zero means "the hot loop
//! never called `malloc`" — the property the zero-allocation gate
//! asserts.

/// Whether this build counts allocations (`count-allocs` feature).
///
/// When `false`, [`thread_snapshot`]/[`process_snapshot`] always return
/// zeros and deltas are meaningless — callers (the bench harness) must
/// check this before gating on allocation counts.
#[inline]
pub const fn counting() -> bool {
    cfg!(feature = "count-allocs")
}

/// A point-in-time reading of allocation counters (monotonic totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Number of allocator calls (`alloc` + `alloc_zeroed` + `realloc`).
    pub allocs: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// The counter movement since `earlier` (wrapping, so a snapshot
    /// pair taken in order is always correct).
    pub fn delta_since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// The calling thread's allocation totals since it started (zeros when
/// [`counting`] is `false`). Two snapshots bracket a region:
/// `after.delta_since(before)` is that region's allocator traffic.
#[inline]
pub fn thread_snapshot() -> AllocSnapshot {
    #[cfg(feature = "count-allocs")]
    {
        imp::thread_snapshot()
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        AllocSnapshot::default()
    }
}

/// Process-wide allocation totals (zeros when [`counting`] is `false`).
#[inline]
pub fn process_snapshot() -> AllocSnapshot {
    #[cfg(feature = "count-allocs")]
    {
        imp::process_snapshot()
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        AllocSnapshot::default()
    }
}

#[cfg(feature = "count-allocs")]
mod imp {
    #![allow(unsafe_code)]

    use super::AllocSnapshot;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
    static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
        static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    }

    /// Counts one allocator call of `size` bytes. Thread-local counters
    /// go through `try_with`: during thread teardown the TLS slots may
    /// already be destroyed, and an allocation then must not panic.
    #[inline]
    fn count(size: usize) {
        TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
        let _ = THREAD_BYTES.try_with(|c| c.set(c.get().wrapping_add(size as u64)));
    }

    pub(super) fn thread_snapshot() -> AllocSnapshot {
        AllocSnapshot {
            allocs: THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0),
            bytes: THREAD_BYTES.try_with(Cell::get).unwrap_or(0),
        }
    }

    pub(super) fn process_snapshot() -> AllocSnapshot {
        AllocSnapshot {
            allocs: TOTAL_ALLOCS.load(Ordering::Relaxed),
            bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        }
    }

    /// [`System`] plus relaxed counting. `dealloc` is pass-through: the
    /// counters measure allocator traffic, not live bytes.
    struct CountingAlloc;

    // SAFETY: every method delegates verbatim to `System`, which upholds
    // the `GlobalAlloc` contract; the counting side effects touch only
    // atomics and TLS cells and never allocate.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            count(new_size);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_reflect_the_build_mode() {
        let before = thread_snapshot();
        // A guaranteed allocation between the snapshots.
        let v: Vec<u64> = Vec::with_capacity(4096);
        std::hint::black_box(&v);
        let delta = thread_snapshot().delta_since(before);
        if counting() {
            assert!(delta.allocs >= 1, "counting build must see the Vec");
            assert!(delta.bytes >= 4096 * 8);
        } else {
            assert_eq!(delta, AllocSnapshot::default(), "stub build stays at zero");
        }
    }

    #[test]
    fn process_counts_dominate_thread_counts() {
        let t = thread_snapshot();
        let p = process_snapshot();
        assert!(p.allocs >= t.allocs);
        assert!(p.bytes >= t.bytes);
    }

    #[test]
    fn delta_since_is_wrapping() {
        let a = AllocSnapshot {
            allocs: 1,
            bytes: 8,
        };
        let b = AllocSnapshot {
            allocs: 5,
            bytes: 64,
        };
        assert_eq!(
            b.delta_since(a),
            AllocSnapshot {
                allocs: 4,
                bytes: 56
            }
        );
        assert_eq!(
            a.delta_since(b),
            AllocSnapshot {
                allocs: u64::MAX - 3,
                bytes: u64::MAX - 55
            }
        );
    }
}
