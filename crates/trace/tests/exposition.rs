//! Integration tests for the Prometheus text-exposition renderer and
//! the registry snapshot contracts it builds on.

use abp_trace::{
    counters_snapshot, render_prometheus, Counter, CounterSnapshot, DurationHistogram,
    GaugeSnapshot, HistogramSnapshot, HIST_BUCKETS,
};
use proptest::prelude::*;

/// A fixed, fully-specified snapshot set covering every family kind the
/// renderer handles: counters, integer and fractional gauges, and a
/// histogram with empty, single, and multi-count buckets.
fn golden_fixture() -> (
    Vec<CounterSnapshot>,
    Vec<GaugeSnapshot>,
    Vec<HistogramSnapshot>,
) {
    let counters = vec![
        CounterSnapshot {
            name: "links_tested",
            total: 123_456,
        },
        CounterSnapshot {
            name: "serve_requests",
            total: 789,
        },
    ];
    let gauges = vec![
        GaugeSnapshot {
            name: "serve_connections_live",
            value: 3.0,
        },
        GaugeSnapshot {
            name: "serve_epoch",
            value: 7.0,
        },
        GaugeSnapshot {
            name: "serve_last_rebuild_seconds",
            value: 0.0125,
        },
    ];
    // 12 buckets keep the golden file readable; the renderer iterates
    // whatever bucket count the snapshot carries (live instruments carry
    // HIST_BUCKETS).
    let mut buckets = vec![0u64; 12];
    buckets[5] = 1;
    buckets[6] = 2;
    buckets[8] = 4;
    buckets[11] = 1;
    let hists = vec![HistogramSnapshot {
        name: "serve_request_ns",
        count: 8,
        sum_ns: 23_456,
        min_ns: 40,
        max_ns: 3_000,
        buckets,
    }];
    (counters, gauges, hists)
}

/// Golden-file test: the exposition format is a wire contract (CI's
/// metrics-smoke job and any real Prometheus scraper parse it), so its
/// exact shape is pinned byte-for-byte. Regenerate deliberately with
/// `BLESS=1 cargo test -p abp-trace --test exposition` after a reviewed
/// format change.
#[test]
fn golden_file_pins_the_exposition_format() {
    let (counters, gauges, hists) = golden_fixture();
    let rendered = render_prometheus(&counters, &gauges, &hists);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_exposition.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &rendered).expect("bless golden file");
    }
    let golden = std::fs::read_to_string(path).expect("golden file present");
    assert_eq!(
        rendered, golden,
        "exposition format drifted from the golden file; if intended, \
         regenerate with BLESS=1"
    );
}

/// Pulls `(le, cumulative_count)` pairs out of a rendered document, in
/// document order, with `+Inf` mapped to `f64::INFINITY`.
fn bucket_series(text: &str, family: &str) -> Vec<(f64, u64)> {
    let prefix = format!("{family}_bucket{{le=\"");
    text.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(&prefix)?;
            let (le_str, tail) = rest.split_once("\"}")?;
            let le = if le_str == "+Inf" {
                f64::INFINITY
            } else {
                le_str.parse().ok()?
            };
            Some((le, tail.trim().parse().ok()?))
        })
        .collect()
}

proptest! {
    /// Property: for any bucket contents, the rendered histogram series
    /// is cumulative — counts never decrease as `le` increases, the
    /// bounds strictly increase, the `+Inf` bucket comes last and equals
    /// the rendered `_count`.
    #[test]
    fn histogram_buckets_are_cumulative_and_monotone_in_le(
        counts in prop::collection::vec(0u64..1_000, 1..HIST_BUCKETS),
        extra in 0u64..5,
    ) {
        let total: u64 = counts.iter().sum();
        let hist = HistogramSnapshot {
            name: "prop_hist_ns",
            // A relaxed snapshot can see `count` ahead of the buckets;
            // the renderer must keep the series monotone regardless.
            count: total + extra,
            sum_ns: total.saturating_mul(100),
            min_ns: 1,
            max_ns: 1 << counts.len(),
            buckets: counts.clone(),
        };
        let text = render_prometheus(&[], &[], std::slice::from_ref(&hist));
        let series = bucket_series(&text, "prop_hist_seconds");
        prop_assert_eq!(series.len(), counts.len() + 1, "every bucket plus +Inf");
        let mut last_le = f64::NEG_INFINITY;
        let mut last_count = 0u64;
        for &(le, cum) in &series {
            prop_assert!(le > last_le, "le bounds must strictly increase");
            prop_assert!(cum >= last_count, "cumulative counts must not decrease");
            last_le = le;
            last_count = cum;
        }
        let (inf_le, inf_count) = *series.last().unwrap();
        prop_assert!(inf_le.is_infinite());
        let count_line = format!("prop_hist_seconds_count {}", inf_count);
        prop_assert!(text.contains(&count_line), "+Inf must equal _count");
        prop_assert_eq!(inf_count, total.max(total + extra));
    }
}

/// Determinism: `counters_snapshot()` orders instruments by name, not by
/// registration or touch order, so two back-to-back snapshots (and any
/// exposition rendered from them) list identical series in identical
/// order.
#[test]
fn counters_snapshot_ordering_is_stable_across_calls() {
    static ZETA: Counter = Counter::new("expo_test_zeta");
    static ALPHA: Counter = Counter::new("expo_test_alpha");
    static MID: DurationHistogram = DurationHistogram::new("expo_test_mid");
    abp_trace::set_enabled(true);
    // Touch in anti-alphabetical order: registration order must not leak.
    ZETA.add(1);
    MID.record(std::time::Duration::from_micros(5));
    ALPHA.add(2);
    let (c1, h1) = counters_snapshot();
    ZETA.add(1); // movement between snapshots must not reorder
    let (c2, h2) = counters_snapshot();
    abp_trace::set_enabled(false);

    let names1: Vec<&str> = c1.iter().map(|c| c.name).collect();
    let names2: Vec<&str> = c2.iter().map(|c| c.name).collect();
    assert_eq!(names1, names2, "ordering must be stable across calls");
    let mut sorted = names1.clone();
    sorted.sort_unstable();
    assert_eq!(names1, sorted, "ordering must be name-sorted");
    assert!(names1.contains(&"expo_test_alpha") && names1.contains(&"expo_test_zeta"));
    assert_eq!(
        h1.iter().map(|h| h.name).collect::<Vec<_>>(),
        h2.iter().map(|h| h.name).collect::<Vec<_>>(),
    );
    assert!(h1.iter().any(|h| h.name == "expo_test_mid"));
}
