//! The tracked bench baseline behind `abp bench`.
//!
//! Times the two hot kernels the grid-bin spatial index accelerates —
//! the survey connectivity sweep and the greedy candidate scan — in
//! both their brute-force and indexed forms, on the same field, and
//! verifies on every run that the indexed outputs are **bit-identical**
//! to the brute ones before reporting any timing. A bench that reports
//! a speedup for a kernel that changed the answer would be worthless;
//! here `identical: false` in the emitted JSON is a red flag CI fails
//! on.
//!
//! The survey kernel times the full sweep. The candidate-scan kernels
//! mirror the greedy deployment loops round for round but time **only
//! the scan/score phase** (brute: `propose_ranked`; incremental: scorer
//! construction + `ranked` + `apply_delta`): the per-round deployment
//! work — adding the beacon and incrementally re-surveying — is
//! executed identically on both sides and excluded, so the reported
//! ratio is the speedup of the kernel itself, not of the shared
//! plumbing around it. Each kernel first runs the *real* `greedy_batch`
//! / `greedy_batch_incremental` entry points and verifies the mirrored
//! loops place bit-identically to them.
//!
//! The `survey_sweep_scratch` kernel times the steady-state trial
//! loop's two forms: a fresh [`ErrorMap::survey_indexed`] per sample
//! (what every trial paid before scratch reuse) against
//! [`ErrorMap::survey_indexed_with`] threading one [`SurveyScratch`]
//! across samples (what the Monte-Carlo engine now does). When the
//! binary is built with `--features count-allocs` the report also
//! carries the reused path's steady-state allocator traffic — the
//! `alloc` block's `allocs_per_trial` / `bytes_per_trial`, measured
//! with [`abp_trace::thread_snapshot`] deltas around the post-warmup
//! scratch samples only — and the CLI fails the run if it is nonzero.
//!
//! Timings are reported as the median over `repeats` interleaved
//! samples with a distribution-free 95% confidence interval on the
//! median (binomial order-statistic ranks, clamped to the observed
//! range — exact for small sample counts, no normality assumption).
//! See `docs/PERFORMANCE.md` for how to read the emitted
//! `BENCH_sweep.json`.
//!
//! With [`BenchConfig::skip_brute`] set (the CLI's `--skip-brute`) the
//! brute/reference sides are not run at all: each kernel reports its
//! indexed timing on both sides, `speedup` degenerates to 1, and the
//! bit-identity gate is **disabled** — the run is for fast local
//! iteration on the indexed kernels only, never for tracked baselines.

use abp_field::BeaconField;
use abp_geom::{Lattice, Point, Terrain};
use abp_localize::UnheardPolicy;
use abp_placement::{
    greedy_batch, greedy_batch_incremental, pick_unoccupied, GridPlacement, IncrementalGrid,
    IncrementalMax, IncrementalScorer, MaxPlacement, PlacementAlgorithm, SurveyView,
};
use abp_radio::{IdealDisk, Propagation};
use abp_stats::Summary;
use abp_survey::{ErrorMap, SurveyScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Schema identifier written into the JSON report; CI validates it.
/// `/2` added the `survey_sweep_scratch` kernel and the `alloc` block
/// (alloc-counting flag + steady-state allocs/bytes per trial).
/// `/3` added the `serve_qps` block: the `abp-serve` daemon driven by
/// the in-process load harness — client-observed p50/p95/p99 latency,
/// throughput, the served-vs-batch bit-identity gate, and the serving
/// path's allocs/request (pinned at 0 under `count-allocs`).
/// `/4` extends `serve_qps` with the telemetry-overhead figures: the
/// main run now serves with per-opcode telemetry on and a live
/// `/metrics` HTTP listener scraped concurrently (`scrapes`,
/// `scrape_p50_s`, `scrape_max_s`), and a second telemetry-off run of
/// the same load contributes `qps_metrics_off` and
/// `telemetry_overhead_pct`.
/// `/5` adds the `overload` block: the daemon flooded at twice its
/// `max_conns` admission cap — shed-connection counts, the accepted
/// requests' p50/p99, the `bounded` verdict against the absolute p99
/// budget, and the zero-alloc gate held under flood.
/// `/6` adds the `scaling` block (the tiled survey sweep timed at a
/// ladder of thread counts, with parallel efficiency and a per-count
/// bit-identity gate), a `speedup_ci95` interval on every kernel (the
/// CLI warns when it straddles 1.0), and replaces the single-sample
/// telemetry-overhead point estimate with `telemetry_overhead`: median
/// and 95% CI over interleaved on/off load pairs, alternating run
/// order to cancel drift.
pub const SCHEMA: &str = "abp-bench-sweep/6";

/// Scenario and sampling configuration for one bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Label recorded in the report (`paper`, `tiny`, or custom).
    pub preset: String,
    /// Field size the kernels run against.
    pub beacons: usize,
    /// Survey lattice step in meters.
    pub step: f64,
    /// Terrain side in meters.
    pub side: f64,
    /// Nominal radio range `R` in meters.
    pub nominal_range: f64,
    /// Timed samples per kernel variant.
    pub repeats: usize,
    /// Beacons placed per greedy candidate-scan sample. Larger values
    /// amortize the incremental scorer's one-time construction (which
    /// is counted in its timing) over more rounds, matching how the
    /// experiment engine holds a scorer across a deployment sequence.
    pub greedy_k: usize,
    /// Seed for the random beacon field.
    pub seed: u64,
    /// Skip the brute/reference sides entirely: indexed timings are
    /// reported on both sides, speedups degenerate to 1, and the
    /// bit-identity gate is disabled. For fast local iteration only.
    pub skip_brute: bool,
    /// Client threads the serve load harness drives.
    pub serve_clients: usize,
    /// Measured requests per serve client (after warm-up).
    pub serve_requests: usize,
    /// Interleaved telemetry on/off load pairs for the overhead CI.
    /// Each pair runs the full serve load twice (order alternating
    /// between pairs); the per-pair QPS deltas feed the
    /// `telemetry_overhead` median and confidence interval.
    pub serve_ab_pairs: usize,
    /// Thread counts for the survey-sweep scaling ladder. Empty means
    /// auto: powers of two from 1 up to the detected parallelism,
    /// plus the detected count itself when it is not a power of two.
    pub scale_threads: Vec<usize>,
}

impl BenchConfig {
    /// Paper scale: the dense 100-beacon field on the paper's 100 m
    /// terrain, surveyed at 1 m — the configuration the ≥2× speedup
    /// acceptance bar is measured at.
    pub fn paper_scale() -> Self {
        BenchConfig {
            preset: "paper".into(),
            beacons: 100,
            step: 1.0,
            side: 100.0,
            nominal_range: 15.0,
            repeats: 17,
            greedy_k: 16,
            seed: 42,
            skip_brute: false,
            serve_clients: 4,
            serve_requests: 2000,
            serve_ab_pairs: 3,
            scale_threads: Vec::new(),
        }
    }

    /// A seconds-scale smoke configuration for CI.
    pub fn tiny() -> Self {
        BenchConfig {
            preset: "tiny".into(),
            beacons: 30,
            step: 4.0,
            side: 100.0,
            nominal_range: 15.0,
            repeats: 3,
            greedy_k: 3,
            seed: 42,
            skip_brute: false,
            serve_clients: 2,
            serve_requests: 150,
            serve_ab_pairs: 2,
            scale_threads: Vec::new(),
        }
    }
}

/// Median wall-clock of one kernel variant over the timed samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Timing {
    /// Median seconds per sample.
    pub median_s: f64,
    /// Lower bound of the 95% CI on the median.
    pub ci95_lo_s: f64,
    /// Upper bound of the 95% CI on the median.
    pub ci95_hi_s: f64,
    /// Number of timed samples.
    pub samples: usize,
}

impl Timing {
    /// Summarizes raw per-sample seconds: median plus a
    /// distribution-free 95% CI on the median from binomial
    /// order-statistic ranks (clamped to the observed min/max, so with
    /// very few samples the interval degenerates to the full range).
    fn from_samples(seconds: &[f64]) -> Timing {
        let (median_s, ci95_lo_s, ci95_hi_s) = median_ci95(seconds);
        Timing {
            median_s,
            ci95_lo_s,
            ci95_hi_s,
            samples: seconds.len(),
        }
    }
}

/// Median and distribution-free 95% CI on the median (binomial
/// order-statistic ranks, clamped to the observed range). Shared by
/// the per-kernel [`Timing`] summaries and the telemetry-overhead
/// percentage samples, which can legitimately be negative.
fn median_ci95(values: &[f64]) -> (f64, f64, f64) {
    assert!(!values.is_empty(), "need at least one timed sample");
    let summary = Summary::from_slice(values);
    let sorted = summary.sorted_values();
    let n = sorted.len();
    let half = 0.98 * (n as f64).sqrt();
    let mid = (n as f64 - 1.0) / 2.0;
    let lo = ((mid - half).floor().max(0.0)) as usize;
    let hi = ((mid + half).ceil() as usize).min(n - 1);
    (summary.median(), sorted[lo], sorted[hi])
}

/// One kernel's brute-vs-indexed comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Kernel identifier (`survey_sweep`, `candidate_scan_grid`, ...).
    pub name: &'static str,
    /// Whether the indexed variant produced bit-identical output on
    /// every sample. Timings are meaningless when this is `false`.
    pub identical: bool,
    /// `brute.median_s / indexed.median_s`.
    pub speedup: f64,
    /// Conservative 95% interval on the speedup: the ratio of the two
    /// medians' CI endpoints, `(brute.lo / indexed.hi, brute.hi /
    /// indexed.lo)`. When this interval straddles 1.0 the measured
    /// speedup is not distinguishable from noise and the CLI warns.
    pub speedup_ci95: (f64, f64),
    /// Brute-force timing.
    pub brute: Timing,
    /// Indexed timing.
    pub indexed: Timing,
}

impl KernelResult {
    /// Whether the speedup interval contains 1.0 — i.e. the bench
    /// cannot distinguish the indexed kernel from the brute one at
    /// this sample count. Skipped-brute results (degenerate interval
    /// exactly `[1, 1]`) do not count as straddling.
    pub fn speedup_ci_straddles_unity(&self) -> bool {
        let (lo, hi) = self.speedup_ci95;
        lo < 1.0 && 1.0 < hi
    }
}

/// Steady-state allocator traffic of the scratch-reused survey path,
/// measured over the post-warmup samples of the `survey_sweep_scratch`
/// kernel. Meaningful only when [`AllocStats::counting`] is `true`
/// (the binary was built with `--features count-allocs`); otherwise
/// both rates are reported as 0 because nothing was counted.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AllocStats {
    /// Whether the counting global allocator was compiled in.
    pub counting: bool,
    /// Mean allocator calls per reused-scratch survey (the zero-alloc
    /// gate asserts this is exactly 0 when `counting`).
    pub allocs_per_trial: f64,
    /// Mean bytes requested per reused-scratch survey.
    pub bytes_per_trial: f64,
}

/// One rung of the survey-sweep scaling ladder: the tiled sweep timed
/// at a fixed worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Worker threads the tile scheduler ran with.
    pub threads: usize,
    /// Timing of the full indexed survey at this thread count.
    pub timing: Timing,
    /// Parallel efficiency: `t1_median / (threads * tn_median)`.
    /// 1.0 is perfect linear scaling; the single-thread rung is 1.0 by
    /// construction.
    pub efficiency: f64,
    /// Whether every sample at this count was bit-identical to the
    /// reference survey. The tile scheduler guarantees this by design;
    /// a `false` here fails CI.
    pub identical: bool,
}

/// The `scaling` block: the tiled survey sweep across a ladder of
/// thread counts, sampled round-robin so machine drift biases every
/// rung equally.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingReport {
    /// Parallelism detected on the benched machine
    /// (`std::thread::available_parallelism`). On a 1-core runner the
    /// auto ladder collapses to `[1]` — consumers must not assume
    /// multi-thread rungs exist.
    pub max_threads: usize,
    /// One entry per benched thread count, ascending.
    pub points: Vec<ScalingPoint>,
}

/// Throughput cost of live telemetry, estimated from interleaved
/// on/off serve-load pairs rather than a single A/B sample. The old
/// `/5` point estimate regularly reported *negative* overhead (the
/// instrumented run measuring faster than its baseline) because one
/// pair of runs cannot separate the effect from drift; the median over
/// alternating-order pairs plus a CI makes the noise visible instead
/// of laundering it into a signed point value.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryOverhead {
    /// Per-pair overhead percentages, in run order:
    /// `(off.qps - on.qps) / off.qps * 100`.
    pub pair_pcts: Vec<f64>,
    /// Median of the per-pair percentages.
    pub median_pct: f64,
    /// Lower bound of the 95% CI on the median.
    pub ci95_lo_pct: f64,
    /// Upper bound of the 95% CI on the median.
    pub ci95_hi_pct: f64,
}

impl TelemetryOverhead {
    /// Whether the CI contains zero — i.e. the measured overhead is
    /// indistinguishable from noise at this pair count.
    pub fn ci_straddles_zero(&self) -> bool {
        self.ci95_lo_pct < 0.0 && 0.0 < self.ci95_hi_pct
    }
}

/// The full report `abp bench` serializes to `BENCH_sweep.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The configuration the kernels ran under.
    pub config: BenchConfig,
    /// Per-kernel results.
    pub kernels: Vec<KernelResult>,
    /// Allocation accounting for the reused-scratch survey path.
    pub alloc: AllocStats,
    /// The `abp-serve` daemon under the in-process load harness with
    /// per-opcode telemetry ON and the `/metrics` HTTP listener scraped
    /// concurrently: client-observed latency quantiles, throughput, the
    /// served-vs-batch bit-identity gate, and the serving path's
    /// allocation rate.
    pub serve: abp_serve::bench::LoadReport,
    /// The same load with telemetry OFF and no metrics listener — the
    /// baseline the telemetry-overhead figure is measured against.
    pub serve_off: abp_serve::bench::LoadReport,
    /// The daemon flooded at twice its admission cap: proof that load
    /// shedding keeps the accepted requests' tail latency bounded (and
    /// the request path allocation-free) while the excess is answered
    /// `Overloaded`.
    pub overload: abp_serve::bench::OverloadReport,
    /// The tiled survey sweep across the thread-count ladder.
    pub scaling: ScalingReport,
    /// Telemetry overhead from the interleaved on/off load pairs.
    pub telemetry: TelemetryOverhead,
}

impl BenchReport {
    /// Whether every kernel's indexed variant matched its brute output
    /// bit for bit — and the served localization path matched the batch
    /// pipeline over the full lattice (in both serve runs).
    pub fn all_identical(&self) -> bool {
        self.kernels.iter().all(|k| k.identical)
            && self.serve.identical
            && self.serve_off.identical
            && self.scaling.points.iter().all(|p| p.identical)
    }

    /// Throughput lost to live telemetry, in percent of the
    /// telemetry-off baseline: the median over the interleaved on/off
    /// pairs (negative medians mean the effect is inside measurement
    /// noise — check [`TelemetryOverhead::ci_straddles_zero`]).
    pub fn telemetry_overhead_pct(&self) -> f64 {
        self.telemetry.median_pct
    }

    /// Serializes the report as a single JSON object (schema
    /// [`SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"preset\": \"{}\",\n",
            self.config.preset.replace(['"', '\\'], "_")
        ));
        out.push_str(&format!("  \"beacons\": {},\n", self.config.beacons));
        out.push_str(&format!("  \"step\": {},\n", json_f64(self.config.step)));
        out.push_str(&format!(
            "  \"terrain_side\": {},\n",
            json_f64(self.config.side)
        ));
        out.push_str(&format!(
            "  \"nominal_range\": {},\n",
            json_f64(self.config.nominal_range)
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"repeats\": {},\n", self.config.repeats));
        out.push_str(&format!("  \"greedy_k\": {},\n", self.config.greedy_k));
        out.push_str(&format!(
            "  \"serve_ab_pairs\": {},\n",
            self.config.serve_ab_pairs
        ));
        out.push_str(&format!("  \"skip_brute\": {},\n", self.config.skip_brute));
        out.push_str(&format!(
            "  \"alloc\": {{\"counting\": {}, \"allocs_per_trial\": {}, \"bytes_per_trial\": {}}},\n",
            self.alloc.counting,
            json_f64(self.alloc.allocs_per_trial),
            json_f64(self.alloc.bytes_per_trial)
        ));
        let s = &self.serve;
        out.push_str("  \"serve_qps\": {\n");
        out.push_str(&format!("    \"clients\": {},\n", s.clients));
        out.push_str(&format!("    \"requests\": {},\n", s.requests));
        out.push_str(&format!("    \"qps\": {},\n", json_f64(s.qps)));
        out.push_str(&format!("    \"p50_s\": {},\n", json_f64(s.p50_s)));
        out.push_str(&format!("    \"p95_s\": {},\n", json_f64(s.p95_s)));
        out.push_str(&format!("    \"p99_s\": {},\n", json_f64(s.p99_s)));
        out.push_str(&format!("    \"min_s\": {},\n", json_f64(s.min_s)));
        out.push_str(&format!("    \"max_s\": {},\n", json_f64(s.max_s)));
        out.push_str(&format!(
            "    \"alloc\": {{\"counting\": {}, \"allocs_per_request\": {}, \"bytes_per_request\": {}}},\n",
            s.alloc_counting,
            json_f64(s.allocs_per_request),
            json_f64(s.bytes_per_request)
        ));
        out.push_str(&format!("    \"scrapes\": {},\n", s.scrapes));
        out.push_str(&format!(
            "    \"scrape_p50_s\": {},\n",
            json_f64(s.scrape_p50_s)
        ));
        out.push_str(&format!(
            "    \"scrape_max_s\": {},\n",
            json_f64(s.scrape_max_s)
        ));
        out.push_str(&format!(
            "    \"qps_metrics_off\": {},\n",
            json_f64(self.serve_off.qps)
        ));
        let t = &self.telemetry;
        out.push_str(&format!(
            "    \"telemetry_overhead\": {{\"pairs\": {}, \"median_pct\": {}, \"ci95_lo_pct\": {}, \"ci95_hi_pct\": {}}},\n",
            t.pair_pcts.len(),
            json_f64(t.median_pct),
            json_f64(t.ci95_lo_pct),
            json_f64(t.ci95_hi_pct)
        ));
        out.push_str(&format!("    \"identical\": {},\n", s.identical));
        out.push_str(&format!("    \"final_epoch\": {}\n", s.final_epoch));
        out.push_str("  },\n");
        let o = &self.overload;
        out.push_str("  \"overload\": {\n");
        out.push_str(&format!(
            "    \"offered_clients\": {},\n",
            o.offered_clients
        ));
        out.push_str(&format!("    \"max_conns\": {},\n", o.max_conns));
        out.push_str(&format!("    \"requests\": {},\n", o.requests));
        out.push_str(&format!(
            "    \"shed_connections\": {},\n",
            o.shed_connections
        ));
        out.push_str(&format!("    \"shed_rate\": {},\n", json_f64(o.shed_rate)));
        out.push_str(&format!("    \"p50_s\": {},\n", json_f64(o.p50_s)));
        out.push_str(&format!("    \"p99_s\": {},\n", json_f64(o.p99_s)));
        out.push_str(&format!(
            "    \"p99_bound_s\": {},\n",
            json_f64(abp_serve::bench::OVERLOAD_P99_BOUND_S)
        ));
        out.push_str(&format!("    \"bounded\": {},\n", o.bounded));
        out.push_str(&format!(
            "    \"alloc\": {{\"counting\": {}, \"allocs_per_request\": {}}}\n",
            o.alloc_counting,
            json_f64(o.allocs_per_request)
        ));
        out.push_str("  },\n");
        out.push_str("  \"scaling\": {\n");
        out.push_str(&format!(
            "    \"max_threads\": {},\n",
            self.scaling.max_threads
        ));
        out.push_str("    \"points\": [\n");
        for (i, p) in self.scaling.points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"threads\": {}, \"timing\": {}, \"efficiency\": {}, \"identical\": {}}}{}\n",
                p.threads,
                timing_json(&p.timing),
                json_f64(p.efficiency),
                p.identical,
                if i + 1 == self.scaling.points.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("    ]\n");
        out.push_str("  },\n");
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", k.name));
            out.push_str(&format!("      \"identical\": {},\n", k.identical));
            out.push_str(&format!("      \"speedup\": {},\n", json_f64(k.speedup)));
            out.push_str(&format!(
                "      \"speedup_ci95\": [{}, {}],\n",
                json_f64(k.speedup_ci95.0),
                json_f64(k.speedup_ci95.1)
            ));
            out.push_str(&format!("      \"brute\": {},\n", timing_json(&k.brute)));
            out.push_str(&format!("      \"indexed\": {}\n", timing_json(&k.indexed)));
            out.push_str(if i + 1 == self.kernels.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Formats a finite `f64` as a JSON number (NaN/inf would not be valid
/// JSON; timings and speedups are finite by construction).
fn json_f64(x: f64) -> String {
    assert!(x.is_finite(), "non-finite value in bench report: {x}");
    format!("{x}")
}

fn timing_json(t: &Timing) -> String {
    format!(
        "{{\"median_s\": {}, \"ci95_lo_s\": {}, \"ci95_hi_s\": {}, \"samples\": {}}}",
        json_f64(t.median_s),
        json_f64(t.ci95_lo_s),
        json_f64(t.ci95_hi_s),
        t.samples
    )
}

/// Bit-compares two error maps over every lattice point (NaN-excluded
/// points compare equal only to NaN-excluded points).
fn maps_bit_identical(a: &ErrorMap, b: &ErrorMap) -> bool {
    a.lattice().indices().all(|ix| {
        a.error_at(ix).map(f64::to_bits) == b.error_at(ix).map(f64::to_bits)
            && a.heard_at(ix) == b.heard_at(ix)
    })
}

/// Runs both variants of every kernel and assembles the report.
///
/// Samples are interleaved (brute, indexed, brute, ...) so slow drift
/// in machine load biases both variants equally, and every pair is
/// checked for bit-identical output as it is produced.
pub fn run_bench(cfg: &BenchConfig) -> BenchReport {
    let terrain = Terrain::square(cfg.side);
    let lattice = Lattice::new(terrain, cfg.step);
    let field =
        BeaconField::random_uniform(cfg.beacons, terrain, &mut StdRng::seed_from_u64(cfg.seed));
    let model = IdealDisk::new(cfg.nominal_range);
    let policy = UnheardPolicy::TerrainCenter;
    let base_map = ErrorMap::survey(&lattice, &field, &model, policy);

    let mut kernels = Vec::new();

    // Kernel 1: the survey connectivity sweep, point-major brute vs
    // grid-bin indexed.
    {
        let mut brute_s = Vec::with_capacity(cfg.repeats);
        let mut indexed_s = Vec::with_capacity(cfg.repeats);
        let mut identical = true;
        // Warmup (untimed) to fault in code and caches.
        if !cfg.skip_brute {
            let _ = ErrorMap::survey_point_major(&lattice, &field, &model, policy);
        }
        let _ = ErrorMap::survey_indexed(&lattice, &field, &model, policy);
        for _ in 0..cfg.repeats {
            if !cfg.skip_brute {
                let t = Instant::now();
                let brute = ErrorMap::survey_point_major(&lattice, &field, &model, policy);
                brute_s.push(t.elapsed().as_secs_f64());
                identical &= maps_bit_identical(&brute, &base_map);
            }
            let t = Instant::now();
            let indexed = ErrorMap::survey_indexed(&lattice, &field, &model, policy);
            indexed_s.push(t.elapsed().as_secs_f64());
            if !cfg.skip_brute {
                identical &= maps_bit_identical(&indexed, &base_map);
            }
        }
        kernels.push(if cfg.skip_brute {
            kernel_result_skipped("survey_sweep", &indexed_s)
        } else {
            kernel_result("survey_sweep", identical, &brute_s, &indexed_s)
        });
    }

    // Kernel 2: the steady-state trial loop — a fresh survey per sample
    // (allocating its grid, index, and SoA every time) vs the same
    // survey through one reused `SurveyScratch`. This is the path the
    // Monte-Carlo engine runs per trial; the alloc stats come from the
    // reused side's post-warmup samples.
    let alloc;
    {
        let mut fresh_s = Vec::with_capacity(cfg.repeats);
        let mut reused_s = Vec::with_capacity(cfg.repeats);
        let mut identical = true;
        let mut scratch = SurveyScratch::new();
        // Warmup: the first reused pass grows the scratch buffers; the
        // second proves they are warm so the timed/counted samples below
        // measure the steady state only.
        for _ in 0..2 {
            let warm =
                ErrorMap::survey_indexed_with(&lattice, &field, &model, policy, &mut scratch);
            scratch.recycle(warm);
        }
        let mut allocs_total: u64 = 0;
        let mut bytes_total: u64 = 0;
        for _ in 0..cfg.repeats {
            if !cfg.skip_brute {
                let t = Instant::now();
                let fresh = ErrorMap::survey_indexed(&lattice, &field, &model, policy);
                fresh_s.push(t.elapsed().as_secs_f64());
                identical &= maps_bit_identical(&fresh, &base_map);
            }
            let before = abp_trace::thread_snapshot();
            let t = Instant::now();
            let reused =
                ErrorMap::survey_indexed_with(&lattice, &field, &model, policy, &mut scratch);
            reused_s.push(t.elapsed().as_secs_f64());
            let delta = abp_trace::thread_snapshot().delta_since(before);
            allocs_total += delta.allocs;
            bytes_total += delta.bytes;
            if !cfg.skip_brute {
                identical &= maps_bit_identical(&reused, &base_map);
            }
            scratch.recycle(reused);
        }
        let n = cfg.repeats.max(1) as f64;
        alloc = AllocStats {
            counting: abp_trace::counting(),
            allocs_per_trial: allocs_total as f64 / n,
            bytes_per_trial: bytes_total as f64 / n,
        };
        kernels.push(if cfg.skip_brute {
            kernel_result_skipped("survey_sweep_scratch", &reused_s)
        } else {
            kernel_result("survey_sweep_scratch", identical, &fresh_s, &reused_s)
        });
    }

    // Kernels 3–4: the greedy candidate scan, full re-score vs
    // incremental delta re-score, for Grid and Max.
    let grid_algo = GridPlacement::paper(terrain, cfg.nominal_range);
    kernels.push(candidate_scan_kernel(
        "candidate_scan_grid",
        &grid_algo,
        |m| IncrementalGrid::new(grid_algo, m),
        &field,
        &base_map,
        &model,
        cfg,
    ));
    kernels.push(candidate_scan_kernel(
        "candidate_scan_max",
        &MaxPlacement::new(),
        IncrementalMax::new,
        &field,
        &base_map,
        &model,
        cfg,
    ));

    // The scaling ladder: the same indexed survey through the tile
    // scheduler at each benched thread count, with scratch reuse and a
    // per-sample bit-identity gate against the reference map.
    let scaling = run_scaling(cfg, &lattice, &field, &model, policy, &base_map);

    // Kernel 5 (reported as `serve_qps`, not a brute/indexed pair): the
    // online daemon under concurrent TCP load — the serving layer's
    // throughput, tail latency, allocation rate, and bit-identity gate.
    // The load runs `serve_ab_pairs` times each with telemetry OFF (no
    // listener) and ON (live `/metrics` scraped concurrently), pairs
    // interleaved and run order alternating between pairs, so slow
    // drift cancels out of the per-pair overhead percentages.
    let load = abp_serve::bench::LoadConfig {
        clients: cfg.serve_clients,
        requests_per_client: cfg.serve_requests,
        warmup_per_client: 64,
        place_every: 16,
        seed: cfg.seed,
    };
    let mut serve_cfg = abp_serve::daemon::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        beacons: cfg.beacons,
        side: cfg.side,
        step: cfg.step,
        nominal_range: cfg.nominal_range,
        seed: cfg.seed,
        telemetry: false,
        metrics_addr: None,
        // The resilience knobs stay at their neutral defaults for the
        // throughput runs; the overload run below arms `max_conns`
        // itself.
        max_conns: 0,
        shed_watermark: 0,
        deadline: None,
        frame_window: std::time::Duration::from_secs(10),
        idle_timeout: std::time::Duration::from_secs(300),
        state_path: None,
        panic_seed: None,
        // Snapshot rebuilds stay single-tile so the A/B pairs measure
        // telemetry cost alone, not scheduler jitter.
        survey_threads: 1,
    };
    let run_pair_side = |serve_cfg: &mut abp_serve::daemon::ServeConfig, on: bool| {
        serve_cfg.telemetry = on;
        serve_cfg.metrics_addr = on.then(|| "127.0.0.1:0".into());
        abp_serve::bench::run_load(serve_cfg, &load)
            .expect("serve load harness failed (loopback bind or client error)")
    };
    let pairs = cfg.serve_ab_pairs.max(1);
    let mut pair_pcts = Vec::with_capacity(pairs);
    let mut serve = None;
    let mut serve_off = None;
    for pair in 0..pairs {
        // Alternate which side runs first so any monotone drift in
        // machine load biases the overhead estimate both ways.
        let (off, on) = if pair % 2 == 0 {
            let off = run_pair_side(&mut serve_cfg, false);
            let on = run_pair_side(&mut serve_cfg, true);
            (off, on)
        } else {
            let on = run_pair_side(&mut serve_cfg, true);
            let off = run_pair_side(&mut serve_cfg, false);
            (off, on)
        };
        pair_pcts.push(if off.qps > 0.0 {
            (off.qps - on.qps) / off.qps * 100.0
        } else {
            0.0
        });
        serve = Some(on);
        serve_off = Some(off);
    }
    let serve = serve.expect("at least one A/B pair ran");
    let serve_off = serve_off.expect("at least one A/B pair ran");
    let (median_pct, ci95_lo_pct, ci95_hi_pct) = median_ci95(&pair_pcts);
    let telemetry = TelemetryOverhead {
        pair_pcts,
        median_pct,
        ci95_lo_pct,
        ci95_hi_pct,
    };

    // Overload run: the same daemon shape flooded at twice its
    // admission cap (`run_overload` pins `max_conns` to the load's
    // client count and offers 2× that). Telemetry off and no listener:
    // the block isolates what admission control itself does to the
    // accepted tail.
    serve_cfg.telemetry = false;
    serve_cfg.metrics_addr = None;
    let overload = abp_serve::bench::run_overload(&serve_cfg, &load)
        .expect("serve overload harness failed (loopback bind or client error)");

    BenchReport {
        config: cfg.clone(),
        kernels,
        alloc,
        serve,
        serve_off,
        overload,
        scaling,
        telemetry,
    }
}

/// The thread counts the scaling ladder runs at: the configured list
/// (sorted, deduplicated, 1 forced in so efficiency has its anchor),
/// or — when empty — powers of two from 1 up to the detected
/// parallelism plus the detected count itself.
fn scaling_ladder(cfg: &BenchConfig, max_threads: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = if cfg.scale_threads.is_empty() {
        let mut c = Vec::new();
        let mut t = 1;
        while t <= max_threads {
            c.push(t);
            t *= 2;
        }
        c.push(max_threads);
        c
    } else {
        let mut c = cfg.scale_threads.clone();
        c.retain(|&t| t > 0);
        c.push(1);
        c
    };
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Times the tiled indexed survey at every rung of the thread ladder.
///
/// Samples are taken round-robin across the rungs (one sample per
/// count per round) so machine drift biases every count equally — the
/// same discipline the kernel pairs use. Each rung keeps its own
/// [`SurveyScratch`] warm across samples, and every sample is
/// bit-compared against the reference map: the tile scheduler's
/// deterministic fold order makes any thread count bit-identical to
/// single-threaded, and this gate proves it on the benched build.
fn run_scaling(
    cfg: &BenchConfig,
    lattice: &Lattice,
    field: &BeaconField,
    model: &dyn Propagation,
    policy: UnheardPolicy,
    base_map: &ErrorMap,
) -> ScalingReport {
    let max_threads = abp_survey::resolve_survey_threads(0);
    let counts = scaling_ladder(cfg, max_threads);
    let mut scratches: Vec<SurveyScratch> = counts.iter().map(|_| SurveyScratch::new()).collect();
    let mut samples: Vec<Vec<f64>> = counts.iter().map(|_| Vec::new()).collect();
    let mut identical: Vec<bool> = counts.iter().map(|_| true).collect();
    // Warmup: grow each rung's scratch (and spawn its worker pool once)
    // so the timed rounds measure the steady state.
    for (i, &threads) in counts.iter().enumerate() {
        let warm = ErrorMap::survey_indexed_with_threads(
            lattice,
            field,
            model,
            policy,
            &mut scratches[i],
            threads,
        );
        scratches[i].recycle(warm);
    }
    for _ in 0..cfg.repeats {
        for (i, &threads) in counts.iter().enumerate() {
            let t = Instant::now();
            let map = ErrorMap::survey_indexed_with_threads(
                lattice,
                field,
                model,
                policy,
                &mut scratches[i],
                threads,
            );
            samples[i].push(t.elapsed().as_secs_f64());
            identical[i] &= maps_bit_identical(&map, base_map);
            scratches[i].recycle(map);
        }
    }
    let timings: Vec<Timing> = samples.iter().map(|s| Timing::from_samples(s)).collect();
    let t1 = timings[0].median_s; // counts[0] == 1 by construction
    let points = counts
        .iter()
        .zip(timings)
        .zip(identical)
        .map(|((&threads, timing), identical)| {
            let efficiency = t1 / (threads as f64 * timing.median_s.max(f64::MIN_POSITIVE));
            ScalingPoint {
                threads,
                timing,
                efficiency,
                identical,
            }
        })
        .collect();
    ScalingReport {
        max_threads,
        points,
    }
}

/// One mirrored greedy run: the deployed positions, the resulting map,
/// and the seconds spent in the candidate-scan phase only.
struct ScanRun {
    positions: Vec<Point>,
    map: ErrorMap,
    scan_s: f64,
}

/// Mirrors [`greedy_batch`] round for round (same proposals, same
/// occupied-candidate rule via [`pick_unoccupied`]), accumulating
/// wall-clock only around `propose_ranked` — the brute candidate scan.
/// The deployment work both variants share (`field.add_beacon`, the
/// incremental re-survey) is excluded from the timing; it is identical
/// on the brute and incremental sides by construction, so including it
/// would only dilute the kernel being measured.
fn brute_scan_run(
    algorithm: &dyn PlacementAlgorithm,
    base_field: &BeaconField,
    base_map: &ErrorMap,
    model: &dyn Propagation,
    k: usize,
) -> ScanRun {
    let mut field = base_field.clone();
    let mut map = base_map.clone();
    let mut rng = StdRng::seed_from_u64(0);
    let mut positions = Vec::with_capacity(k);
    let mut scan_s = 0.0;
    for _ in 0..k {
        let view = SurveyView {
            map: &map,
            field: &field,
            model,
        };
        let t = Instant::now();
        let candidates = algorithm.propose_ranked(&view, field.len() + 1, &mut rng);
        scan_s += t.elapsed().as_secs_f64();
        let (pos, _forced) = pick_unoccupied(&candidates, &field);
        let id = field.add_beacon(pos);
        let beacon = *field.get(id).expect("beacon just added");
        map.add_beacon(&beacon, model);
        positions.push(pos);
    }
    ScanRun {
        positions,
        map,
        scan_s,
    }
}

/// Mirrors [`greedy_batch_incremental`] round for round, accumulating
/// wall-clock around the scorer's scan-side work only: construction
/// (the one-time full score build the incremental side pays instead of
/// re-scanning every round), `ranked`, and `apply_delta`. The shared
/// deployment work is excluded, as in [`brute_scan_run`].
fn incremental_scan_run<S: IncrementalScorer>(
    make_scorer: impl FnOnce(&ErrorMap) -> S,
    base_field: &BeaconField,
    base_map: &ErrorMap,
    model: &dyn Propagation,
    k: usize,
) -> ScanRun {
    let mut field = base_field.clone();
    let mut map = base_map.clone();
    let mut positions = Vec::with_capacity(k);
    let t = Instant::now();
    let mut scorer = make_scorer(&map);
    let mut scan_s = t.elapsed().as_secs_f64();
    for _ in 0..k {
        let t = Instant::now();
        let candidates = scorer.ranked(&map, field.len() + 1);
        scan_s += t.elapsed().as_secs_f64();
        let (pos, _forced) = pick_unoccupied(&candidates, &field);
        let id = field.add_beacon(pos);
        let beacon = *field.get(id).expect("beacon just added");
        let delta = map.add_beacon(&beacon, model);
        let t = Instant::now();
        scorer.apply_delta(&map, delta);
        scan_s += t.elapsed().as_secs_f64();
        positions.push(pos);
    }
    ScanRun {
        positions,
        map,
        scan_s,
    }
}

/// Runs one candidate-scan kernel: reference outcomes from the *real*
/// greedy loops first (proving the mirrored timing loops place
/// identically), then `repeats` interleaved timed samples of the
/// brute-scan and incremental-scan mirrors.
fn candidate_scan_kernel<S: IncrementalScorer>(
    name: &'static str,
    algorithm: &dyn PlacementAlgorithm,
    make_scorer: impl Fn(&ErrorMap) -> S,
    field: &BeaconField,
    base_map: &ErrorMap,
    model: &dyn Propagation,
    cfg: &BenchConfig,
) -> KernelResult {
    if cfg.skip_brute {
        // Timing-only mode: no brute mirror, no reference verification.
        let _ = incremental_scan_run(&make_scorer, field, base_map, model, cfg.greedy_k);
        let mut indexed_s = Vec::with_capacity(cfg.repeats);
        for _ in 0..cfg.repeats {
            let i = incremental_scan_run(&make_scorer, field, base_map, model, cfg.greedy_k);
            indexed_s.push(i.scan_s);
        }
        return kernel_result_skipped(name, &indexed_s);
    }
    // Reference: the actual production entry points, untimed. These also
    // serve as warmup for the timed mirrors below.
    let (ref_positions, ref_map) = {
        let (mut f, mut m) = (field.clone(), base_map.clone());
        let out = greedy_batch(
            algorithm,
            &mut m,
            &mut f,
            model,
            cfg.greedy_k,
            &mut StdRng::seed_from_u64(0),
        );
        (out.positions, m)
    };
    let mut identical = {
        let (mut f, mut m) = (field.clone(), base_map.clone());
        let mut scorer = make_scorer(&m);
        let out = greedy_batch_incremental(&mut scorer, &mut m, &mut f, model, cfg.greedy_k);
        out.positions == ref_positions && maps_bit_identical(&m, &ref_map)
    };

    let mut brute_s = Vec::with_capacity(cfg.repeats);
    let mut indexed_s = Vec::with_capacity(cfg.repeats);
    for _ in 0..cfg.repeats {
        let b = brute_scan_run(algorithm, field, base_map, model, cfg.greedy_k);
        let i = incremental_scan_run(&make_scorer, field, base_map, model, cfg.greedy_k);
        identical &= b.positions == ref_positions
            && i.positions == ref_positions
            && maps_bit_identical(&b.map, &ref_map)
            && maps_bit_identical(&i.map, &ref_map);
        brute_s.push(b.scan_s);
        indexed_s.push(i.scan_s);
    }
    kernel_result(name, identical, &brute_s, &indexed_s)
}

fn kernel_result(
    name: &'static str,
    identical: bool,
    brute_s: &[f64],
    indexed_s: &[f64],
) -> KernelResult {
    let brute = Timing::from_samples(brute_s);
    let indexed = Timing::from_samples(indexed_s);
    let speedup = brute.median_s / indexed.median_s.max(f64::MIN_POSITIVE);
    let speedup_ci95 = (
        brute.ci95_lo_s / indexed.ci95_hi_s.max(f64::MIN_POSITIVE),
        brute.ci95_hi_s / indexed.ci95_lo_s.max(f64::MIN_POSITIVE),
    );
    KernelResult {
        name,
        identical,
        speedup,
        speedup_ci95,
        brute,
        indexed,
    }
}

/// The degenerate result a kernel reports under `skip_brute`: the
/// indexed timing stands in on both sides, so `speedup` is exactly 1
/// and `identical` is vacuously true (nothing was compared).
fn kernel_result_skipped(name: &'static str, indexed_s: &[f64]) -> KernelResult {
    let indexed = Timing::from_samples(indexed_s);
    KernelResult {
        name,
        identical: true,
        speedup: 1.0,
        speedup_ci95: (1.0, 1.0),
        brute: indexed.clone(),
        indexed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_bench_runs_and_outputs_are_identical() {
        let mut cfg = BenchConfig::tiny();
        cfg.repeats = 2;
        let report = run_bench(&cfg);
        assert_eq!(report.kernels.len(), 4);
        assert!(report.all_identical(), "indexed kernels changed outputs");
        for k in &report.kernels {
            assert!(k.brute.median_s > 0.0, "{}: zero brute median", k.name);
            assert!(k.indexed.median_s > 0.0, "{}: zero indexed median", k.name);
            assert!(k.ci95_contains_median(), "{}: CI excludes median", k.name);
            assert!(k.speedup.is_finite() && k.speedup > 0.0);
        }
        assert_eq!(report.kernels[1].name, "survey_sweep_scratch");
        assert_eq!(report.serve.clients, cfg.serve_clients);
        assert_eq!(
            report.serve.requests,
            (cfg.serve_clients * cfg.serve_requests) as u64
        );
        assert!(report.serve.qps > 0.0);
        assert!(report.serve.identical, "served must match batch");
        assert!(
            report.serve.scrapes > 0,
            "the /metrics listener must be scraped during the instrumented run"
        );
        assert_eq!(report.serve_off.requests, report.serve.requests);
        assert!(report.serve_off.identical, "baseline must match batch too");
        assert_eq!(report.serve_off.scrapes, 0, "baseline has no listener");
        assert_eq!(
            report.telemetry.pair_pcts.len(),
            cfg.serve_ab_pairs,
            "one overhead sample per A/B pair"
        );
        assert!(report.telemetry_overhead_pct().is_finite());
        assert!(report.telemetry.ci95_lo_pct <= report.telemetry.median_pct);
        assert!(report.telemetry.median_pct <= report.telemetry.ci95_hi_pct);
        assert!(!report.scaling.points.is_empty());
        assert_eq!(
            report.scaling.points[0].threads, 1,
            "the ladder must anchor at one thread"
        );
        assert_eq!(report.scaling.points[0].efficiency, 1.0);
        for p in &report.scaling.points {
            assert!(p.identical, "tiled sweep at {} threads diverged", p.threads);
            assert!(p.timing.median_s > 0.0);
            assert!(p.efficiency.is_finite() && p.efficiency > 0.0);
            assert_eq!(p.timing.samples, cfg.repeats);
        }
        assert_eq!(report.alloc.counting, abp_trace::counting());
        if report.alloc.counting {
            assert_eq!(
                report.alloc.allocs_per_trial, 0.0,
                "reused-scratch surveys must not allocate in steady state"
            );
            assert_eq!(report.alloc.bytes_per_trial, 0.0);
        } else {
            // Nothing counted: the rates must be reported as zero, not
            // garbage.
            assert_eq!(report.alloc.allocs_per_trial, 0.0);
            assert_eq!(report.alloc.bytes_per_trial, 0.0);
        }
    }

    #[test]
    fn skip_brute_reports_degenerate_but_well_formed_kernels() {
        let mut cfg = BenchConfig::tiny();
        cfg.repeats = 2;
        cfg.skip_brute = true;
        let report = run_bench(&cfg);
        assert_eq!(report.kernels.len(), 4);
        for k in &report.kernels {
            assert!(k.identical, "{}: vacuously true under skip_brute", k.name);
            assert_eq!(k.speedup, 1.0, "{}: degenerate speedup", k.name);
            assert_eq!(k.speedup_ci95, (1.0, 1.0));
            assert!(!k.speedup_ci_straddles_unity());
            assert_eq!(k.brute, k.indexed, "{}: indexed stands in", k.name);
            assert!(k.indexed.median_s > 0.0);
        }
        let json = report.to_json();
        assert!(json.contains("\"skip_brute\": true"));
    }

    impl KernelResult {
        fn ci95_contains_median(&self) -> bool {
            let within = |t: &Timing| t.ci95_lo_s <= t.median_s && t.median_s <= t.ci95_hi_s;
            within(&self.brute) && within(&self.indexed)
        }
    }

    #[test]
    fn json_report_has_the_documented_shape() {
        let report = BenchReport {
            config: BenchConfig::tiny(),
            kernels: vec![KernelResult {
                name: "survey_sweep",
                identical: true,
                speedup: 2.5,
                speedup_ci95: (1.25, 3.75),
                brute: Timing::from_samples(&[0.4, 0.5, 0.6]),
                indexed: Timing::from_samples(&[0.2]),
            }],
            alloc: AllocStats {
                counting: true,
                allocs_per_trial: 0.0,
                bytes_per_trial: 0.0,
            },
            serve: abp_serve::bench::LoadReport {
                clients: 2,
                requests: 300,
                wall_s: 0.5,
                qps: 600.0,
                p50_s: 0.001,
                p95_s: 0.002,
                p99_s: 0.003,
                min_s: 0.0005,
                max_s: 0.004,
                measured_requests: 220,
                allocs_per_request: 0.0,
                bytes_per_request: 0.0,
                alloc_counting: true,
                identical: true,
                final_epoch: 0,
                scrapes: 40,
                scrape_p50_s: 0.0002,
                scrape_max_s: 0.001,
            },
            serve_off: abp_serve::bench::LoadReport {
                clients: 2,
                requests: 300,
                wall_s: 0.4,
                qps: 750.0,
                p50_s: 0.001,
                p95_s: 0.002,
                p99_s: 0.003,
                min_s: 0.0005,
                max_s: 0.004,
                measured_requests: 220,
                allocs_per_request: 0.0,
                bytes_per_request: 0.0,
                alloc_counting: true,
                identical: true,
                final_epoch: 0,
                scrapes: 0,
                scrape_p50_s: 0.0,
                scrape_max_s: 0.0,
            },
            overload: abp_serve::bench::OverloadReport {
                offered_clients: 4,
                max_conns: 2,
                requests: 640,
                shed_connections: 17,
                shed_rate: 0.3,
                p50_s: 0.001,
                p99_s: 0.005,
                bounded: true,
                measured_requests: 500,
                allocs_per_request: 0.0,
                alloc_counting: true,
            },
            scaling: ScalingReport {
                max_threads: 4,
                points: vec![
                    ScalingPoint {
                        threads: 1,
                        timing: Timing::from_samples(&[0.4]),
                        efficiency: 1.0,
                        identical: true,
                    },
                    ScalingPoint {
                        threads: 4,
                        timing: Timing::from_samples(&[0.125]),
                        efficiency: 0.8,
                        identical: true,
                    },
                ],
            },
            telemetry: TelemetryOverhead {
                pair_pcts: vec![20.0, 18.0, 22.0],
                median_pct: 20.0,
                ci95_lo_pct: 18.0,
                ci95_hi_pct: 22.0,
            },
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"abp-bench-sweep/6\""));
        assert!(json.contains("\"preset\": \"tiny\""));
        assert!(json.contains("\"skip_brute\": false"));
        assert!(json.contains(
            "\"alloc\": {\"counting\": true, \"allocs_per_trial\": 0, \"bytes_per_trial\": 0}"
        ));
        assert!(json.contains("\"serve_qps\": {"));
        assert!(json.contains("\"qps\": 600"));
        assert!(json.contains("\"p99_s\": 0.003"));
        assert!(json.contains(
            "\"alloc\": {\"counting\": true, \"allocs_per_request\": 0, \"bytes_per_request\": 0}"
        ));
        assert!(json.contains("\"final_epoch\": 0"));
        assert!(json.contains("\"scrapes\": 40"));
        assert!(json.contains("\"scrape_p50_s\": 0.0002"));
        assert!(json.contains("\"scrape_max_s\": 0.001"));
        assert!(json.contains("\"qps_metrics_off\": 750"));
        assert!(json.contains(
            "\"telemetry_overhead\": {\"pairs\": 3, \"median_pct\": 20, \"ci95_lo_pct\": 18, \"ci95_hi_pct\": 22}"
        ));
        assert!(json.contains("\"scaling\": {"));
        assert!(json.contains("\"max_threads\": 4"));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"efficiency\": 0.8"));
        assert!(json.contains("\"speedup_ci95\": [1.25, 3.75]"));
        assert!(json.contains("\"overload\": {"));
        assert!(json.contains("\"offered_clients\": 4"));
        assert!(json.contains("\"shed_connections\": 17"));
        assert!(json.contains("\"p99_bound_s\": 0.25"));
        assert!(json.contains("\"bounded\": true"));
        assert!(json.contains("\"alloc\": {\"counting\": true, \"allocs_per_request\": 0}"));
        assert!(json.contains("\"name\": \"survey_sweep\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"median_s\": 0.5"));
        assert!(json.contains("\"samples\": 3"));
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces: {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn median_ci_degenerates_to_range_for_tiny_samples() {
        let t = Timing::from_samples(&[0.3, 0.1, 0.2]);
        assert_eq!(t.median_s, 0.2);
        assert_eq!(t.ci95_lo_s, 0.1);
        assert_eq!(t.ci95_hi_s, 0.3);
        assert_eq!(t.samples, 3);
    }

    #[test]
    #[should_panic(expected = "at least one timed sample")]
    fn empty_samples_panic() {
        let _ = Timing::from_samples(&[]);
    }

    #[test]
    fn scaling_ladder_auto_is_powers_of_two_plus_max() {
        let cfg = BenchConfig::tiny();
        assert_eq!(scaling_ladder(&cfg, 1), vec![1]);
        assert_eq!(scaling_ladder(&cfg, 4), vec![1, 2, 4]);
        assert_eq!(scaling_ladder(&cfg, 6), vec![1, 2, 4, 6]);
        assert_eq!(scaling_ladder(&cfg, 8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn scaling_ladder_explicit_is_sorted_deduped_and_anchored_at_one() {
        let mut cfg = BenchConfig::tiny();
        cfg.scale_threads = vec![4, 2, 4, 0];
        assert_eq!(scaling_ladder(&cfg, 1), vec![1, 2, 4]);
    }

    #[test]
    fn speedup_ci_straddle_detection() {
        let k = kernel_result("x", true, &[0.9, 1.0, 1.1], &[0.95, 1.0, 1.05]);
        assert!(
            k.speedup_ci_straddles_unity(),
            "overlapping timings must straddle: {:?}",
            k.speedup_ci95
        );
        let k = kernel_result("x", true, &[2.0, 2.1, 2.2], &[0.9, 1.0, 1.1]);
        assert!(!k.speedup_ci_straddles_unity(), "{:?}", k.speedup_ci95);
    }
}
