//! Criterion benchmarks for the beaconplace workspace; see the `benches/` directory.
#![forbid(unsafe_code)]
