//! Criterion benchmarks for the beaconplace workspace (see the
//! `benches/` directory), plus the tracked bench baseline behind the
//! `abp bench` subcommand ([`sweep`]): brute-vs-indexed timings of the
//! survey sweep and greedy candidate scan with a bit-identical output
//! check on every sample.
#![forbid(unsafe_code)]

pub mod sweep;

pub use sweep::{run_bench, AllocStats, BenchConfig, BenchReport, KernelResult, Timing};
