//! Overhead of the `abp-trace` instrumentation.
//!
//! The disabled path must be near-free — the acceptance bar is a traced
//! build running within 2% of the pre-instrumentation baseline when
//! `--trace`/`--counters` are off. Two angles:
//!
//! 1. micro: one `span!` + counter add + histogram record with the gate
//!    off (a handful of relaxed atomic loads) vs with the gate on,
//! 2. macro: a full beacon-major survey — the hottest instrumented loop —
//!    with the gate off vs on.

use abp_field::BeaconField;
use abp_geom::{Lattice, Terrain};
use abp_localize::UnheardPolicy;
use abp_radio::IdealDisk;
use abp_survey::ErrorMap;
use abp_trace::{Counter, DurationHistogram};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

static BENCH_COUNTER: Counter = Counter::new("bench_counter");
static BENCH_HIST: DurationHistogram = DurationHistogram::new("bench_hist");

fn gate_benches(c: &mut Criterion) {
    abp_trace::set_enabled(false);
    c.bench_function("trace/gate_off_span_counter_hist", |b| {
        b.iter(|| {
            let _span = abp_trace::span!("bench.noop");
            BENCH_COUNTER.add(1);
            BENCH_HIST.record(Duration::from_nanos(black_box(7)));
        })
    });
    abp_trace::set_enabled(true);
    c.bench_function("trace/gate_on_counter_hist", |b| {
        b.iter(|| {
            BENCH_COUNTER.add(1);
            BENCH_HIST.record(Duration::from_nanos(black_box(7)));
        })
    });
    abp_trace::set_enabled(false);
}

fn survey_overhead_benches(c: &mut Criterion) {
    let terrain = Terrain::square(100.0);
    let lattice = Lattice::new(terrain, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    let field = BeaconField::random_uniform(100, terrain, &mut rng);
    let ideal = IdealDisk::new(15.0);

    abp_trace::set_enabled(false);
    c.bench_function("trace/survey_gate_off", |b| {
        b.iter(|| {
            black_box(ErrorMap::survey(
                &lattice,
                &field,
                &ideal,
                UnheardPolicy::TerrainCenter,
            ))
        })
    });
    // Counters live, no sink installed: spans stay inactive, the batched
    // counter adds are the only extra work.
    abp_trace::set_enabled(true);
    c.bench_function("trace/survey_gate_on_counters_only", |b| {
        b.iter(|| {
            black_box(ErrorMap::survey(
                &lattice,
                &field,
                &ideal,
                UnheardPolicy::TerrainCenter,
            ))
        })
    });
    abp_trace::set_enabled(false);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = gate_benches, survey_overhead_benches
);
criterion_main!(benches);
