//! One benchmark per reproduced table/figure.
//!
//! Each bench runs the figure's full pipeline at a miniature configuration
//! (coarse lattice, few trials) so `cargo bench` both times the pipelines
//! and re-validates that every figure still runs end to end. Full-fidelity
//! numbers come from the `abp` CLI (`abp all --preset paper`).

use abp_sim::experiments::overlap_bound::BoundConfig;
use abp_sim::{figures, AlgorithmKind, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Miniature config shared by the figure benches: one survey at step 4 m,
/// 3 trials, 3 densities — large enough to exercise every code path.
fn bench_cfg() -> SimConfig {
    SimConfig {
        step: 4.0,
        trials: 3,
        beacon_counts: vec![20, 100, 240],
        threads: 1, // benches time the work, not the thread pool
        ..SimConfig::paper()
    }
}

fn table1(c: &mut Criterion) {
    c.bench_function("table1_config", |b| b.iter(|| black_box(figures::table1())));
}

fn fig1(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("fig1_granularity", |b| {
        b.iter(|| black_box(figures::fig1(&cfg, &[2, 3, 5])))
    });
}

fn fig4(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("fig4_density_error", |b| {
        b.iter(|| black_box(figures::fig4(&cfg)))
    });
}

fn fig5(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("fig5_improvement_ideal", |b| {
        b.iter(|| black_box(figures::fig5(&cfg)))
    });
}

fn fig6(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("fig6_noise_error", |b| {
        b.iter(|| black_box(figures::fig6(&cfg)))
    });
}

fn fig7(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("fig7_random_noise", |b| {
        b.iter(|| black_box(figures::fig_noise(&cfg, AlgorithmKind::Random)))
    });
}

fn fig8(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("fig8_max_noise", |b| {
        b.iter(|| black_box(figures::fig_noise(&cfg, AlgorithmKind::Max)))
    });
}

fn fig9(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("fig9_grid_noise", |b| {
        b.iter(|| black_box(figures::fig_noise(&cfg, AlgorithmKind::Grid)))
    });
}

fn bound(c: &mut Criterion) {
    let cfg = BoundConfig {
        step: 4.0,
        ratios: vec![1.0, 2.0, 4.0],
        ..BoundConfig::default()
    };
    c.bench_function("bound_overlap_ratio", |b| {
        b.iter(|| black_box(figures::bound(&cfg)))
    });
}

fn ablation(c: &mut Criterion) {
    let mut cfg = bench_cfg();
    cfg.beacon_counts = vec![40];
    c.bench_function("ablation_all_algorithms", |b| {
        b.iter(|| black_box(figures::ablation_algorithms(&cfg, 0.3)))
    });
}

fn solution_space(c: &mut Criterion) {
    let mut cfg = bench_cfg();
    cfg.beacon_counts = vec![40];
    c.bench_function("solution_space_density", |b| {
        b.iter(|| black_box(figures::solution_space(&cfg, 0.0, 20, 0.02)))
    });
}

fn robustness(c: &mut Criterion) {
    let mut cfg = bench_cfg();
    cfg.trials = 2;
    c.bench_function("robustness_sweeps", |b| {
        b.iter(|| black_box(figures::robustness(&cfg, 40)))
    });
}

fn multi_beacon(c: &mut Criterion) {
    let mut cfg = bench_cfg();
    cfg.beacon_counts = vec![40];
    c.bench_function("multi_beacon_strategies", |b| {
        b.iter(|| black_box(figures::multi_beacon(&cfg, 0.0, 40, &[1, 4])))
    });
}

fn multilateration(c: &mut Criterion) {
    let mut cfg = bench_cfg();
    cfg.step = 10.0; // Gauss-Newton per point
    cfg.beacon_counts = vec![40];
    cfg.trials = 2;
    c.bench_function("multilateration_recast", |b| {
        b.iter(|| black_box(figures::multilateration(&cfg, 0.05)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table1, fig1, fig4, fig5, fig6, fig7, fig8, fig9, bound, ablation,
              solution_space, robustness, multi_beacon, multilateration
);
criterion_main!(benches);
