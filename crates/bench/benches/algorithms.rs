//! Placement-algorithm complexity benches.
//!
//! The paper orders its algorithms by processing cost: Random `O(1)`,
//! Max `O(PT)`, Grid `O(NG · PG)`. These benches measure `propose()` at
//! full paper scale (step 1 m lattice, `PT = 10 201`, `NG = 400`) so the
//! ordering — and any regression — is visible in wall-clock time.

use abp_field::BeaconField;
use abp_geom::{Lattice, Terrain};
use abp_localize::UnheardPolicy;
use abp_placement::{
    greedy_batch, GridPlacement, LocusBreakPlacement, MaxPlacement, PlacementAlgorithm,
    RandomPlacement, SurveyView, WeightedGridPlacement,
};
use abp_radio::IdealDisk;
use abp_survey::ErrorMap;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

struct Fixture {
    field: BeaconField,
    model: IdealDisk,
    map: ErrorMap,
}

fn fixture(beacons: usize) -> Fixture {
    let terrain = Terrain::square(100.0);
    let lattice = Lattice::new(terrain, 1.0); // paper scale: PT = 10 201
    let mut rng = StdRng::seed_from_u64(42);
    let field = BeaconField::random_uniform(beacons, terrain, &mut rng);
    let model = IdealDisk::new(15.0);
    let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
    Fixture { field, model, map }
}

fn propose_benches(c: &mut Criterion) {
    let fx = fixture(100);
    let terrain = Terrain::square(100.0);
    let algorithms: Vec<(&str, Box<dyn PlacementAlgorithm>)> = vec![
        ("propose/random_O1", Box::new(RandomPlacement::new(terrain))),
        ("propose/max_OPT", Box::new(MaxPlacement::new())),
        (
            "propose/grid_ONGPG",
            Box::new(GridPlacement::paper(terrain, 15.0)),
        ),
        (
            "propose/weighted_grid",
            Box::new(WeightedGridPlacement::paper(terrain, 15.0)),
        ),
        ("propose/locus_break", Box::new(LocusBreakPlacement::new())),
    ];
    for (name, algo) in &algorithms {
        c.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(7);
            let view = SurveyView {
                map: &fx.map,
                field: &fx.field,
                model: &fx.model,
            };
            b.iter(|| black_box(algo.propose(&view, &mut rng)))
        });
    }
}

fn greedy_batch_bench(c: &mut Criterion) {
    c.bench_function("multi_beacon/greedy_batch_k4", |b| {
        let fx = fixture(60);
        let algo = GridPlacement::paper(Terrain::square(100.0), 15.0);
        b.iter_batched(
            || (fx.map.clone(), fx.field.clone()),
            |(mut map, mut field)| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(greedy_batch(
                    &algo, &mut map, &mut field, &fx.model, 4, &mut rng,
                ))
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("multi_beacon/oneshot_top4", |b| {
        let fx = fixture(60);
        let algo = GridPlacement::paper(Terrain::square(100.0), 15.0);
        b.iter(|| black_box(algo.propose_top_k(&fx.map, 4)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = propose_benches, greedy_batch_bench
);
criterion_main!(benches);
