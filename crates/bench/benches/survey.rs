//! Survey-substrate throughput benches.
//!
//! The experiment engine's cost is dominated by terrain surveys. These
//! benches pin the three performance claims DESIGN.md makes:
//!
//! 1. the beacon-major sweep beats the point-major reference,
//! 2. the incremental re-survey beats a full re-survey,
//! 3. the selection-based median beats a full sort at map scale.

use abp_field::BeaconField;
use abp_geom::{Lattice, Point, Terrain};
use abp_localize::{CentroidLocalizer, UnheardPolicy};
use abp_radio::{IdealDisk, PerBeaconNoise};
use abp_survey::ErrorMap;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn setup(beacons: usize) -> (Lattice, BeaconField) {
    let terrain = Terrain::square(100.0);
    let lattice = Lattice::new(terrain, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    (
        lattice,
        BeaconField::random_uniform(beacons, terrain, &mut rng),
    )
}

fn survey_benches(c: &mut Criterion) {
    let (lattice, field) = setup(100);
    let ideal = IdealDisk::new(15.0);
    let noisy = PerBeaconNoise::new(15.0, 0.5, 9);

    c.bench_function("survey/beacon_major_ideal_100b", |b| {
        b.iter(|| {
            black_box(ErrorMap::survey(
                &lattice,
                &field,
                &ideal,
                UnheardPolicy::TerrainCenter,
            ))
        })
    });

    c.bench_function("survey/beacon_major_noise_100b", |b| {
        b.iter(|| {
            black_box(ErrorMap::survey(
                &lattice,
                &field,
                &noisy,
                UnheardPolicy::TerrainCenter,
            ))
        })
    });

    // The point-major reference implementation, at a coarser lattice so
    // the bench stays reasonable; the ratio is what matters.
    let coarse = Lattice::new(Terrain::square(100.0), 4.0);
    c.bench_function("survey/point_major_reference_coarse", |b| {
        let localizer = CentroidLocalizer::new(UnheardPolicy::TerrainCenter);
        b.iter(|| {
            black_box(ErrorMap::survey_with_localizer(
                &coarse, &field, &ideal, &localizer,
            ))
        })
    });
    c.bench_function("survey/beacon_major_coarse", |b| {
        b.iter(|| {
            black_box(ErrorMap::survey(
                &coarse,
                &field,
                &ideal,
                UnheardPolicy::TerrainCenter,
            ))
        })
    });
}

fn incremental_benches(c: &mut Criterion) {
    let (lattice, field) = setup(100);
    let ideal = IdealDisk::new(15.0);
    let base = ErrorMap::survey(&lattice, &field, &ideal, UnheardPolicy::TerrainCenter);
    let mut extended = field.clone();
    let id = extended.add_beacon(Point::new(50.0, 50.0));
    let beacon = *extended.get(id).unwrap();

    c.bench_function("resurvey/incremental_one_beacon", |b| {
        b.iter_batched(
            || base.clone(),
            |mut map| {
                map.add_beacon(&beacon, &ideal);
                black_box(map)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("resurvey/full_after_one_beacon", |b| {
        b.iter(|| {
            black_box(ErrorMap::survey(
                &lattice,
                &extended,
                &ideal,
                UnheardPolicy::TerrainCenter,
            ))
        })
    });
}

fn statistics_benches(c: &mut Criterion) {
    let (lattice, field) = setup(100);
    let ideal = IdealDisk::new(15.0);
    let map = ErrorMap::survey(&lattice, &field, &ideal, UnheardPolicy::TerrainCenter);

    c.bench_function("stats/median_by_selection", |b| {
        b.iter(|| black_box(map.median_error()))
    });
    c.bench_function("stats/median_by_full_sort", |b| {
        b.iter(|| {
            let values: Vec<f64> = map.valid_errors().collect();
            black_box(abp_stats::median(&values))
        })
    });
    c.bench_function("stats/mean", |b| b.iter(|| black_box(map.mean_error())));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = survey_benches, incremental_benches, statistics_benches
);
criterion_main!(benches);
