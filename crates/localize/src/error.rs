//! The localization-error metric.

use abp_geom::Point;

/// The paper's localization error `LE`: the Euclidean distance between a
/// client's estimated and actual positions,
///
/// ```text
/// LE = sqrt( (Xest - Xa)² + (Yest - Ya)² )
/// ```
///
/// # Example
///
/// ```
/// use abp_geom::Point;
/// use abp_localize::localization_error;
/// let le = localization_error(Point::new(3.0, 4.0), Point::new(0.0, 0.0));
/// assert_eq!(le, 5.0);
/// ```
#[inline]
pub fn localization_error(estimate: Point, actual: Point) -> f64 {
    estimate.distance(actual)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_for_perfect_estimate() {
        let p = Point::new(12.0, -7.0);
        assert_eq!(localization_error(p, p), 0.0);
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(localization_error(a, b), localization_error(b, a));
        assert_eq!(localization_error(a, b), 5.0);
    }
}
