//! Multilateration-based localization (paper §6).
//!
//! The paper contrasts its proximity approach with multilateration, where
//! "position is estimated from distances to three or more known points"
//! and localization error "is influenced by the geometry of the beacon
//! nodes". [`MultilaterationLocalizer`] implements that comparison point:
//! it measures a (noisy) range to every heard beacon and solves the
//! nonlinear least-squares problem with Gauss–Newton iterations.
//!
//! Range noise is realized deterministically per (beacon, point), matching
//! the workspace's static-world convention.

use crate::oracle::ConnectivityOracle;
use crate::{CentroidLocalizer, Fix, Localizer, UnheardPolicy};
use abp_field::{Beacon, BeaconField};
use abp_geom::{DeterministicField, Point, Vec2};
use abp_radio::Propagation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Iterations of Gauss–Newton refinement.
const MAX_ITERS: usize = 25;
/// Convergence threshold on the update step (meters).
const STEP_EPS: f64 = 1e-9;

/// Least-squares multilateration from noisy ranges.
///
/// For each heard beacon `B_i` the localizer obtains a range measurement
/// `r_i = d_i (1 + u_i · sigma)` where `d_i` is the true distance, `sigma`
/// the relative range-error amplitude, and `u_i ~ U[-1, 1]` deterministic
/// per (beacon, client-point). The estimate minimizes
/// `Σ (‖x − B_i‖ − r_i)²` via Gauss–Newton, started from the beacon
/// centroid.
///
/// Needs at least three heard beacons in non-degenerate (non-collinear)
/// geometry; otherwise it falls back to the centroid estimate, mirroring
/// how a real system would degrade.
///
/// The solution is clamped to the terrain: with noisy ranges and
/// near-collinear geometry the unconstrained least-squares solution can
/// run far outside the deployment region, and a fielded client knows it
/// is inside. (Without the clamp a handful of divergent fixes dominate
/// every mean-error statistic.)
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Point, Terrain};
/// use abp_localize::{Localizer, MultilaterationLocalizer, UnheardPolicy};
/// use abp_radio::IdealDisk;
///
/// let field = BeaconField::from_positions(
///     Terrain::square(100.0),
///     [Point::new(40.0, 40.0), Point::new(60.0, 40.0), Point::new(50.0, 62.0)],
/// );
/// // Noise-free ranges: the estimate recovers the client exactly.
/// let loc = MultilaterationLocalizer::new(0.0, 7, UnheardPolicy::TerrainCenter);
/// let at = Point::new(51.0, 47.0);
/// let fix = loc.localize(&field, &IdealDisk::new(30.0), at);
/// assert!(fix.estimate.unwrap().distance(at) < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultilaterationLocalizer {
    range_sigma: f64,
    noise: DeterministicField,
    policy: UnheardPolicy,
}

impl MultilaterationLocalizer {
    /// Creates the localizer.
    ///
    /// * `range_sigma` — relative range-error amplitude in `[0, 1)`
    ///   (0 = perfect ranging),
    /// * `seed` — realizes the per-(beacon, point) range errors,
    /// * `policy` — estimate when no beacon is heard.
    ///
    /// # Panics
    ///
    /// Panics if `range_sigma` is not in `[0, 1)`.
    pub fn new(range_sigma: f64, seed: u64, policy: UnheardPolicy) -> Self {
        assert!(
            (0.0..1.0).contains(&range_sigma),
            "range sigma must be in [0, 1), got {range_sigma}"
        );
        MultilaterationLocalizer {
            range_sigma,
            noise: DeterministicField::new(seed),
            policy,
        }
    }

    /// The relative range-error amplitude.
    #[inline]
    pub fn range_sigma(&self) -> f64 {
        self.range_sigma
    }

    /// The simulated range measurement from `at` to beacon `b`.
    pub fn measured_range(&self, b: &Beacon, at: Point) -> f64 {
        let d = b.pos().distance(at);
        d * (1.0 + self.noise.symmetric(b.id().0, at) * self.range_sigma)
    }

    /// One Gauss–Newton solve; `None` if the geometry is degenerate.
    fn solve(&self, heard: &[Beacon], ranges: &[f64], start: Point) -> Option<Point> {
        let mut x = start;
        for _ in 0..MAX_ITERS {
            // Normal equations J^T J s = -J^T f with 2x2 J^T J.
            let (mut a11, mut a12, mut a22) = (0.0, 0.0, 0.0);
            let (mut g1, mut g2) = (0.0, 0.0);
            for (b, &r) in heard.iter().zip(ranges) {
                let diff = x - b.pos();
                let d = diff.length();
                if d < 1e-9 {
                    continue; // residual gradient undefined at the beacon
                }
                let j = diff / d; // unit vector = Jacobian row
                let f = d - r;
                a11 += j.x * j.x;
                a12 += j.x * j.y;
                a22 += j.y * j.y;
                g1 += j.x * f;
                g2 += j.y * f;
            }
            let det = a11 * a22 - a12 * a12;
            if det.abs() < 1e-9 {
                return None; // collinear or insufficient geometry
            }
            let step = Vec2::new(-(a22 * g1 - a12 * g2) / det, -(-a12 * g1 + a11 * g2) / det);
            x += step;
            if step.length() < STEP_EPS {
                break;
            }
        }
        x.is_finite().then_some(x)
    }
}

impl Localizer for MultilaterationLocalizer {
    fn localize(&self, field: &BeaconField, model: &dyn Propagation, at: Point) -> Fix {
        self.localize_via(&ConnectivityOracle::new(field, model), at)
    }

    fn localize_via(&self, oracle: &ConnectivityOracle<'_>, at: Point) -> Fix {
        crate::LOCALIZER_EVALS.add(1);
        let heard = oracle.heard(at);
        if heard.is_empty() {
            return Fix {
                estimate: self.policy.estimate(oracle.field().terrain()),
                heard: 0,
            };
        }
        let centroid_fix = CentroidLocalizer::new(self.policy).localize_via(oracle, at);
        if heard.len() < 3 {
            // Under-determined: degrade to proximity estimate.
            return centroid_fix;
        }
        let ranges: Vec<f64> = heard.iter().map(|b| self.measured_range(b, at)).collect();
        let start = centroid_fix.estimate.expect("heard >= 3 implies estimate");
        let bounds = oracle.field().terrain().bounds();
        let estimate = self
            .solve(&heard, &ranges, start)
            .map(|p| bounds.clamp_point(p))
            .or(centroid_fix.estimate);
        Fix {
            estimate,
            heard: heard.len(),
        }
    }

    fn unheard_policy(&self) -> UnheardPolicy {
        self.policy
    }

    /// Multilateration solves for two unknowns from range residuals: it
    /// needs three non-collinear beacons. Below that the centroid
    /// fallback above is what `localize` returns, and
    /// [`Localizer::try_localize`] reports it as
    /// [`Degraded`](crate::Localization::Degraded).
    fn min_beacons(&self) -> usize {
        3
    }
}

impl fmt::Display for MultilaterationLocalizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "multilateration (range sigma {}, unheard: {})",
            self.range_sigma, self.policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Terrain;
    use abp_radio::IdealDisk;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    fn triangle_field() -> BeaconField {
        BeaconField::from_positions(
            terrain(),
            [
                Point::new(40.0, 40.0),
                Point::new(60.0, 40.0),
                Point::new(50.0, 62.0),
            ],
        )
    }

    #[test]
    fn exact_recovery_with_perfect_ranges() {
        let loc = MultilaterationLocalizer::new(0.0, 1, UnheardPolicy::TerrainCenter);
        let model = IdealDisk::new(40.0);
        let field = triangle_field();
        for &(x, y) in &[(50.0, 48.0), (45.0, 45.0), (55.0, 50.0), (50.0, 40.0)] {
            let at = Point::new(x, y);
            let fix = loc.localize(&field, &model, at);
            assert_eq!(fix.heard, 3);
            assert!(
                fix.estimate.unwrap().distance(at) < 1e-6,
                "failed to recover {at}"
            );
        }
    }

    #[test]
    fn beats_centroid_with_good_geometry() {
        let loc = MultilaterationLocalizer::new(0.02, 3, UnheardPolicy::TerrainCenter);
        let cen = CentroidLocalizer::new(UnheardPolicy::TerrainCenter);
        let model = IdealDisk::new(40.0);
        let field = triangle_field();
        // Average over a grid of client positions inside the triangle.
        let mut ml_err = 0.0;
        let mut c_err = 0.0;
        let mut n = 0;
        for j in 0..8 {
            for i in 0..8 {
                let at = Point::new(43.0 + i as f64 * 2.0, 42.0 + j as f64 * 2.0);
                ml_err += loc.localize(&field, &model, at).error(at).unwrap();
                c_err += cen.localize(&field, &model, at).error(at).unwrap();
                n += 1;
            }
        }
        assert!(
            ml_err / n as f64 <= c_err / n as f64,
            "multilateration ({ml_err}) should beat centroid ({c_err})"
        );
    }

    #[test]
    fn collinear_geometry_falls_back() {
        let field = BeaconField::from_positions(
            terrain(),
            [
                Point::new(30.0, 50.0),
                Point::new(50.0, 50.0),
                Point::new(70.0, 50.0),
            ],
        );
        let loc = MultilaterationLocalizer::new(0.0, 1, UnheardPolicy::TerrainCenter);
        let model = IdealDisk::new(60.0);
        let at = Point::new(50.0, 58.0);
        let fix = loc.localize(&field, &model, at);
        // Must produce *some* estimate (fallback) and not diverge.
        let est = fix.estimate.unwrap();
        assert!(est.is_finite());
        assert!(terrain().contains(Point::new(est.x.clamp(0.0, 100.0), est.y.clamp(0.0, 100.0))));
    }

    #[test]
    fn fewer_than_three_beacons_degrades_to_centroid() {
        let field = BeaconField::from_positions(
            terrain(),
            [Point::new(45.0, 50.0), Point::new(55.0, 50.0)],
        );
        let model = IdealDisk::new(15.0);
        let at = Point::new(50.0, 50.0);
        let ml = MultilaterationLocalizer::new(0.0, 1, UnheardPolicy::TerrainCenter)
            .localize(&field, &model, at);
        let cen = CentroidLocalizer::new(UnheardPolicy::TerrainCenter).localize(&field, &model, at);
        assert_eq!(ml.estimate, cen.estimate);
        assert_eq!(ml.heard, 2);
    }

    #[test]
    fn try_localize_types_the_degradation() {
        use crate::Localization;
        let loc = MultilaterationLocalizer::new(0.0, 1, UnheardPolicy::TerrainCenter);
        let model = IdealDisk::new(15.0);
        // Two heard beacons: below the three-range minimum → Degraded,
        // carrying the centroid fallback rather than panicking.
        let two = BeaconField::from_positions(
            terrain(),
            [Point::new(45.0, 50.0), Point::new(55.0, 50.0)],
        );
        let at = Point::new(50.0, 50.0);
        match loc.try_localize(&two, &model, at) {
            Localization::Degraded { heard, fallback } => {
                assert_eq!(heard, 2);
                assert_eq!(fallback.estimate, Some(Point::new(50.0, 50.0)));
            }
            Localization::Full(_) => panic!("two beacons must degrade a multilateration fix"),
        }
        // Zero heard beacons: degraded with the unheard-policy estimate.
        let none = loc.try_localize(&two, &model, Point::new(5.0, 5.0));
        assert!(none.is_degraded());
        assert_eq!(none.heard(), 0);
        assert_eq!(none.fix().estimate, Some(Point::new(50.0, 50.0)));
        // A full triangle is a full-method fix.
        let model_wide = IdealDisk::new(40.0);
        let full = loc.try_localize(&triangle_field(), &model_wide, at);
        assert!(!full.is_degraded());
        assert_eq!(full.heard(), 3);
    }

    #[test]
    fn range_noise_is_deterministic_and_bounded() {
        let loc = MultilaterationLocalizer::new(0.1, 5, UnheardPolicy::TerrainCenter);
        let field = triangle_field();
        let b = field.beacons()[0];
        let at = Point::new(50.0, 50.0);
        let d = b.pos().distance(at);
        let r1 = loc.measured_range(&b, at);
        assert_eq!(r1, loc.measured_range(&b, at));
        assert!((r1 - d).abs() <= d * 0.1 + 1e-12);
    }

    #[test]
    fn unheard_policy_applies() {
        let field = BeaconField::from_positions(terrain(), [Point::new(0.0, 0.0)]);
        let loc = MultilaterationLocalizer::new(0.0, 1, UnheardPolicy::Exclude);
        let fix = loc.localize(&field, &IdealDisk::new(5.0), Point::new(90.0, 90.0));
        assert_eq!(fix.estimate, None);
    }

    #[test]
    #[should_panic(expected = "range sigma")]
    fn rejects_sigma_of_one() {
        let _ = MultilaterationLocalizer::new(1.0, 0, UnheardPolicy::TerrainCenter);
    }
}
