//! Localization regions (Figure 1).
//!
//! "By increasing the density of the beacons that populate the grid, the
//! granularity of the localization regions becomes finer, and hence the
//! accuracy of the location estimate improves." A *localization region* is
//! a maximal set of points sharing the same connectivity signature — all
//! of them receive the same centroid estimate. This module counts and maps
//! regions over a lattice, quantifying Figure 1's granularity argument.

use abp_field::BeaconField;
use abp_geom::{splitmix64, Lattice};
use abp_radio::Propagation;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The region structure of a field over a lattice.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionMap {
    /// Per lattice point (row-major): the region id its signature maps to.
    /// Region ids are dense, `0..region_count`, in order of first
    /// appearance along the row-major sweep. Points hearing zero beacons
    /// form one shared region.
    pub region_of: Vec<u32>,
    /// Number of distinct regions.
    pub region_count: usize,
    /// Number of lattice points hearing no beacon at all.
    pub unheard_points: usize,
}

impl RegionMap {
    /// Mean number of lattice points per region — a granularity measure:
    /// smaller regions mean finer localization.
    pub fn mean_region_size(&self) -> f64 {
        if self.region_count == 0 {
            0.0
        } else {
            self.region_of.len() as f64 / self.region_count as f64
        }
    }
}

/// Computes the [`RegionMap`] of `field` under `model` over `lattice`.
///
/// Signatures are hashed incrementally (order-independent XOR of per-id
/// hashes) so the sweep runs beacon-major like the survey, not
/// point-major.
///
/// # Example
///
/// ```
/// use abp_field::generate::uniform_grid;
/// use abp_geom::{Lattice, Terrain};
/// use abp_localize::regions::region_map;
/// use abp_radio::IdealDisk;
///
/// let terrain = Terrain::square(100.0);
/// let lattice = Lattice::new(terrain, 2.0);
/// let model = IdealDisk::new(60.0);
/// let coarse = region_map(&lattice, &uniform_grid(terrain, 2), &model);
/// let fine = region_map(&lattice, &uniform_grid(terrain, 3), &model);
/// // Figure 1: more beacons, more and smaller localization regions.
/// assert!(fine.region_count > coarse.region_count);
/// assert!(fine.mean_region_size() < coarse.mean_region_size());
/// ```
pub fn region_map(lattice: &Lattice, field: &BeaconField, model: &dyn Propagation) -> RegionMap {
    // Order-independent signature accumulator per lattice point.
    let mut sig = vec![(0u64, 0u32); lattice.len()]; // (xor of hashes, count)
    for b in field {
        let reach = model.max_range(b.tx(), b.pos());
        lattice.for_each_in_disk(abp_geom::Disk::new(b.pos(), reach), |ix, p| {
            if model.connected(b.tx(), b.pos(), p) {
                let slot = &mut sig[lattice.flat(ix)];
                slot.0 ^= splitmix64(b.id().0 ^ 0xB1A5_0000);
                slot.1 += 1;
            }
        });
    }
    let mut ids: HashMap<(u64, u32), u32> = HashMap::new();
    let mut region_of = Vec::with_capacity(lattice.len());
    let mut unheard_points = 0usize;
    for s in &sig {
        if s.1 == 0 {
            unheard_points += 1;
        }
        let next = ids.len() as u32;
        let id = *ids.entry(*s).or_insert(next);
        region_of.push(id);
    }
    RegionMap {
        region_of,
        region_count: ids.len(),
        unheard_points,
    }
}

/// Convenience: just the number of distinct localization regions.
pub fn count_regions(lattice: &Lattice, field: &BeaconField, model: &dyn Propagation) -> usize {
    region_map(lattice, field, model).region_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_field::generate::uniform_grid;
    use abp_geom::{Point, Terrain};
    use abp_radio::IdealDisk;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    #[test]
    fn empty_field_one_region() {
        let lattice = Lattice::new(terrain(), 10.0);
        let field = BeaconField::new(terrain());
        let model = IdealDisk::new(15.0);
        let map = region_map(&lattice, &field, &model);
        assert_eq!(map.region_count, 1);
        assert_eq!(map.unheard_points, lattice.len());
        assert!(map.region_of.iter().all(|&r| r == 0));
    }

    #[test]
    fn single_beacon_two_regions() {
        let lattice = Lattice::new(terrain(), 5.0);
        let field = BeaconField::from_positions(terrain(), [Point::new(50.0, 50.0)]);
        let model = IdealDisk::new(15.0);
        let map = region_map(&lattice, &field, &model);
        // Inside the disk vs outside: exactly two regions.
        assert_eq!(map.region_count, 2);
        assert!(map.unheard_points > 0);
    }

    #[test]
    fn figure1_finer_grid_more_regions() {
        let lattice = Lattice::new(terrain(), 2.0);
        let model = IdealDisk::new(60.0);
        let two = region_map(&lattice, &uniform_grid(terrain(), 2), &model);
        let three = region_map(&lattice, &uniform_grid(terrain(), 3), &model);
        assert!(
            three.region_count > two.region_count,
            "3x3 ({}) must refine 2x2 ({})",
            three.region_count,
            two.region_count
        );
        assert!(three.mean_region_size() < two.mean_region_size());
    }

    #[test]
    fn region_map_consistent_with_oracle_signatures() {
        let lattice = Lattice::new(terrain(), 10.0);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let field = BeaconField::random_uniform(30, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let map = region_map(&lattice, &field, &model);
        let oracle = crate::oracle::ConnectivityOracle::new(&field, &model);
        // Same region id <=> same signature, for all point pairs.
        let sigs: Vec<_> = lattice.points().map(|p| oracle.signature(p)).collect();
        for i in 0..sigs.len() {
            for j in (i + 1)..sigs.len() {
                assert_eq!(
                    map.region_of[i] == map.region_of[j],
                    sigs[i] == sigs[j],
                    "points {i} and {j} disagree"
                );
            }
        }
    }

    #[test]
    fn region_ids_dense_from_zero() {
        let lattice = Lattice::new(terrain(), 10.0);
        let field = BeaconField::from_positions(
            terrain(),
            [Point::new(20.0, 20.0), Point::new(80.0, 80.0)],
        );
        let model = IdealDisk::new(15.0);
        let map = region_map(&lattice, &field, &model);
        let max = *map.region_of.iter().max().unwrap();
        assert_eq!(max as usize + 1, map.region_count);
    }
}
