//! Locus-based localization (paper §2.2 footnote 3, §6).
//!
//! Under the idealized radio model, "the client lies within the locus of
//! points described by the intersection of a set of circles with centers
//! corresponding to the positions of connected beacons and radii `R`. The
//! centroid summarizes the locus. An alternative representation of the
//! localization estimate is the full locus information." This module
//! provides that alternative: the locus as a polygon, its area, and its
//! area centroid as the estimate — the representation the paper's
//! future-work locus-breaking placement strategy needs.

use crate::oracle::ConnectivityOracle;
use crate::{CentroidLocalizer, Fix, Localizer, UnheardPolicy};
use abp_field::{Beacon, BeaconField};
use abp_geom::{Point, Polygon};
use abp_radio::Propagation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default number of chords used to approximate each coverage circle.
pub const DEFAULT_ARC_SEGMENTS: usize = 64;

/// Localizer that intersects the coverage disks of all heard beacons and
/// estimates the client position as the **area centroid of the locus**.
///
/// The locus is computed by polygon clipping: a fine regular polygon of
/// the first heard beacon's disk, clipped against each further disk
/// (`arc_segments` chords per circle — inscribed, so the locus is slightly
/// under-approximated and never over-claims feasibility).
///
/// Caveat (stated by the paper): "the locus information is not reliable
/// under non-ideal radio propagation conditions". With a noisy model a
/// heard beacon may actually be farther than `R`, making the true region
/// empty; when the clipped locus degenerates this localizer falls back to
/// the plain beacon centroid.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Point, Terrain};
/// use abp_localize::{Localizer, LocusLocalizer, UnheardPolicy};
/// use abp_radio::IdealDisk;
///
/// let field = BeaconField::from_positions(
///     Terrain::square(100.0),
///     [Point::new(40.0, 50.0), Point::new(60.0, 50.0)],
/// );
/// let loc = LocusLocalizer::new(UnheardPolicy::TerrainCenter);
/// let fix = loc.localize(&field, &IdealDisk::new(15.0), Point::new(50.0, 50.0));
/// // The lens between the two disks is symmetric about (50, 50).
/// let est = fix.estimate.unwrap();
/// assert!(est.distance(Point::new(50.0, 50.0)) < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocusLocalizer {
    policy: UnheardPolicy,
    arc_segments: usize,
}

impl LocusLocalizer {
    /// Creates the localizer with [`DEFAULT_ARC_SEGMENTS`] chords per
    /// circle.
    pub fn new(policy: UnheardPolicy) -> Self {
        LocusLocalizer {
            policy,
            arc_segments: DEFAULT_ARC_SEGMENTS,
        }
    }

    /// Overrides the arc resolution (minimum 8 for a sane approximation).
    ///
    /// # Panics
    ///
    /// Panics if `segments < 8`.
    pub fn with_arc_segments(mut self, segments: usize) -> Self {
        assert!(
            segments >= 8,
            "need at least 8 arc segments, got {segments}"
        );
        self.arc_segments = segments;
        self
    }

    /// The unheard policy.
    #[inline]
    pub fn policy(&self) -> UnheardPolicy {
        self.policy
    }

    /// Computes the locus polygon at `at`: the intersection of the nominal
    /// coverage disks of all heard beacons. Empty polygon when nothing is
    /// heard or the clipped region degenerates.
    pub fn locus(&self, field: &BeaconField, model: &dyn Propagation, at: Point) -> Polygon {
        let oracle = ConnectivityOracle::new(field, model);
        self.locus_of_heard(&oracle.heard(at), model.nominal_range())
    }

    /// The locus polygon of an already-gathered heard set.
    fn locus_of_heard(&self, heard: &[Beacon], r: f64) -> Polygon {
        let Some(first) = heard.first() else {
            return Polygon::new(Vec::new());
        };
        let mut poly = Polygon::regular(first.pos(), r, self.arc_segments, 0.0);
        for b in &heard[1..] {
            if poly.is_empty() {
                break;
            }
            poly = poly.clip_disk(b.pos(), r, self.arc_segments);
        }
        poly
    }
}

impl Localizer for LocusLocalizer {
    fn localize(&self, field: &BeaconField, model: &dyn Propagation, at: Point) -> Fix {
        self.localize_via(&ConnectivityOracle::new(field, model), at)
    }

    fn localize_via(&self, oracle: &ConnectivityOracle<'_>, at: Point) -> Fix {
        crate::LOCALIZER_EVALS.add(1);
        let heard = oracle.heard(at);
        if heard.is_empty() {
            return Fix {
                estimate: self.policy.estimate(oracle.field().terrain()),
                heard: 0,
            };
        }
        let poly = self.locus_of_heard(&heard, oracle.model().nominal_range());
        let estimate = poly
            .centroid()
            .or_else(|| poly.vertex_mean())
            // Degenerate locus (can happen under noisy models): fall back
            // to the plain centroid localizer.
            .or_else(|| {
                CentroidLocalizer::new(self.policy)
                    .localize_via(oracle, at)
                    .estimate
            });
        Fix {
            estimate,
            heard: heard.len(),
        }
    }

    fn unheard_policy(&self) -> UnheardPolicy {
        self.policy
    }
}

impl fmt::Display for LocusLocalizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "locus localizer ({} arcs, unheard: {})",
            self.arc_segments, self.policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Terrain;
    use abp_radio::IdealDisk;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    #[test]
    fn single_beacon_locus_is_full_disk() {
        let field = BeaconField::from_positions(terrain(), [Point::new(50.0, 50.0)]);
        let loc = LocusLocalizer::new(UnheardPolicy::TerrainCenter);
        let model = IdealDisk::new(15.0);
        let poly = loc.locus(&field, &model, Point::new(55.0, 50.0));
        let disk_area = std::f64::consts::PI * 225.0;
        assert!((poly.area() - disk_area).abs() / disk_area < 0.01);
        // Estimate equals the beacon position (disk centroid).
        let fix = loc.localize(&field, &model, Point::new(55.0, 50.0));
        assert!(fix.estimate.unwrap().distance(Point::new(50.0, 50.0)) < 1e-6);
    }

    #[test]
    fn two_beacon_locus_is_lens() {
        let field = BeaconField::from_positions(
            terrain(),
            [Point::new(40.0, 50.0), Point::new(60.0, 50.0)],
        );
        let loc = LocusLocalizer::new(UnheardPolicy::TerrainCenter).with_arc_segments(256);
        let model = IdealDisk::new(15.0);
        let poly = loc.locus(&field, &model, Point::new(50.0, 50.0));
        let expected = abp_geom::lens_area(
            &abp_geom::Disk::new(Point::new(40.0, 50.0), 15.0),
            &abp_geom::Disk::new(Point::new(60.0, 50.0), 15.0),
        );
        assert!(
            (poly.area() - expected).abs() / expected < 0.02,
            "lens area {} vs {expected}",
            poly.area()
        );
    }

    #[test]
    fn locus_contains_true_position_under_ideal_model() {
        let field = BeaconField::from_positions(
            terrain(),
            [
                Point::new(45.0, 45.0),
                Point::new(55.0, 45.0),
                Point::new(50.0, 58.0),
            ],
        );
        let loc = LocusLocalizer::new(UnheardPolicy::TerrainCenter).with_arc_segments(256);
        let model = IdealDisk::new(15.0);
        let at = Point::new(50.0, 50.0);
        let poly = loc.locus(&field, &model, at);
        assert!(poly.area() > 0.0);
        assert!(poly.contains(at), "true position must lie in the locus");
    }

    #[test]
    fn locus_estimate_at_least_as_good_as_centroid_here() {
        // For asymmetric beacon geometry the locus centroid is typically
        // closer to the client than the beacon centroid.
        let field = BeaconField::from_positions(
            terrain(),
            [Point::new(40.0, 50.0), Point::new(60.0, 50.0)],
        );
        let model = IdealDisk::new(15.0);
        let at = Point::new(50.0, 57.0); // north part of the lens
        let locus_fix =
            LocusLocalizer::new(UnheardPolicy::TerrainCenter).localize(&field, &model, at);
        let centroid_fix =
            CentroidLocalizer::new(UnheardPolicy::TerrainCenter).localize(&field, &model, at);
        // Both heard the same beacons.
        assert_eq!(locus_fix.heard, centroid_fix.heard);
        // The lens is symmetric about y = 50, so the two estimates tie on
        // this geometry; the locus estimate must not be *worse*.
        assert!(locus_fix.error(at).unwrap() <= centroid_fix.error(at).unwrap() + 1e-6);
    }

    #[test]
    fn unheard_policy_applies() {
        let field = BeaconField::from_positions(terrain(), [Point::new(0.0, 0.0)]);
        let loc = LocusLocalizer::new(UnheardPolicy::Exclude);
        let fix = loc.localize(&field, &IdealDisk::new(5.0), Point::new(90.0, 90.0));
        assert_eq!(fix.estimate, None);
        assert_eq!(fix.heard, 0);
    }

    #[test]
    #[should_panic(expected = "at least 8 arc segments")]
    fn rejects_coarse_arcs() {
        let _ = LocusLocalizer::new(UnheardPolicy::TerrainCenter).with_arc_segments(4);
    }
}
