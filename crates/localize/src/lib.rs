//! Connectivity-based RF localization (paper §2) and extensions.
//!
//! A client node estimates its own position from the beacons it can hear:
//!
//! * [`ConnectivityOracle`] — computes the connected beacon set at any
//!   point, combining a beacon field with a propagation model,
//! * [`CentroidLocalizer`] — the paper's localizer (from Bulusu,
//!   Heidemann & Estrin, *GPS-less low cost outdoor localization for very
//!   small devices*, 2000): the estimate is the **centroid of the
//!   positions of all connected beacons**,
//! * [`UnheardPolicy`] — what to report when *no* beacon is heard (the
//!   paper leaves this case unspecified; see DESIGN.md),
//! * [`LocusLocalizer`] — the footnote-3 alternative: the client lies in
//!   the intersection of the connected beacons' coverage disks; this
//!   localizer computes that locus as a polygon and uses its area
//!   centroid,
//! * [`MultilaterationLocalizer`] — the future-work (§6) comparison point:
//!   least-squares position from noisy range estimates,
//! * [`localization_error`] — the paper's `LE` metric,
//! * [`regions`] — localization-region counting (Figure 1's granularity
//!   argument).
//!
//! # Example
//!
//! ```
//! use abp_field::BeaconField;
//! use abp_geom::{Point, Terrain};
//! use abp_localize::{CentroidLocalizer, Localizer, UnheardPolicy, localization_error};
//! use abp_radio::IdealDisk;
//!
//! let field = BeaconField::from_positions(
//!     Terrain::square(100.0),
//!     [Point::new(40.0, 50.0), Point::new(60.0, 50.0)],
//! );
//! let model = IdealDisk::new(15.0);
//! let localizer = CentroidLocalizer::new(UnheardPolicy::TerrainCenter);
//!
//! // A client at (50, 50) hears both beacons; estimate = their centroid.
//! let fix = localizer.localize(&field, &model, Point::new(50.0, 50.0));
//! assert_eq!(fix.estimate, Some(Point::new(50.0, 50.0)));
//! assert_eq!(localization_error(fix.estimate.unwrap(), Point::new(50.0, 50.0)), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centroid;
pub mod error;
pub mod locus;
pub mod multilat;
pub mod oracle;
pub mod regions;
pub mod weighted;

/// Telemetry: point-localization evaluations performed by any
/// [`Localizer`] implementation in this crate (one per `localize` call).
pub static LOCALIZER_EVALS: abp_trace::Counter = abp_trace::Counter::new("localizer_evals");

pub use centroid::{CentroidLocalizer, UnheardPolicy};
pub use error::localization_error;
pub use locus::LocusLocalizer;
pub use multilat::MultilaterationLocalizer;
pub use oracle::ConnectivityOracle;
pub use weighted::WeightedCentroidLocalizer;

use abp_field::BeaconField;
use abp_geom::Point;
use abp_radio::Propagation;
use serde::{Deserialize, Serialize};

/// The outcome of one localization attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fix {
    /// The position estimate, or `None` when the localizer declines to
    /// produce one (no beacons heard under
    /// [`UnheardPolicy::Exclude`](crate::UnheardPolicy)).
    pub estimate: Option<Point>,
    /// How many beacons were heard.
    pub heard: usize,
}

impl Fix {
    /// Localization error against the client's actual position, or `None`
    /// if there is no estimate.
    pub fn error(&self, actual: Point) -> Option<f64> {
        self.estimate.map(|e| localization_error(e, actual))
    }
}

/// The typed outcome of a connectivity-aware localization attempt.
///
/// Produced by [`Localizer::try_localize`]. Under fault injection
/// (`abp-fault`) beacons die and links drop, so an estimator can find
/// itself below the beacon count its method needs. Rather than panicking
/// — or silently falling back and letting the caller mistake a crude
/// estimate for a full-method one — the outcome says *which* happened,
/// while still carrying a best-effort [`Fix`] in both cases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Localization {
    /// Enough beacons were heard for the estimator's full method.
    Full(Fix),
    /// Connectivity fell below [`Localizer::min_beacons`]: `heard` says
    /// how many beacons were available, and `fallback` is the graceful
    /// degraded estimate (for example a centroid instead of a
    /// multilateration solve, or the unheard-policy position).
    Degraded {
        /// How many beacons were heard — fewer than the estimator needs.
        heard: usize,
        /// The best-effort estimate produced anyway.
        fallback: Fix,
    },
}

impl Localization {
    /// The fix, whether full-method or degraded.
    pub fn fix(&self) -> Fix {
        match *self {
            Localization::Full(fix) => fix,
            Localization::Degraded { fallback, .. } => fallback,
        }
    }

    /// How many beacons were heard.
    pub fn heard(&self) -> usize {
        match *self {
            Localization::Full(fix) => fix.heard,
            Localization::Degraded { heard, .. } => heard,
        }
    }

    /// Whether connectivity fell below the estimator's minimum.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Localization::Degraded { .. })
    }
}

/// A localization algorithm: estimates a client's position from the
/// beacons it hears at `at`.
///
/// Object-safe so experiments can swap localizers at run time.
pub trait Localizer {
    /// Produces a fix for a client located at `at`.
    fn localize(&self, field: &BeaconField, model: &dyn Propagation, at: Point) -> Fix;

    /// Produces a fix using a caller-provided [`ConnectivityOracle`] —
    /// the entry point that lets neighbor gathering go through a spatial
    /// index ([`ConnectivityOracle::with_index`]).
    ///
    /// The default delegates to [`Localizer::localize`] with the oracle's
    /// field and model (ignoring any attached index), so third-party
    /// localizers stay correct; every localizer in this crate overrides
    /// it to gather neighbors through the oracle, making indexed and
    /// brute-force fixes identical by the oracle's ordering guarantee.
    fn localize_via(&self, oracle: &ConnectivityOracle<'_>, at: Point) -> Fix {
        self.localize(oracle.field(), oracle.model(), at)
    }

    /// The [`UnheardPolicy`] this localizer applies when no beacon is
    /// heard. Surveys record this policy on the maps they build so that
    /// per-point validity matches what [`Localizer::localize`] actually
    /// returned.
    fn unheard_policy(&self) -> UnheardPolicy {
        UnheardPolicy::Exclude
    }

    /// The minimum number of heard beacons the estimator's *full* method
    /// requires. Below this, [`Localizer::try_localize`] reports
    /// [`Localization::Degraded`]. Proximity estimators work from a
    /// single beacon; geometric solvers override this (multilateration
    /// needs three ranges in the plane).
    fn min_beacons(&self) -> usize {
        1
    }

    /// Localizes with typed degradation instead of a silent fallback.
    ///
    /// Never panics on poor connectivity: when fewer than
    /// [`Localizer::min_beacons`] beacons are heard the result is
    /// [`Localization::Degraded`] carrying whatever graceful estimate
    /// [`Localizer::localize`] produced for the same inputs.
    fn try_localize(
        &self,
        field: &BeaconField,
        model: &dyn Propagation,
        at: Point,
    ) -> Localization {
        let fix = self.localize(field, model, at);
        if fix.heard < self.min_beacons() {
            Localization::Degraded {
                heard: fix.heard,
                fallback: fix,
            }
        } else {
            Localization::Full(fix)
        }
    }

    /// [`Localizer::try_localize`] through a caller-provided oracle, so
    /// the neighbor gathering of the degradation check shares the
    /// oracle's spatial index.
    fn try_localize_via(&self, oracle: &ConnectivityOracle<'_>, at: Point) -> Localization {
        let fix = self.localize_via(oracle, at);
        if fix.heard < self.min_beacons() {
            Localization::Degraded {
                heard: fix.heard,
                fallback: fix,
            }
        } else {
            Localization::Full(fix)
        }
    }
}
