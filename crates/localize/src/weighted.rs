//! Distance-weighted centroid localization.
//!
//! The natural refinement of the paper's estimator (explored by the
//! centroid-localization literature that followed it): instead of the
//! plain average of heard beacon positions, weight each beacon by a
//! proxy for proximity. A beacon heard from *just* inside its range says
//! less about the client's position than one heard loud and clear; under
//! a connectivity-only radio the best available proxy is the count-free
//! geometry itself, so this localizer weights by `(1 - d̂/R)^gamma` where
//! `d̂` is the *measured-range proxy* — here the true distance perturbed
//! by the same deterministic noise machinery the multilateration
//! localizer uses.

use crate::oracle::ConnectivityOracle;
use crate::{Fix, Localizer, UnheardPolicy};
use abp_field::BeaconField;
use abp_geom::{DeterministicField, Point};
use abp_radio::Propagation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Centroid weighted by proximity.
///
/// Each heard beacon `B_i` contributes weight
/// `w_i = max(eps, 1 − d̂_i / R)^gamma`, where `d̂_i` is a range proxy
/// (true distance times a deterministic `1 + u·sigma` perturbation),
/// `R` the nominal range and `gamma` the sharpening exponent:
///
/// * `gamma = 0` recovers the paper's unweighted centroid exactly,
/// * `gamma = 1` linear weighting,
/// * larger `gamma` trusts only the closest beacons.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Point, Terrain};
/// use abp_localize::{Localizer, UnheardPolicy, WeightedCentroidLocalizer};
/// use abp_radio::IdealDisk;
///
/// let field = BeaconField::from_positions(
///     Terrain::square(100.0),
///     [Point::new(45.0, 50.0), Point::new(60.0, 50.0)],
/// );
/// // Client right next to the first beacon: the weighted estimate leans
/// // toward it, beating the midpoint.
/// let at = Point::new(46.0, 50.0);
/// let loc = WeightedCentroidLocalizer::new(2.0, 0.0, 7, UnheardPolicy::TerrainCenter);
/// let fix = loc.localize(&field, &IdealDisk::new(20.0), at);
/// assert!(fix.estimate.unwrap().x < 52.5); // plain centroid would say 52.5
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedCentroidLocalizer {
    gamma: f64,
    range_sigma: f64,
    noise: DeterministicField,
    policy: UnheardPolicy,
}

/// Weights below this floor are clamped (keeps every heard beacon in the
/// estimate and the weight sum positive).
const WEIGHT_FLOOR: f64 = 1e-3;

impl WeightedCentroidLocalizer {
    /// Creates the localizer.
    ///
    /// * `gamma` — sharpening exponent (`0` = plain centroid),
    /// * `range_sigma` — relative error of the range proxy in `[0, 1)`,
    /// * `seed` — realizes the proxy errors,
    /// * `policy` — estimate when nothing is heard.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is negative/not finite or `range_sigma` is not in
    /// `[0, 1)`.
    pub fn new(gamma: f64, range_sigma: f64, seed: u64, policy: UnheardPolicy) -> Self {
        assert!(
            gamma.is_finite() && gamma >= 0.0,
            "gamma must be finite and non-negative, got {gamma}"
        );
        assert!(
            (0.0..1.0).contains(&range_sigma),
            "range sigma must be in [0, 1), got {range_sigma}"
        );
        WeightedCentroidLocalizer {
            gamma,
            range_sigma,
            noise: DeterministicField::new(seed),
            policy,
        }
    }

    /// The sharpening exponent.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The range proxy for a beacon at `pos` heard from `at`.
    fn range_proxy(&self, key: u64, pos: Point, at: Point) -> f64 {
        let d = pos.distance(at);
        d * (1.0 + self.noise.symmetric(key, at) * self.range_sigma)
    }
}

impl Localizer for WeightedCentroidLocalizer {
    fn localize(&self, field: &BeaconField, model: &dyn Propagation, at: Point) -> Fix {
        self.localize_via(&ConnectivityOracle::new(field, model), at)
    }

    fn localize_via(&self, oracle: &ConnectivityOracle<'_>, at: Point) -> Fix {
        crate::LOCALIZER_EVALS.add(1);
        let nominal = oracle.model().nominal_range();
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        let mut sum_w = 0.0;
        let mut heard = 0usize;
        oracle.for_each_heard(at, |b| {
            let proxy = self.range_proxy(b.id().0, b.pos(), at);
            let w = (1.0 - proxy / nominal).max(WEIGHT_FLOOR).powf(self.gamma);
            sum_x += b.pos().x * w;
            sum_y += b.pos().y * w;
            sum_w += w;
            heard += 1;
        });
        let estimate = if heard == 0 {
            self.policy.estimate(oracle.field().terrain())
        } else {
            Some(Point::new(sum_x / sum_w, sum_y / sum_w))
        };
        Fix { estimate, heard }
    }

    fn unheard_policy(&self) -> UnheardPolicy {
        self.policy
    }
}

impl fmt::Display for WeightedCentroidLocalizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weighted centroid (gamma {}, range sigma {}, unheard: {})",
            self.gamma, self.range_sigma, self.policy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CentroidLocalizer;
    use abp_geom::Terrain;
    use abp_radio::IdealDisk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    #[test]
    fn gamma_zero_equals_plain_centroid() {
        let mut rng = StdRng::seed_from_u64(3);
        let field = BeaconField::random_uniform(40, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let weighted = WeightedCentroidLocalizer::new(0.0, 0.0, 1, UnheardPolicy::TerrainCenter);
        let plain = CentroidLocalizer::new(UnheardPolicy::TerrainCenter);
        for k in 0..100 {
            let at = Point::new((k % 10) as f64 * 10.0, (k / 10) as f64 * 10.0);
            let a = weighted.localize(&field, &model, at);
            let b = plain.localize(&field, &model, at);
            assert_eq!(a.heard, b.heard);
            let (ea, eb) = (a.estimate.unwrap(), b.estimate.unwrap());
            assert!(ea.distance(eb) < 1e-9, "at {at}: {ea} vs {eb}");
        }
    }

    #[test]
    fn weighting_pulls_toward_near_beacons() {
        let field = BeaconField::from_positions(
            terrain(),
            [Point::new(40.0, 50.0), Point::new(60.0, 50.0)],
        );
        let model = IdealDisk::new(25.0);
        let at = Point::new(42.0, 50.0); // very close to the west beacon
        let loc = WeightedCentroidLocalizer::new(2.0, 0.0, 1, UnheardPolicy::TerrainCenter);
        let est = loc.localize(&field, &model, at).estimate.unwrap();
        assert!(est.x < 50.0, "estimate {est} did not lean west");
        // And it beats the plain centroid here.
        let plain = CentroidLocalizer::new(UnheardPolicy::TerrainCenter)
            .localize(&field, &model, at)
            .estimate
            .unwrap();
        assert!(est.distance(at) < plain.distance(at));
    }

    #[test]
    fn weighted_beats_plain_on_average_with_good_ranges() {
        let model = IdealDisk::new(15.0);
        let plain = CentroidLocalizer::new(UnheardPolicy::Exclude);
        let weighted = WeightedCentroidLocalizer::new(1.0, 0.05, 9, UnheardPolicy::Exclude);
        let mut plain_sum = 0.0;
        let mut weighted_sum = 0.0;
        let mut n = 0;
        for seed in 0..10 {
            let field =
                BeaconField::random_uniform(120, terrain(), &mut StdRng::seed_from_u64(seed));
            for k in 0..100 {
                let at = Point::new(5.0 + (k % 10) as f64 * 10.0, 5.0 + (k / 10) as f64 * 10.0);
                let p = plain.localize(&field, &model, at);
                let w = weighted.localize(&field, &model, at);
                if let (Some(pe), Some(we)) = (p.error(at), w.error(at)) {
                    plain_sum += pe;
                    weighted_sum += we;
                    n += 1;
                }
            }
        }
        assert!(n > 500);
        assert!(
            weighted_sum < plain_sum,
            "weighted ({weighted_sum:.1}) should beat plain ({plain_sum:.1}) over {n} fixes"
        );
    }

    #[test]
    fn unheard_policy_applies() {
        let field = BeaconField::from_positions(terrain(), [Point::new(0.0, 0.0)]);
        let loc = WeightedCentroidLocalizer::new(1.0, 0.0, 1, UnheardPolicy::Exclude);
        let fix = loc.localize(&field, &IdealDisk::new(5.0), Point::new(90.0, 90.0));
        assert_eq!(fix.estimate, None);
        assert_eq!(fix.heard, 0);
    }

    #[test]
    fn deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let field = BeaconField::random_uniform(30, terrain(), &mut rng);
        let model = IdealDisk::new(15.0);
        let loc = WeightedCentroidLocalizer::new(1.5, 0.1, 11, UnheardPolicy::TerrainCenter);
        let at = Point::new(33.0, 44.0);
        assert_eq!(
            loc.localize(&field, &model, at),
            loc.localize(&field, &model, at)
        );
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_negative_gamma() {
        let _ = WeightedCentroidLocalizer::new(-1.0, 0.0, 0, UnheardPolicy::TerrainCenter);
    }
}
