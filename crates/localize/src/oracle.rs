//! The connectivity oracle: who can a client hear?

use abp_field::{Beacon, BeaconField};
use abp_geom::Point;
use abp_radio::Propagation;

/// Combines a beacon field with a propagation model to answer
/// "which beacons are connected at point `P`?" — the primitive every
/// localizer builds on.
///
/// For the dense lattice surveys the experiment engine uses a beacon-major
/// sweep instead (see `abp_survey::ErrorMap`); the oracle is the
/// point-query counterpart, used for arbitrary positions (robot paths,
/// examples, tests) and for validating the sweep.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Point, Terrain};
/// use abp_localize::ConnectivityOracle;
/// use abp_radio::IdealDisk;
///
/// let field = BeaconField::from_positions(
///     Terrain::square(100.0),
///     [Point::new(0.0, 0.0), Point::new(50.0, 50.0)],
/// );
/// let model = IdealDisk::new(15.0);
/// let oracle = ConnectivityOracle::new(&field, &model);
/// assert_eq!(oracle.heard_count(Point::new(5.0, 5.0)), 1);
/// assert_eq!(oracle.heard_count(Point::new(25.0, 25.0)), 0);
/// ```
#[derive(Clone, Copy)]
pub struct ConnectivityOracle<'a> {
    field: &'a BeaconField,
    model: &'a dyn Propagation,
}

impl std::fmt::Debug for ConnectivityOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnectivityOracle")
            .field("beacons", &self.field.len())
            .field("nominal_range", &self.model.nominal_range())
            .finish()
    }
}

impl<'a> ConnectivityOracle<'a> {
    /// Creates the oracle over a field and model.
    pub fn new(field: &'a BeaconField, model: &'a dyn Propagation) -> Self {
        ConnectivityOracle { field, model }
    }

    /// The underlying beacon field.
    #[inline]
    pub fn field(&self) -> &'a BeaconField {
        self.field
    }

    /// The underlying propagation model.
    #[inline]
    pub fn model(&self) -> &'a dyn Propagation {
        self.model
    }

    /// Invokes `f` for every beacon connected at `at`.
    pub fn for_each_heard<F: FnMut(&Beacon)>(&self, at: Point, mut f: F) {
        abp_radio::metrics::LINKS_TESTED.add(self.field.len() as u64);
        for b in self.field {
            if self.model.connected(b.tx(), b.pos(), at) {
                f(b);
            }
        }
    }

    /// The connected beacons at `at`, in beacon insertion order.
    pub fn heard(&self, at: Point) -> Vec<Beacon> {
        let mut out = Vec::new();
        self.for_each_heard(at, |b| out.push(*b));
        out
    }

    /// Number of beacons connected at `at`.
    pub fn heard_count(&self, at: Point) -> usize {
        let mut n = 0;
        self.for_each_heard(at, |_| n += 1);
        n
    }

    /// The *connectivity signature* at `at`: the sorted ids of connected
    /// beacons. Two points with equal signatures receive identical
    /// centroid estimates — they lie in the same localization region
    /// (Figure 1).
    pub fn signature(&self, at: Point) -> Vec<abp_field::BeaconId> {
        let mut ids: Vec<_> = Vec::new();
        self.for_each_heard(at, |b| ids.push(b.id()));
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Terrain;
    use abp_radio::{IdealDisk, PerBeaconNoise};

    fn cross_field() -> BeaconField {
        BeaconField::from_positions(
            Terrain::square(100.0),
            [
                Point::new(50.0, 50.0),
                Point::new(50.0, 70.0),
                Point::new(50.0, 30.0),
                Point::new(30.0, 50.0),
                Point::new(70.0, 50.0),
            ],
        )
    }

    #[test]
    fn heard_counts_by_position() {
        let field = cross_field();
        let model = IdealDisk::new(15.0);
        let oracle = ConnectivityOracle::new(&field, &model);
        // Center hears only the center beacon (others are 20 m away).
        assert_eq!(oracle.heard_count(Point::new(50.0, 50.0)), 1);
        // Midway between center and north beacon hears both.
        assert_eq!(oracle.heard_count(Point::new(50.0, 60.0)), 2);
        // Far corner hears nothing.
        assert_eq!(oracle.heard_count(Point::new(0.0, 0.0)), 0);
    }

    #[test]
    fn heard_returns_correct_beacons() {
        let field = cross_field();
        let model = IdealDisk::new(15.0);
        let oracle = ConnectivityOracle::new(&field, &model);
        let heard = oracle.heard(Point::new(50.0, 62.0));
        let positions: Vec<_> = heard.iter().map(|b| b.pos()).collect();
        assert_eq!(
            positions,
            vec![Point::new(50.0, 50.0), Point::new(50.0, 70.0)]
        );
    }

    #[test]
    fn signature_is_sorted_and_stable() {
        let field = cross_field();
        let model = IdealDisk::new(25.0);
        let oracle = ConnectivityOracle::new(&field, &model);
        let sig = oracle.signature(Point::new(50.0, 50.0));
        assert_eq!(sig.len(), 5);
        assert!(sig.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sig, oracle.signature(Point::new(50.0, 50.0)));
    }

    #[test]
    fn oracle_respects_noisy_model() {
        let field = cross_field();
        let noisy = PerBeaconNoise::new(15.0, 0.5, 7);
        let oracle = ConnectivityOracle::new(&field, &noisy);
        // Deterministic: repeated queries agree.
        let p = Point::new(50.0, 63.0);
        assert_eq!(oracle.heard(p), oracle.heard(p));
    }

    #[test]
    fn empty_field_hears_nothing() {
        let field = BeaconField::new(Terrain::square(10.0));
        let model = IdealDisk::new(5.0);
        let oracle = ConnectivityOracle::new(&field, &model);
        assert_eq!(oracle.heard_count(Point::new(5.0, 5.0)), 0);
        assert!(oracle.signature(Point::new(5.0, 5.0)).is_empty());
    }
}
