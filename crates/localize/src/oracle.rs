//! The connectivity oracle: who can a client hear?

use abp_field::{Beacon, BeaconField, CellIndex};
use abp_geom::Point;
use abp_radio::Propagation;

/// Combines a beacon field with a propagation model to answer
/// "which beacons are connected at point `P`?" — the primitive every
/// localizer builds on.
///
/// By default each query scans every beacon. Attach a spatial index with
/// [`ConnectivityOracle::with_index`] and queries visit only the beacons
/// whose grid cells the query's reach disk touches — same results, in the
/// same beacon-insertion order (see the `abp_field::CellIndex` ordering
/// contract), so downstream f64 accumulation stays bit-identical.
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Point, Terrain};
/// use abp_localize::ConnectivityOracle;
/// use abp_radio::IdealDisk;
///
/// let field = BeaconField::from_positions(
///     Terrain::square(100.0),
///     [Point::new(0.0, 0.0), Point::new(50.0, 50.0)],
/// );
/// let model = IdealDisk::new(15.0);
/// let oracle = ConnectivityOracle::new(&field, &model);
/// assert_eq!(oracle.heard_count(Point::new(5.0, 5.0)), 1);
/// assert_eq!(oracle.heard_count(Point::new(25.0, 25.0)), 0);
/// ```
#[derive(Clone, Copy)]
pub struct ConnectivityOracle<'a> {
    field: &'a BeaconField,
    model: &'a dyn Propagation,
    /// Spatial index, the query radius (the field-wide maximum reach:
    /// beacons farther than this cannot be connected, by the
    /// `Propagation::max_range` upper-bound contract), and whether the
    /// index's precomputed candidate lists cover that radius (decided
    /// once at construction so the per-query path is branch-stable).
    index: Option<(&'a CellIndex, f64, bool)>,
}

impl std::fmt::Debug for ConnectivityOracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnectivityOracle")
            .field("beacons", &self.field.len())
            .field("nominal_range", &self.model.nominal_range())
            .field("indexed", &self.index.is_some())
            .finish()
    }
}

impl<'a> ConnectivityOracle<'a> {
    /// Creates the oracle over a field and model (brute-force queries).
    pub fn new(field: &'a BeaconField, model: &'a dyn Propagation) -> Self {
        ConnectivityOracle {
            field,
            model,
            index: None,
        }
    }

    /// Creates an oracle whose queries go through `index` instead of
    /// scanning every beacon.
    ///
    /// `index` must have been built over exactly the beacons of `field`
    /// (see [`ConnectivityOracle::build_index`]); results and their order
    /// are then identical to the brute-force oracle — the index only
    /// prunes beacons that `Propagation::max_range` proves unreachable.
    pub fn with_index(
        field: &'a BeaconField,
        model: &'a dyn Propagation,
        index: &'a CellIndex,
    ) -> Self {
        debug_assert_eq!(
            index.len(),
            field.len(),
            "index must cover exactly the field's beacons"
        );
        let reach = Self::query_reach(field, model);
        // The precomputed candidate lists are usable only when they
        // cover the full query reach (an index built with a smaller cell
        // would miss beacons between its reach and ours).
        let precomputed = index.candidate_reach() >= reach;
        ConnectivityOracle {
            field,
            model,
            index: Some((index, reach, precomputed)),
        }
    }

    /// Builds the spatial index matching this field and model: cell size
    /// equal to the field-wide maximum reach, so a query touches at most
    /// nine cells.
    pub fn build_index(field: &BeaconField, model: &dyn Propagation) -> CellIndex {
        CellIndex::build(field, Self::query_reach(field, model))
    }

    /// Rebuilds `index` in place for this field and model — equivalent to
    /// `*index = ConnectivityOracle::build_index(field, model)` but
    /// reusing the index's buffers (see [`CellIndex::rebuild`]), so a
    /// scratch-held index costs no allocations across trials.
    pub fn rebuild_index(index: &mut CellIndex, field: &BeaconField, model: &dyn Propagation) {
        index.rebuild(field, Self::query_reach(field, model));
    }

    /// The field-wide maximum connectivity distance: no beacon can be
    /// heard from farther away. Falls back to the nominal range on an
    /// empty field, and is always finite and positive.
    pub fn query_reach(field: &BeaconField, model: &dyn Propagation) -> f64 {
        let reach = field
            .iter()
            .map(|b| model.max_range(b.tx(), b.pos()))
            .fold(model.nominal_range(), f64::max);
        assert!(
            reach.is_finite() && reach > 0.0,
            "propagation reach must be finite and positive, got {reach}"
        );
        reach
    }

    /// The underlying beacon field.
    #[inline]
    pub fn field(&self) -> &'a BeaconField {
        self.field
    }

    /// The underlying propagation model.
    #[inline]
    pub fn model(&self) -> &'a dyn Propagation {
        self.model
    }

    /// Invokes `f` for every beacon connected at `at`, in beacon
    /// insertion order (on both the brute and the indexed path).
    pub fn for_each_heard<F: FnMut(&Beacon)>(&self, at: Point, mut f: F) {
        match self.index {
            // Fast path: the index's precomputed candidate lists cover
            // the query reach, so the query is one slice walk. An inline
            // distance check rejects out-of-reach candidates before the
            // (virtual) `connected()` call — sound because `reach` upper
            // bounds every beacon's `max_range`, so a beacon farther
            // than `reach` cannot be connected. The heard set and its
            // order are exactly the brute scan's.
            Some((index, reach, true)) => {
                let r2 = reach * reach;
                let mut tested = 0u64;
                index.for_each_candidate(at, |b| {
                    tested += 1;
                    if b.pos().distance_squared(at) <= r2
                        && self.model.connected(b.tx(), b.pos(), at)
                    {
                        f(b);
                    }
                });
                abp_radio::metrics::LINKS_TESTED.add(tested);
            }
            Some((index, reach, false)) => {
                let mut tested = 0u64;
                index.for_each_within(at, reach, |b| {
                    tested += 1;
                    if self.model.connected(b.tx(), b.pos(), at) {
                        f(b);
                    }
                });
                abp_radio::metrics::LINKS_TESTED.add(tested);
            }
            None => {
                abp_radio::metrics::LINKS_TESTED.add(self.field.len() as u64);
                for b in self.field {
                    if self.model.connected(b.tx(), b.pos(), at) {
                        f(b);
                    }
                }
            }
        }
    }

    /// The connected beacons at `at`, in beacon insertion order.
    pub fn heard(&self, at: Point) -> Vec<Beacon> {
        let mut out = Vec::new();
        self.for_each_heard(at, |b| out.push(*b));
        out
    }

    /// Number of beacons connected at `at`.
    pub fn heard_count(&self, at: Point) -> usize {
        let mut n = 0;
        self.for_each_heard(at, |_| n += 1);
        n
    }

    /// The *connectivity signature* at `at`: the sorted ids of connected
    /// beacons. Two points with equal signatures receive identical
    /// centroid estimates — they lie in the same localization region
    /// (Figure 1).
    pub fn signature(&self, at: Point) -> Vec<abp_field::BeaconId> {
        let mut ids: Vec<_> = Vec::new();
        self.for_each_heard(at, |b| ids.push(b.id()));
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Terrain;
    use abp_radio::{IdealDisk, PerBeaconNoise};

    fn cross_field() -> BeaconField {
        BeaconField::from_positions(
            Terrain::square(100.0),
            [
                Point::new(50.0, 50.0),
                Point::new(50.0, 70.0),
                Point::new(50.0, 30.0),
                Point::new(30.0, 50.0),
                Point::new(70.0, 50.0),
            ],
        )
    }

    #[test]
    fn heard_counts_by_position() {
        let field = cross_field();
        let model = IdealDisk::new(15.0);
        let oracle = ConnectivityOracle::new(&field, &model);
        // Center hears only the center beacon (others are 20 m away).
        assert_eq!(oracle.heard_count(Point::new(50.0, 50.0)), 1);
        // Midway between center and north beacon hears both.
        assert_eq!(oracle.heard_count(Point::new(50.0, 60.0)), 2);
        // Far corner hears nothing.
        assert_eq!(oracle.heard_count(Point::new(0.0, 0.0)), 0);
    }

    #[test]
    fn heard_returns_correct_beacons() {
        let field = cross_field();
        let model = IdealDisk::new(15.0);
        let oracle = ConnectivityOracle::new(&field, &model);
        let heard = oracle.heard(Point::new(50.0, 62.0));
        let positions: Vec<_> = heard.iter().map(|b| b.pos()).collect();
        assert_eq!(
            positions,
            vec![Point::new(50.0, 50.0), Point::new(50.0, 70.0)]
        );
    }

    #[test]
    fn signature_is_sorted_and_stable() {
        let field = cross_field();
        let model = IdealDisk::new(25.0);
        let oracle = ConnectivityOracle::new(&field, &model);
        let sig = oracle.signature(Point::new(50.0, 50.0));
        assert_eq!(sig.len(), 5);
        assert!(sig.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sig, oracle.signature(Point::new(50.0, 50.0)));
    }

    #[test]
    fn oracle_respects_noisy_model() {
        let field = cross_field();
        let noisy = PerBeaconNoise::new(15.0, 0.5, 7);
        let oracle = ConnectivityOracle::new(&field, &noisy);
        // Deterministic: repeated queries agree.
        let p = Point::new(50.0, 63.0);
        assert_eq!(oracle.heard(p), oracle.heard(p));
    }

    #[test]
    fn indexed_oracle_matches_brute_in_order() {
        use abp_field::generate;
        let field = generate::uniform_grid(Terrain::square(100.0), 7);
        for noise in [0.0, 0.4] {
            let model = PerBeaconNoise::new(15.0, noise, 11);
            let brute = ConnectivityOracle::new(&field, &model);
            let index = ConnectivityOracle::build_index(&field, &model);
            let indexed = ConnectivityOracle::with_index(&field, &model, &index);
            for j in 0..11 {
                for i in 0..11 {
                    let at = Point::new(i as f64 * 10.0, j as f64 * 10.0);
                    // Identical heard sets, in identical (insertion) order.
                    assert_eq!(brute.heard(at), indexed.heard(at), "at {at}");
                }
            }
        }
    }

    #[test]
    fn empty_field_hears_nothing() {
        let field = BeaconField::new(Terrain::square(10.0));
        let model = IdealDisk::new(5.0);
        let oracle = ConnectivityOracle::new(&field, &model);
        assert_eq!(oracle.heard_count(Point::new(5.0, 5.0)), 0);
        assert!(oracle.signature(Point::new(5.0, 5.0)).is_empty());
    }
}
