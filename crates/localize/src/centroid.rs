//! The paper's centroid localizer (§2.2).

use crate::oracle::ConnectivityOracle;
use crate::{Fix, Localizer};
use abp_field::BeaconField;
use abp_geom::Point;
use abp_radio::Propagation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a localizer reports when the client hears **zero** beacons.
///
/// The paper evaluates densities low enough (1.41 beacons per coverage
/// area) that uncovered points exist, but never states the estimate used
/// there. We therefore make the convention explicit and configurable; the
/// experiment reports in EXPERIMENTS.md state which policy each figure
/// used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum UnheardPolicy {
    /// Estimate the terrain center — the argmin of worst-case error with
    /// zero information, and our default.
    #[default]
    TerrainCenter,
    /// Estimate the origin `(0, 0)` — a "null estimate" convention that
    /// penalizes uncovered points heavily.
    Origin,
    /// Produce no estimate; the survey excludes the point from error
    /// statistics.
    Exclude,
}

impl UnheardPolicy {
    /// The estimate this policy yields on a terrain, or `None` for
    /// [`UnheardPolicy::Exclude`].
    pub fn estimate(self, terrain: abp_geom::Terrain) -> Option<Point> {
        match self {
            UnheardPolicy::TerrainCenter => Some(terrain.center()),
            UnheardPolicy::Origin => Some(Point::ORIGIN),
            UnheardPolicy::Exclude => None,
        }
    }
}

impl fmt::Display for UnheardPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnheardPolicy::TerrainCenter => "terrain-center",
            UnheardPolicy::Origin => "origin",
            UnheardPolicy::Exclude => "exclude",
        };
        f.write_str(s)
    }
}

/// The paper's localization algorithm: a client estimates its position as
/// the **centroid of the positions of all connected beacons**,
///
/// ```text
/// (Xest, Yest) = ( (X1 + … + Xk) / k , (Y1 + … + Yk) / k )
/// ```
///
/// Under the idealized radio model the error is bounded by the nominal
/// range and the beacon separation; the paper cites a maximum error of
/// `0.5 d` at range-overlap ratio `R/d = 1`, falling to `0.25 d` at
/// `R/d = 4` (reproduced by the `overlap_bound` experiment in `abp-sim`).
///
/// # Example
///
/// ```
/// use abp_field::BeaconField;
/// use abp_geom::{Point, Terrain};
/// use abp_localize::{CentroidLocalizer, Localizer, UnheardPolicy};
/// use abp_radio::IdealDisk;
///
/// let field = BeaconField::from_positions(
///     Terrain::square(100.0),
///     [Point::new(45.0, 45.0), Point::new(55.0, 45.0), Point::new(50.0, 55.0)],
/// );
/// let loc = CentroidLocalizer::new(UnheardPolicy::TerrainCenter);
/// let fix = loc.localize(&field, &IdealDisk::new(15.0), Point::new(50.0, 48.0));
/// assert_eq!(fix.heard, 3);
/// assert_eq!(fix.estimate, Some(Point::new(50.0, 145.0 / 3.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CentroidLocalizer {
    policy: UnheardPolicy,
}

impl CentroidLocalizer {
    /// Creates the localizer with the given unheard policy.
    pub fn new(policy: UnheardPolicy) -> Self {
        CentroidLocalizer { policy }
    }

    /// The unheard policy.
    #[inline]
    pub fn policy(&self) -> UnheardPolicy {
        self.policy
    }
}

impl Localizer for CentroidLocalizer {
    fn localize(&self, field: &BeaconField, model: &dyn Propagation, at: Point) -> Fix {
        self.localize_via(&ConnectivityOracle::new(field, model), at)
    }

    fn localize_via(&self, oracle: &ConnectivityOracle<'_>, at: Point) -> Fix {
        crate::LOCALIZER_EVALS.add(1);
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        let mut heard = 0usize;
        oracle.for_each_heard(at, |b| {
            sum_x += b.pos().x;
            sum_y += b.pos().y;
            heard += 1;
        });
        let estimate = if heard == 0 {
            self.policy.estimate(oracle.field().terrain())
        } else {
            Some(Point::new(sum_x / heard as f64, sum_y / heard as f64))
        };
        Fix { estimate, heard }
    }

    fn unheard_policy(&self) -> UnheardPolicy {
        self.policy
    }
}

impl fmt::Display for CentroidLocalizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "centroid localizer (unheard: {})", self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_geom::Terrain;
    use abp_radio::IdealDisk;

    fn terrain() -> Terrain {
        Terrain::square(100.0)
    }

    #[test]
    fn single_beacon_estimate_is_beacon_position() {
        let field = BeaconField::from_positions(terrain(), [Point::new(20.0, 30.0)]);
        let loc = CentroidLocalizer::default();
        let fix = loc.localize(&field, &IdealDisk::new(15.0), Point::new(25.0, 30.0));
        assert_eq!(fix.heard, 1);
        assert_eq!(fix.estimate, Some(Point::new(20.0, 30.0)));
        // Error = distance to the beacon (5 m), bounded by R.
        assert_eq!(fix.error(Point::new(25.0, 30.0)), Some(5.0));
    }

    #[test]
    fn estimate_is_centroid_of_heard_only() {
        let field = BeaconField::from_positions(
            terrain(),
            [
                Point::new(40.0, 50.0),
                Point::new(60.0, 50.0),
                Point::new(99.0, 99.0), // out of range
            ],
        );
        let loc = CentroidLocalizer::default();
        let fix = loc.localize(&field, &IdealDisk::new(15.0), Point::new(50.0, 50.0));
        assert_eq!(fix.heard, 2);
        assert_eq!(fix.estimate, Some(Point::new(50.0, 50.0)));
    }

    #[test]
    fn unheard_policies() {
        let field = BeaconField::from_positions(terrain(), [Point::new(0.0, 0.0)]);
        let at = Point::new(90.0, 90.0);
        let model = IdealDisk::new(15.0);

        let center =
            CentroidLocalizer::new(UnheardPolicy::TerrainCenter).localize(&field, &model, at);
        assert_eq!(center.estimate, Some(Point::new(50.0, 50.0)));
        assert_eq!(center.heard, 0);

        let origin = CentroidLocalizer::new(UnheardPolicy::Origin).localize(&field, &model, at);
        assert_eq!(origin.estimate, Some(Point::ORIGIN));

        let excl = CentroidLocalizer::new(UnheardPolicy::Exclude).localize(&field, &model, at);
        assert_eq!(excl.estimate, None);
        assert_eq!(excl.error(at), None);
    }

    #[test]
    fn error_bounded_by_range_with_one_beacon() {
        // When >= 1 beacon is heard under the ideal model, the centroid of
        // heard beacons lies within R of the client... only guaranteed for
        // a single beacon; verify that case tightly.
        let field = BeaconField::from_positions(terrain(), [Point::new(50.0, 50.0)]);
        let loc = CentroidLocalizer::default();
        let model = IdealDisk::new(15.0);
        for k in 0..100 {
            let theta = std::f64::consts::TAU * k as f64 / 100.0;
            let at = Point::new(50.0 + 14.9 * theta.cos(), 50.0 + 14.9 * theta.sin());
            let fix = loc.localize(&field, &model, at);
            assert!(fix.error(at).unwrap() <= 15.0);
        }
    }

    #[test]
    fn denser_grid_reduces_error_figure1() {
        // Figure 1's claim: a 3x3 beacon grid localizes better than 2x2.
        let model = IdealDisk::new(60.0); // large R: everything overlaps
        let loc = CentroidLocalizer::default();
        let coarse = abp_field::generate::uniform_grid(terrain(), 2);
        let fine = abp_field::generate::uniform_grid(terrain(), 3);
        let mut err2 = 0.0;
        let mut err3 = 0.0;
        let mut n = 0;
        for j in 0..10 {
            for i in 0..10 {
                let at = Point::new(5.0 + i as f64 * 10.0, 5.0 + j as f64 * 10.0);
                err2 += loc.localize(&coarse, &model, at).error(at).unwrap();
                err3 += loc.localize(&fine, &model, at).error(at).unwrap();
                n += 1;
            }
        }
        assert!(
            err3 / n as f64 <= err2 / n as f64,
            "3x3 grid must not be worse than 2x2 ({err3} vs {err2})"
        );
    }

    #[test]
    fn policy_display() {
        assert_eq!(UnheardPolicy::TerrainCenter.to_string(), "terrain-center");
        assert_eq!(UnheardPolicy::Exclude.to_string(), "exclude");
    }
}
