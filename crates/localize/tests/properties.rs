//! Property-based tests for the localizers.

use abp_field::BeaconField;
use abp_geom::{Point, Terrain};
use abp_localize::{
    localization_error, CentroidLocalizer, ConnectivityOracle, Localizer, LocusLocalizer,
    MultilaterationLocalizer, UnheardPolicy,
};
use abp_radio::{IdealDisk, PerBeaconNoise, Propagation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIDE: f64 = 100.0;

fn terrain() -> Terrain {
    Terrain::square(SIDE)
}

fn client() -> impl Strategy<Value = Point> {
    (0.0..SIDE, 0.0..SIDE).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn centroid_estimate_inside_terrain(
        n in 0usize..80, seed in any::<u64>(), at in client()
    ) {
        let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = IdealDisk::new(15.0);
        let fix = CentroidLocalizer::new(UnheardPolicy::TerrainCenter)
            .localize(&field, &model, at);
        // Beacons are inside the terrain, so their centroid is too.
        let est = fix.estimate.unwrap();
        prop_assert!(terrain().contains(est));
    }

    #[test]
    fn centroid_heard_matches_oracle(
        n in 0usize..80, seed in any::<u64>(), at in client(), noise in 0.0..0.6f64
    ) {
        let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = PerBeaconNoise::new(15.0, noise, seed ^ 0xDEAD);
        let oracle = ConnectivityOracle::new(&field, &model);
        let fix = CentroidLocalizer::new(UnheardPolicy::Exclude).localize(&field, &model, at);
        prop_assert_eq!(fix.heard, oracle.heard_count(at));
        prop_assert_eq!(fix.estimate.is_none(), fix.heard == 0);
    }

    #[test]
    fn single_heard_beacon_error_bounded_by_effective_range(
        n in 1usize..40, seed in any::<u64>(), at in client(), noise in 0.0..0.6f64
    ) {
        let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = PerBeaconNoise::new(15.0, noise, seed ^ 0xBEEF);
        let fix = CentroidLocalizer::new(UnheardPolicy::Exclude).localize(&field, &model, at);
        if fix.heard == 1 {
            // The estimate is the beacon itself; it heard us within its
            // effective radius <= R(1 + noise).
            let err = fix.error(at).unwrap();
            prop_assert!(err <= 15.0 * (1.0 + noise) + 1e-9);
        }
    }

    #[test]
    fn centroid_error_never_exceeds_unheard_policy_worst_case(
        n in 0usize..60, seed in any::<u64>(), at in client()
    ) {
        // With TerrainCenter policy the error is at most the distance from
        // `at` to the farthest point reachable as a centroid: diag/2 when
        // unheard; diag otherwise (estimates stay in terrain).
        let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = IdealDisk::new(15.0);
        let fix = CentroidLocalizer::new(UnheardPolicy::TerrainCenter)
            .localize(&field, &model, at);
        let err = fix.error(at).unwrap();
        prop_assert!(err <= SIDE * std::f64::consts::SQRT_2 + 1e-9);
    }

    #[test]
    fn locus_and_centroid_hear_the_same(
        n in 0usize..40, seed in any::<u64>(), at in client()
    ) {
        let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = IdealDisk::new(15.0);
        let a = LocusLocalizer::new(UnheardPolicy::Exclude).localize(&field, &model, at);
        let b = CentroidLocalizer::new(UnheardPolicy::Exclude).localize(&field, &model, at);
        prop_assert_eq!(a.heard, b.heard);
    }

    #[test]
    fn locus_contains_client_under_ideal_model(
        n in 1usize..30, seed in any::<u64>(), at in client()
    ) {
        let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = IdealDisk::new(15.0);
        let loc = LocusLocalizer::new(UnheardPolicy::Exclude).with_arc_segments(128);
        let oracle = ConnectivityOracle::new(&field, &model);
        if oracle.heard_count(at) > 0 {
            let poly = loc.locus(&field, &model, at);
            // The inscribed-polygon approximation can shave the boundary;
            // only check clients that are not razor-thin cases.
            if poly.area() > 1.0 {
                let c = poly.centroid().or_else(|| poly.vertex_mean()).unwrap();
                // Sanity: centroid finite and near the terrain.
                prop_assert!(c.is_finite());
                prop_assert!(c.x > -20.0 && c.x < SIDE + 20.0);
            }
        }
    }

    #[test]
    fn multilateration_exact_without_noise(
        seed in any::<u64>(), at in client()
    ) {
        // A well-spread triangle that always hears the client.
        let field = BeaconField::from_positions(
            terrain(),
            [Point::new(5.0, 5.0), Point::new(95.0, 10.0), Point::new(50.0, 95.0)],
        );
        let model = IdealDisk::new(200.0);
        let loc = MultilaterationLocalizer::new(0.0, seed, UnheardPolicy::TerrainCenter);
        let fix = loc.localize(&field, &model, at);
        prop_assert_eq!(fix.heard, 3);
        let err = fix.error(at).unwrap();
        prop_assert!(err < 1e-5, "residual error {err}");
    }

    #[test]
    fn localization_error_is_a_metric(a in client(), b in client()) {
        prop_assert_eq!(localization_error(a, b), localization_error(b, a));
        prop_assert!(localization_error(a, b) >= 0.0);
        prop_assert_eq!(localization_error(a, a), 0.0);
    }

    #[test]
    fn localizers_deterministic(
        n in 0usize..50, seed in any::<u64>(), at in client(), noise in 0.0..0.6f64
    ) {
        let field = BeaconField::random_uniform(n, terrain(), &mut StdRng::seed_from_u64(seed));
        let model = PerBeaconNoise::new(15.0, noise, seed);
        let loc = CentroidLocalizer::new(UnheardPolicy::TerrainCenter);
        let f1 = loc.localize(&field, &model, at);
        let f2 = loc.localize(&field, &model, at);
        prop_assert_eq!(f1, f2);
    }
}

#[test]
fn object_safe_localizer_collection() {
    // Experiments iterate heterogeneous localizers via trait objects.
    let localizers: Vec<Box<dyn Localizer>> = vec![
        Box::new(CentroidLocalizer::new(UnheardPolicy::TerrainCenter)),
        Box::new(LocusLocalizer::new(UnheardPolicy::TerrainCenter)),
        Box::new(MultilaterationLocalizer::new(
            0.05,
            1,
            UnheardPolicy::TerrainCenter,
        )),
    ];
    let field = BeaconField::from_positions(
        terrain(),
        [
            Point::new(40.0, 40.0),
            Point::new(60.0, 40.0),
            Point::new(50.0, 60.0),
        ],
    );
    let model: &dyn Propagation = &IdealDisk::new(30.0);
    for loc in &localizers {
        let fix = loc.localize(&field, model, Point::new(50.0, 47.0));
        assert_eq!(fix.heard, 3);
        assert!(fix.estimate.is_some());
    }
}
