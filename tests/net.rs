//! Cross-crate guarantees of the time-domain simulator (`abp-net`).
//!
//! The headline gate: with an always-on radio and `CMthresh = 1`, the
//! message-counting oracle degenerates to the timeless base predicate,
//! so surveying the paper-preset lattice through either produces
//! **bit-identical** error maps. Everything the rest of the workspace
//! derives from a `Propagation` model is therefore a special case of
//! the packet-level simulation, not a parallel implementation.

use abp_fault::{FaultPlan, MortalityPlan};
use abp_net::{NetConfig, NetSim};
use abp_radio::{IdealDisk, Propagation};
use abp_sim::SimConfig;
use abp_survey::ErrorMap;

/// §2.2/§6 reduction on the paper preset: always-on radio, `CMthresh`
/// 1 — the oracle's map equals the base model's map bit for bit.
#[test]
fn always_on_oracle_reproduces_the_paper_error_map() {
    let cfg = SimConfig::paper();
    let seed = cfg.trial_seed(0, 0);
    let field = cfg.trial_field(40, seed);
    let base = cfg.model(0.0, seed); // exact IdealDisk
    let ncfg = NetConfig::always_on();
    assert_eq!(ncfg.cmthresh, 1);

    let run = NetSim::run(&field, &*base, &ncfg, seed);
    // The ideal channel never collides and every beacon transmits.
    assert_eq!(run.stats.collisions, 0);
    assert!(run.stats.messages_sent >= field.len() as u64);

    let lattice = cfg.lattice();
    let oracle = run.oracle(&*base);
    let via_time = ErrorMap::survey(&lattice, &field, &oracle, cfg.policy);
    let timeless = ErrorMap::survey(&lattice, &field, &*base, cfg.policy);
    assert_eq!(via_time, timeless, "oracle map diverged from base map");
}

/// The reduction holds under a noisy base model too — the oracle layers
/// time on top of whatever `connected` it is given, so per-beacon noise
/// passes straight through.
#[test]
fn always_on_reduction_holds_under_noise() {
    let cfg = SimConfig::tiny();
    let seed = cfg.trial_seed(1, 3);
    let field = cfg.trial_field(60, seed);
    let base = cfg.model(0.3, seed); // PerBeaconNoise
    let run = NetSim::run(&field, &*base, &NetConfig::always_on(), seed);

    let lattice = cfg.lattice();
    let oracle = run.oracle(&*base);
    let via_time = ErrorMap::survey(&lattice, &field, &oracle, cfg.policy);
    let timeless = ErrorMap::survey(&lattice, &field, &*base, cfg.policy);
    assert_eq!(via_time, timeless, "noisy-base reduction broke");
}

/// Same seed, same everything: the event logs are byte-identical. A
/// different seed diverges (the log is not a constant).
#[test]
fn replay_is_byte_identical_and_seed_sensitive() {
    let cfg = SimConfig::tiny();
    let seed = cfg.trial_seed(0, 0);
    let field = cfg.trial_field(30, seed);
    let base = IdealDisk::new(cfg.nominal_range);
    let ncfg = NetConfig::tiny();

    let a = NetSim::run(&field, &base, &ncfg, 7);
    let b = NetSim::run(&field, &base, &ncfg, 7);
    assert_eq!(a.log_bytes(), b.log_bytes());
    let c = NetSim::run(&field, &base, &ncfg, 8);
    assert_ne!(a.log_bytes(), c.log_bytes());
}

/// An `abp-fault` radio composes as the base model: with every beacon
/// permanently dead, nothing is ever delivered and the oracle hears
/// silence everywhere; with the healthy plan the wrapper is transparent
/// and the run is byte-identical to the unwrapped one.
#[test]
fn faulty_radio_composes_as_the_base_model() {
    let cfg = SimConfig::tiny();
    let seed = cfg.trial_seed(2, 5);
    let field = cfg.trial_field(40, seed);
    let disk = IdealDisk::new(cfg.nominal_range);
    let ncfg = NetConfig::always_on();

    let dead_plan = FaultPlan {
        mortality: Some(MortalityPlan {
            death_rate: 1.0,
            flap_rate: 0.0,
            duty_cycle: 1.0,
        }),
        ..FaultPlan::none()
    };
    let dead = dead_plan.compile(seed).wrap(disk, 0);
    let run = NetSim::run(&field, &dead, &ncfg, seed);
    assert_eq!(run.stats.messages_delivered, 0, "dead beacons were heard");
    let oracle = run.oracle(&dead);
    for b in field.beacons() {
        assert!(!oracle.connected(b.tx(), b.pos(), b.pos()));
    }

    let healthy = FaultPlan::none().compile(seed).wrap(disk, 0);
    let wrapped = NetSim::run(&field, &healthy, &ncfg, seed);
    let plain = NetSim::run(&field, &disk, &ncfg, seed);
    assert_eq!(wrapped.log_bytes(), plain.log_bytes());
    assert_eq!(
        wrapped.stats.messages_delivered,
        plain.stats.messages_delivered
    );
}
