//! Integration tests for the future-work extensions (paper §6 and §3.1):
//! partial exploration, self-scheduling, locus machinery, time-varying
//! propagation, and the multilateration recast.

use beaconplace::localize::{LocusLocalizer, MultilaterationLocalizer};
use beaconplace::placement::selfsched::{active_field, self_schedule};
use beaconplace::placement::LocusBreakPlacement;
use beaconplace::prelude::*;
use beaconplace::radio::TimeVarying;
use beaconplace::survey::sampling::{survey_partial, SubsampleStrategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn terrain() -> Terrain {
    Terrain::square(100.0)
}

/// Partial exploration drives the same placement machinery: Grid proposes
/// from a quarter-sampled map and still lands in the coverage hole.
#[test]
fn partial_exploration_still_finds_the_hole() {
    let lattice = Lattice::new(terrain(), 2.0);
    // Beacons everywhere except the north-east quadrant.
    let mut positions = Vec::new();
    for j in 0..10 {
        for i in 0..10 {
            let p = Point::new(5.0 + i as f64 * 10.0, 5.0 + j as f64 * 10.0);
            if !(p.x > 50.0 && p.y > 50.0) {
                positions.push(p);
            }
        }
    }
    let field = BeaconField::from_positions(terrain(), positions);
    let model = IdealDisk::new(15.0);
    let mut rng = StdRng::seed_from_u64(5);
    let partial = survey_partial(
        &lattice,
        &field,
        &model,
        UnheardPolicy::TerrainCenter,
        SubsampleStrategy::Random { fraction: 0.25 },
        &mut rng,
    );
    let view = SurveyView {
        map: &partial,
        field: &field,
        model: &model,
    };
    let p = GridPlacement::paper(terrain(), 15.0).propose(&view, &mut rng);
    assert!(
        p.x > 50.0 && p.y > 50.0,
        "grid missed the hole from a 25% survey: {p}"
    );
}

/// Self-scheduling composes with adaptive placement: prune a saturated
/// field, then let Grid patch whatever quality was lost.
#[test]
fn prune_then_patch_cycle() {
    let lattice = Lattice::new(terrain(), 4.0);
    let model = IdealDisk::new(15.0);
    let mut rng = StdRng::seed_from_u64(21);
    let field = BeaconField::random_uniform(200, terrain(), &mut rng);
    let full_error =
        ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter).mean_error();

    let schedule = self_schedule(&field, &model, 5, 2);
    assert!(schedule.duty_cycle() < 0.8, "saturated field should prune");
    let mut pruned = active_field(&field, &schedule);
    let mut map = ErrorMap::survey(&lattice, &pruned, &model, UnheardPolicy::TerrainCenter);

    // One Grid patch after pruning.
    let spot = {
        let view = SurveyView {
            map: &map,
            field: &pruned,
            model: &model,
        };
        GridPlacement::paper(terrain(), 15.0).propose(&view, &mut rng)
    };
    let id = pruned.add_beacon(spot);
    map.add_beacon(pruned.get(id).unwrap(), &model);
    assert!(
        map.mean_error() < full_error * 1.5,
        "prune+patch should stay near full quality: {} vs {}",
        map.mean_error(),
        full_error
    );
}

/// The locus localizer and the locus-break placement agree on the world:
/// breaking the largest region reduces the average locus area.
#[test]
fn locus_break_reduces_region_sizes() {
    use beaconplace::localize::regions::region_map;
    let lattice = Lattice::new(terrain(), 4.0);
    let model = IdealDisk::new(15.0);
    let mut rng = StdRng::seed_from_u64(33);
    let mut field = BeaconField::random_uniform(25, terrain(), &mut rng);
    let before = region_map(&lattice, &field, &model);
    let map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
    let spot = {
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &model,
        };
        LocusBreakPlacement::new().propose(&view, &mut rng)
    };
    field.add_beacon(spot);
    let after = region_map(&lattice, &field, &model);
    assert!(after.region_count > before.region_count);
    assert!(after.mean_region_size() < before.mean_region_size());
}

/// Locus and multilateration localizers slot into the same survey API and
/// produce sane maps.
#[test]
fn alternative_localizers_survey_end_to_end() {
    let lattice = Lattice::new(terrain(), 10.0);
    let model = IdealDisk::new(25.0);
    let mut rng = StdRng::seed_from_u64(2);
    let field = BeaconField::random_uniform(50, terrain(), &mut rng);

    let centroid = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
    let locus = ErrorMap::survey_with_localizer(
        &lattice,
        &field,
        &model,
        &LocusLocalizer::new(UnheardPolicy::TerrainCenter),
    );
    let multilat = ErrorMap::survey_with_localizer(
        &lattice,
        &field,
        &model,
        &MultilaterationLocalizer::new(0.0, 9, UnheardPolicy::TerrainCenter),
    );
    // With 50 beacons of R = 25 almost every point hears >= 3 beacons:
    // noise-free multilateration nearly nails every position.
    assert!(multilat.mean_error() < centroid.mean_error() * 0.5);
    // The locus centroid refines the plain beacon centroid on average.
    assert!(locus.mean_error() <= centroid.mean_error() * 1.05);
}

/// Time-varying propagation: a placement made at epoch 0 still helps at
/// later epochs (the adaptation is not overfitted to one instant).
#[test]
fn placement_survives_temporal_jitter() {
    let lattice = Lattice::new(terrain(), 4.0);
    let base = TimeVarying::new(IdealDisk::new(15.0), 0.15, 3);
    let mut rng = StdRng::seed_from_u64(10);
    let field = BeaconField::random_uniform(40, terrain(), &mut rng);

    let now = base.at_epoch(0);
    let map = ErrorMap::survey(&lattice, &field, &now, UnheardPolicy::TerrainCenter);
    let spot = {
        let view = SurveyView {
            map: &map,
            field: &field,
            model: &now,
        };
        GridPlacement::paper(terrain(), 15.0).propose(&view, &mut rng)
    };
    let mut extended = field.clone();
    extended.add_beacon(spot);

    let mut helped = 0;
    let epochs = 10;
    for e in 1..=epochs {
        let world = base.at_epoch(e);
        let before =
            ErrorMap::survey(&lattice, &field, &world, UnheardPolicy::TerrainCenter).mean_error();
        let after = ErrorMap::survey(&lattice, &extended, &world, UnheardPolicy::TerrainCenter)
            .mean_error();
        if after < before {
            helped += 1;
        }
    }
    assert!(
        helped >= epochs * 7 / 10,
        "epoch-0 placement helped only {helped}/{epochs} later epochs"
    );
}

/// Robot + partial exploration: a stride-2 sweep costs a quarter of the
/// measurements yet changes the Grid decision little on average.
#[test]
fn stride_survey_approximates_full_decision() {
    let lattice = Lattice::new(terrain(), 2.0);
    let model = IdealDisk::new(15.0);
    let mut agreements = 0;
    let trials = 12;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let field = BeaconField::random_uniform(35, terrain(), &mut rng);
        let full = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let coarse = survey_partial(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            SubsampleStrategy::Stride { stride: 2 },
            &mut rng,
        );
        let grid = GridPlacement::paper(terrain(), 15.0);
        let a = grid.propose(
            &SurveyView {
                map: &full,
                field: &field,
                model: &model,
            },
            &mut rng,
        );
        let b = grid.propose(
            &SurveyView {
                map: &coarse,
                field: &field,
                model: &model,
            },
            &mut rng,
        );
        if a.distance(b) < 15.0 {
            agreements += 1;
        }
    }
    assert!(
        agreements >= trials * 2 / 3,
        "stride-2 decisions agreed only {agreements}/{trials} times"
    );
}

/// Adaptive coarse-to-fine surveying: ~30% of the measurements, nearly
/// the same Grid decision.
#[test]
fn adaptive_survey_grid_decision_close_to_full() {
    use beaconplace::survey::sampling::survey_adaptive;
    let lattice = Lattice::new(terrain(), 2.0);
    let model = IdealDisk::new(15.0);
    let mut agree = 0;
    let trials = 10;
    for seed in 0..trials {
        let field =
            BeaconField::random_uniform(35, terrain(), &mut StdRng::seed_from_u64(400 + seed));
        let full = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
        let (adaptive, report) = survey_adaptive(
            &lattice,
            &field,
            &model,
            UnheardPolicy::TerrainCenter,
            4,
            0.25,
        );
        assert!(
            report.measured_fraction < 0.35,
            "{}",
            report.measured_fraction
        );
        let grid = GridPlacement::paper(terrain(), 15.0);
        let mut rng = StdRng::seed_from_u64(0);
        let a = grid.propose(
            &SurveyView {
                map: &full,
                field: &field,
                model: &model,
            },
            &mut rng,
        );
        let b = grid.propose(
            &SurveyView {
                map: &adaptive,
                field: &field,
                model: &model,
            },
            &mut rng,
        );
        if a.distance(b) < 15.0 {
            agree += 1;
        }
    }
    assert!(
        agree >= trials * 7 / 10,
        "only {agree}/{trials} decisions agreed"
    );
}

/// The terrain-shadowed model (§6's "sophisticated terrain map") creates
/// a radio shadow behind a hill that Grid placement then fills.
#[test]
fn terrain_shadow_gets_patched() {
    use beaconplace::radio::{HeightField, TerrainShadowed};
    let lattice = Lattice::new(terrain(), 2.0);
    // A 25 m hill in the middle of the terrain.
    let world = TerrainShadowed::new(
        IdealDisk::new(15.0),
        HeightField::hill(10.0, 11, 25.0, 30.0),
        1.5,
    );
    let flat = IdealDisk::new(15.0);
    let mut rng = StdRng::seed_from_u64(12);
    let field = BeaconField::random_uniform(60, terrain(), &mut rng);
    let flat_map = ErrorMap::survey(&lattice, &field, &flat, UnheardPolicy::TerrainCenter);
    let hill_map = ErrorMap::survey(&lattice, &field, &world, UnheardPolicy::TerrainCenter);
    // The hill strictly hurts localization.
    assert!(hill_map.mean_error() > flat_map.mean_error());
    assert!(hill_map.unheard_count() >= flat_map.unheard_count());
    // And the adaptive loop claws some of it back.
    let spot = {
        let view = SurveyView {
            map: &hill_map,
            field: &field,
            model: &world,
        };
        GridPlacement::paper(terrain(), 15.0).propose(&view, &mut rng)
    };
    let mut extended = field.clone();
    let id = extended.add_beacon(spot);
    let mut after = hill_map.clone();
    after.add_beacon(extended.get(id).unwrap(), &world);
    assert!(after.mean_error() < hill_map.mean_error());
}
