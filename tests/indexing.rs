//! Cross-crate guarantees of the grid-bin spatial index: every indexed
//! hot path — the survey sweep, the connectivity oracle behind the
//! localizers, and the incremental candidate scorers — must produce
//! **bit-identical** results to its brute-force counterpart, at a scale
//! where the index actually prunes.

use abp_field::BeaconField;
use abp_geom::{Lattice, Point, Terrain};
use abp_localize::{CentroidLocalizer, ConnectivityOracle, Localizer, UnheardPolicy};
use abp_placement::{
    greedy_batch, greedy_batch_incremental, GridPlacement, IncrementalGrid, IncrementalMax,
    MaxPlacement,
};
use abp_radio::{IdealDisk, PerBeaconNoise, Propagation};
use abp_survey::{ErrorMap, SurveyScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIDE: f64 = 100.0;
const RANGE: f64 = 15.0;

fn dense_field(beacons: usize, seed: u64) -> BeaconField {
    BeaconField::random_uniform(
        beacons,
        Terrain::square(SIDE),
        &mut StdRng::seed_from_u64(seed),
    )
}

fn assert_maps_bit_identical(a: &ErrorMap, b: &ErrorMap, what: &str) {
    for ix in a.lattice().indices() {
        assert_eq!(
            a.error_at(ix).map(f64::to_bits),
            b.error_at(ix).map(f64::to_bits),
            "{what}: error differs at {ix:?}"
        );
        assert_eq!(
            a.heard_at(ix),
            b.heard_at(ix),
            "{what}: heard differs at {ix:?}"
        );
    }
}

/// The indexed survey sweep returns the exact bits of the brute sweeps,
/// on both its specialized exact-disk path (`IdealDisk`) and its
/// oracle path (`PerBeaconNoise`, where connectivity is not a sharp
/// disk and every candidate still goes through `connected()`).
#[test]
fn indexed_survey_is_bit_identical_to_brute_at_scale() {
    let field = dense_field(100, 7);
    let lattice = Lattice::new(Terrain::square(SIDE), 2.0);
    let policy = UnheardPolicy::TerrainCenter;
    let models: [(&str, Box<dyn Propagation>); 2] = [
        ("ideal disk", Box::new(IdealDisk::new(RANGE))),
        (
            "per-beacon noise",
            Box::new(PerBeaconNoise::new(RANGE, 0.4, 11)),
        ),
    ];
    for (what, model) in &models {
        let beacon_major = ErrorMap::survey(&lattice, &field, model, policy);
        let point_major = ErrorMap::survey_point_major(&lattice, &field, model, policy);
        let indexed = ErrorMap::survey_indexed(&lattice, &field, model, policy);
        assert_maps_bit_identical(&beacon_major, &point_major, what);
        assert_maps_bit_identical(&beacon_major, &indexed, what);
    }
}

/// The scratch-reused survey path — one `SurveyScratch` threaded
/// through trial after trial, recycling each finished map's buffers,
/// exactly as the Monte-Carlo engine's thread-local scratch does —
/// returns the exact bits of a fresh survey on every trial, at scale,
/// on both the tiled SoA disk path and the oracle path, across
/// shrinking and growing fields and lattices.
#[test]
fn scratch_reused_survey_is_bit_identical_to_fresh_at_scale() {
    let policy = UnheardPolicy::TerrainCenter;
    let models: [(&str, Box<dyn Propagation>); 2] = [
        ("ideal disk", Box::new(IdealDisk::new(RANGE))),
        (
            "per-beacon noise",
            Box::new(PerBeaconNoise::new(RANGE, 0.4, 11)),
        ),
    ];
    for (what, model) in &models {
        let mut scratch = SurveyScratch::new();
        // Vary field size, seed, and lattice step so reuse has to cope
        // with buffers growing and shrinking between trials.
        for (beacons, seed, step) in [(100, 7, 2.0), (30, 8, 4.0), (120, 9, 2.0), (60, 10, 1.0)] {
            let field = dense_field(beacons, seed);
            let lattice = Lattice::new(Terrain::square(SIDE), step);
            let fresh = ErrorMap::survey_indexed(&lattice, &field, model, policy);
            let reused =
                ErrorMap::survey_indexed_with(&lattice, &field, model, policy, &mut scratch);
            assert_maps_bit_identical(&fresh, &reused, &format!("{what} n={beacons}"));
            assert_eq!(
                fresh.median_error().to_bits(),
                scratch.median_error(&reused).to_bits(),
                "{what} n={beacons}: median workspace diverged"
            );
            scratch.recycle(reused);
        }
    }
}

/// The intra-survey tile scheduler returns the exact bits of the
/// single-threaded sweep at paper scale, at every worker count, on
/// both the SIMD disk path and the oracle path. (The container may
/// expose a single core; oversubscribed worker counts change only the
/// scheduling, never the per-tile arithmetic, so the gate is equally
/// strong there.)
#[test]
fn tiled_survey_is_bit_identical_to_single_thread_at_scale() {
    let field = dense_field(100, 7);
    let lattice = Lattice::new(Terrain::square(SIDE), 1.0);
    let policy = UnheardPolicy::TerrainCenter;
    let models: [(&str, Box<dyn Propagation>); 2] = [
        ("ideal disk", Box::new(IdealDisk::new(RANGE))),
        (
            "per-beacon noise",
            Box::new(PerBeaconNoise::new(RANGE, 0.4, 11)),
        ),
    ];
    for (what, model) in &models {
        let mut seq_scratch = SurveyScratch::new();
        let seq = ErrorMap::survey_indexed_with(&lattice, &field, model, policy, &mut seq_scratch);
        let mut par_scratch = SurveyScratch::new();
        for threads in [2usize, 4, 8] {
            let par = ErrorMap::survey_indexed_with_threads(
                &lattice,
                &field,
                model,
                policy,
                &mut par_scratch,
                threads,
            );
            assert_maps_bit_identical(&seq, &par, &format!("{what} threads={threads}"));
            par_scratch.recycle(par);
        }
    }
}

/// Threaded incremental re-surveys (the serve path's banded update)
/// apply the exact bits of the sequential `add_beacon`/`remove_beacon`
/// at paper scale.
#[test]
fn threaded_incremental_updates_are_bit_identical_at_scale() {
    let field = dense_field(100, 21);
    let lattice = Lattice::new(Terrain::square(SIDE), 1.0);
    let model = IdealDisk::new(RANGE);
    let policy = UnheardPolicy::TerrainCenter;
    let mut seq = ErrorMap::survey(&lattice, &field, &model, policy);
    let mut par = seq.clone();

    let mut grown = field.clone();
    let id = grown.add_beacon(Point::new(SIDE / 3.0, SIDE / 2.0));
    let beacon = *grown.get(id).expect("beacon just added");
    let d_seq = seq.add_beacon(&beacon, &model);
    let d_par = par.add_beacon_threaded(&beacon, &model, 4);
    assert_eq!(d_seq, d_par, "add deltas differ");
    assert_maps_bit_identical(&seq, &par, "after threaded add");

    let d_seq = seq.remove_beacon(&beacon, &model);
    let d_par = par.remove_beacon_threaded(&beacon, &model, 4);
    assert_eq!(d_seq, d_par, "remove deltas differ");
    assert_maps_bit_identical(&seq, &par, "after threaded remove");
}

/// Localization through an indexed oracle is the same function as
/// through the brute oracle — same fixes, same degradation decisions —
/// at every lattice point.
#[test]
fn indexed_oracle_localizes_identically() {
    let field = dense_field(60, 3);
    let model = PerBeaconNoise::new(RANGE, 0.3, 5);
    let localizer = CentroidLocalizer::new(UnheardPolicy::TerrainCenter);

    let brute = ConnectivityOracle::new(&field, &model);
    let index = ConnectivityOracle::build_index(&field, &model);
    let indexed = ConnectivityOracle::with_index(&field, &model, &index);

    let lattice = Lattice::new(Terrain::square(SIDE), 2.5);
    for ix in lattice.indices() {
        let at = lattice.point(ix);
        assert_eq!(
            localizer.try_localize_via(&brute, at),
            localizer.try_localize_via(&indexed, at),
            "at {at}"
        );
    }
}

/// The incremental scorers drive greedy deployment to exactly the
/// positions (and the exact error-map bits) of the brute re-scoring
/// loop, for both paper algorithms, over a non-trivial batch.
#[test]
fn incremental_greedy_matches_brute_at_scale() {
    let field = dense_field(100, 42);
    let lattice = Lattice::new(Terrain::square(SIDE), 2.0);
    let model = IdealDisk::new(RANGE);
    let policy = UnheardPolicy::TerrainCenter;
    let base_map = ErrorMap::survey(&lattice, &field, &model, policy);
    let k = 8;

    let grid_algo = GridPlacement::paper(Terrain::square(SIDE), RANGE);
    // (name, brute outcome+map, incremental outcome+map)
    let mut cases = Vec::new();
    {
        let (mut f, mut m) = (field.clone(), base_map.clone());
        let brute = greedy_batch(&grid_algo, &mut m, &mut f, &model, k, &mut seeded());
        let (mut inf, mut inm) = (field.clone(), base_map.clone());
        let mut scorer = IncrementalGrid::new(grid_algo, &inm);
        let inc = greedy_batch_incremental(&mut scorer, &mut inm, &mut inf, &model, k);
        cases.push(("grid", brute, m, inc, inm));
    }
    {
        let (mut f, mut m) = (field.clone(), base_map.clone());
        let brute = greedy_batch(
            &MaxPlacement::new(),
            &mut m,
            &mut f,
            &model,
            k,
            &mut seeded(),
        );
        let (mut inf, mut inm) = (field.clone(), base_map.clone());
        let mut scorer = IncrementalMax::new(&inm);
        let inc = greedy_batch_incremental(&mut scorer, &mut inm, &mut inf, &model, k);
        cases.push(("max", brute, m, inc, inm));
    }

    for (name, brute, brute_map, inc, inc_map) in &cases {
        assert_eq!(brute.positions, inc.positions, "{name}: positions differ");
        assert_eq!(
            brute.forced_duplicates, inc.forced_duplicates,
            "{name}: duplicate fallback differs"
        );
        let brute_bits: Vec<u64> = brute.mean_after_each.iter().map(|m| m.to_bits()).collect();
        let inc_bits: Vec<u64> = inc.mean_after_each.iter().map(|m| m.to_bits()).collect();
        assert_eq!(
            brute_bits, inc_bits,
            "{name}: mean-error trajectory differs"
        );
        assert_maps_bit_identical(brute_map, inc_map, name);
        // The run is long enough that beacons actually spread out.
        let distinct: std::collections::HashSet<_> = brute
            .positions
            .iter()
            .map(|p| (p.x.to_bits(), p.y.to_bits()))
            .collect();
        assert!(distinct.len() > 1, "{name}: degenerate run");
    }
}

fn seeded() -> StdRng {
    StdRng::seed_from_u64(0)
}

/// The index prunes without changing who is heard: a dense query at the
/// terrain center must touch fewer beacons than brute force while the
/// heard list (and its order) stays equal.
#[test]
fn index_prunes_but_preserves_heard_order() {
    let field = dense_field(100, 9);
    let model = IdealDisk::new(RANGE);
    let brute = ConnectivityOracle::new(&field, &model);
    let index = ConnectivityOracle::build_index(&field, &model);
    let indexed = ConnectivityOracle::with_index(&field, &model, &index);
    for at in [
        Point::new(SIDE / 2.0, SIDE / 2.0),
        Point::new(0.0, 0.0),
        Point::new(SIDE, SIDE / 3.0),
    ] {
        assert_eq!(brute.heard(at), indexed.heard(at), "at {at}");
    }
    // Pruning is observable through the cell telemetry: a reach-sized
    // query on a 100 m terrain covers at most 3x3 of the ~7x7 cells.
    let pruned = index.for_each_within(Point::new(SIDE / 2.0, SIDE / 2.0), RANGE, |_| {});
    assert!(pruned > 0, "center query should prune cells");
}
