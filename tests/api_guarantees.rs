//! API-level guarantees (per the Rust API Guidelines): public types are
//! `Send`/`Sync` where expected, implement the common traits, and the
//! workspace's error/data types behave.

use beaconplace::prelude::*;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_clone_debug<T: Clone + std::fmt::Debug>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send_sync::<Point>();
    assert_send_sync::<Terrain>();
    assert_send_sync::<Lattice>();
    assert_send_sync::<BeaconField>();
    assert_send_sync::<IdealDisk>();
    assert_send_sync::<PerBeaconNoise>();
    assert_send_sync::<ErrorMap>();
    assert_send_sync::<CentroidLocalizer>();
    assert_send_sync::<GridPlacement>();
    assert_send_sync::<MaxPlacement>();
    assert_send_sync::<RandomPlacement>();
    assert_send_sync::<SimConfig>();
    assert_send_sync::<Summary>();
    assert_send_sync::<Robot>();
    // Trait objects used by the engine must be shareable across workers.
    assert_send_sync::<Box<dyn beaconplace::radio::Propagation>>();
    assert_send_sync::<Box<dyn PlacementAlgorithm>>();
}

#[test]
fn core_types_implement_common_traits() {
    assert_clone_debug::<Point>();
    assert_clone_debug::<BeaconField>();
    assert_clone_debug::<ErrorMap>();
    assert_clone_debug::<SimConfig>();
    assert_clone_debug::<UnheardPolicy>();
    assert_clone_debug::<beaconplace::sim::Figure>();
    // Display where users print things.
    fn assert_display<T: std::fmt::Display>() {}
    assert_display::<Point>();
    assert_display::<Terrain>();
    assert_display::<BeaconField>();
    assert_display::<UnheardPolicy>();
    assert_display::<beaconplace::stats::ConfidenceInterval>();
}

#[test]
fn debug_representations_are_never_empty() {
    let samples: Vec<String> = vec![
        format!("{:?}", Point::ORIGIN),
        format!("{:?}", Terrain::square(1.0)),
        format!("{:?}", UnheardPolicy::TerrainCenter),
        format!("{:?}", BeaconField::new(Terrain::square(1.0))),
        format!("{:?}", MaxPlacement::new()),
    ];
    for s in samples {
        assert!(!s.is_empty());
    }
}

#[test]
fn out_of_beacons_error_is_well_behaved() {
    use beaconplace::survey::robot::OutOfBeacons;
    // C-GOOD-ERR: error types implement Error + Display + Send + Sync.
    fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<OutOfBeacons>();
    let msg = OutOfBeacons.to_string();
    assert!(!msg.is_empty());
    assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
    assert!(!msg.ends_with('.'), "{msg}");
}

#[test]
fn snapshot_decode_error_is_well_behaved() {
    use beaconplace::survey::snapshot;
    let err = snapshot::decode(&[]).unwrap_err();
    fn assert_error<E: std::error::Error>(_e: &E) {}
    assert_error(&err);
    assert!(err.to_string().contains("snapshot"));
}

#[test]
fn serde_derives_exist_for_data_types() {
    // Compile-time proof that the data structures are serializable
    // (C-SERDE); a concrete little round-trip through serde's test-free
    // path is impossible without a format crate, so assert the bounds.
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<Point>();
    assert_serde::<Terrain>();
    assert_serde::<SimConfig>();
    assert_serde::<beaconplace::sim::Figure>();
    assert_serde::<beaconplace::stats::ConfidenceInterval>();
    assert_serde::<UnheardPolicy>();
    assert_serde::<beaconplace::radio::NoiseStyle>();
}
