//! The paper's Summary-of-Results claims (§4.3), verified end to end at a
//! reduced — but statistically meaningful — scale.
//!
//! Full-fidelity numbers (Table 1 scale) are produced by the `abp` CLI
//! and recorded in EXPERIMENTS.md; these tests pin the *qualitative*
//! findings so a regression in any substrate breaks CI.

use abp_sim::experiments::{density_error, improvement, overlap_bound};
use abp_sim::{AlgorithmKind, SimConfig};

/// Shared test configuration: paper geometry, coarse lattice, enough
/// trials for stable orderings.
fn cfg() -> SimConfig {
    SimConfig {
        step: 4.0,
        trials: 40,
        beacon_counts: vec![30, 70, 120, 240],
        threads: 0,
        ..SimConfig::paper()
    }
}

/// §4.2: "the mean localization error falls sharply with increasing
/// beacon density ... and saturates".
#[test]
fn error_falls_sharply_then_saturates() {
    let points = density_error::run(&cfg(), 0.0);
    let e: Vec<f64> = points.iter().map(|p| p.mean_error.estimate).collect();
    assert!(e[0] > 2.0 * e[1], "no sharp initial fall: {e:?}");
    let tail_drop = e[2] - e[3];
    let head_drop = e[0] - e[1];
    assert!(tail_drop < head_drop * 0.2, "no saturation visible: {e:?}");
    // Saturated error is a small fraction of R (paper: ~0.3 R).
    assert!(e[3] < 0.5 * 15.0);
}

/// §4.3: "At low densities, the Grid algorithm has the potential for
/// significant improvements to the mean and median errors compared to the
/// Max or Random algorithms."
#[test]
fn grid_dominates_at_low_density() {
    // The grid-vs-max margin at one density is the noisiest statistic in
    // this file; 40 trials leaves it within sampling error of the 1.5x
    // threshold, so this test alone runs more trials.
    let curves = improvement::run(
        &SimConfig {
            trials: 120,
            ..cfg()
        },
        0.0,
        &AlgorithmKind::PAPER,
    );
    let low = 0; // 30 beacons = 0.003 / m^2
    let random = &curves[0].points[low];
    let max = &curves[1].points[low];
    let grid = &curves[2].points[low];
    assert!(
        grid.mean_improvement.estimate > 1.5 * max.mean_improvement.estimate,
        "grid {} vs max {}",
        grid.mean_improvement.estimate,
        max.mean_improvement.estimate
    );
    assert!(grid.mean_improvement.estimate > random.mean_improvement.estimate);
    assert!(grid.median_improvement.estimate >= max.median_improvement.estimate);
}

/// §4.2: "At very high beacon densities, the quality of localization is
/// saturated, and the performance of the three algorithms is about the
/// same" — all gains collapse toward zero.
#[test]
fn algorithms_converge_at_saturation() {
    let curves = improvement::run(&cfg(), 0.0, &AlgorithmKind::PAPER);
    for curve in &curves {
        let at_saturation = curve.points.last().unwrap();
        assert!(
            at_saturation.mean_improvement.estimate.abs() < 0.3,
            "{:?} still improves {} m at 240 beacons",
            curve.algorithm,
            at_saturation.mean_improvement.estimate
        );
    }
}

/// §4.3: "When noise level is increased from 0 to 0.5, there is a steady
/// increase in both the mean localization error (up to 33%) and
/// saturation beacon density (up to 50%)."
#[test]
fn noise_raises_error_and_saturation_density() {
    let mut c = cfg();
    c.beacon_counts = vec![30, 70, 120, 170, 240];
    let ideal = density_error::run(&c, 0.0);
    let noisy = density_error::run(&c, 0.5);
    // Mean error rises at every density.
    for (i, n) in ideal.iter().zip(&noisy) {
        assert!(
            n.mean_error.estimate > i.mean_error.estimate,
            "noise did not raise error at {} beacons",
            i.beacons
        );
    }
    // And the rise at saturation is clearly resolved. (The paper reports
    // up to ~33%; the printed symmetric-u formula yields a steady but
    // milder ~5-7% — see EXPERIMENTS.md, "Interpreting the noise model".)
    let rel =
        noisy.last().unwrap().mean_error.estimate / ideal.last().unwrap().mean_error.estimate - 1.0;
    assert!(
        rel > 0.02,
        "only {:.1}% increase at saturation",
        rel * 100.0
    );
    // Saturation density does not decrease under noise.
    let sat_ideal = density_error::saturation_density(&ideal, 0.15).unwrap();
    let sat_noisy = density_error::saturation_density(&noisy, 0.15).unwrap();
    assert!(
        sat_noisy >= sat_ideal,
        "saturation density fell under noise: {sat_ideal} -> {sat_noisy}"
    );
}

/// §4.2.1: "The gains in both metrics with the Random algorithm are
/// somewhat unchanged with noise ... because noise is not an input in the
/// Random algorithm."
#[test]
fn random_is_insensitive_to_noise() {
    let mut c = cfg();
    c.beacon_counts = vec![70];
    c.trials = 80;
    let ideal = improvement::run(&c, 0.0, &[AlgorithmKind::Random]);
    let noisy = improvement::run(&c, 0.5, &[AlgorithmKind::Random]);
    let a = ideal[0].points[0].mean_improvement;
    let b = noisy[0].points[0].mean_improvement;
    // The confidence intervals overlap generously.
    let gap = (a.estimate - b.estimate).abs();
    assert!(
        gap < 2.0 * (a.half_width + b.half_width) + 0.15,
        "random moved under noise: {a} vs {b}"
    );
}

/// §4.2.1: "noise makes regions of moderate beacon densities more
/// improvable with the Grid algorithm".
///
/// This effect requires noise that actually degrades localization. The
/// paper's printed symmetric-`u` formula barely moves the error (speckle
/// averages out of centroids), so the claim is reproduced under the
/// loss-only reading of the noise model (`NoiseStyle::Lossy`, where
/// fading/shadowing only ever shortens reach) — see EXPERIMENTS.md,
/// "Interpreting the noise model".
#[test]
fn noise_makes_moderate_density_more_improvable_for_grid() {
    let mut c = cfg();
    c.beacon_counts = vec![70, 100]; // 0.007-0.01 / m^2: the moderate band
    c.trials = 120;
    c.noise_style = abp_radio::NoiseStyle::Lossy;
    let ideal = improvement::run(&c, 0.0, &[AlgorithmKind::Grid]);
    let noisy = improvement::run(&c, 0.5, &[AlgorithmKind::Grid]);
    let gain_sum = |curves: &[abp_sim::experiments::improvement::AlgorithmImprovement]| {
        curves[0]
            .points
            .iter()
            .map(|p| p.mean_improvement.estimate)
            .sum::<f64>()
    };
    let a = gain_sum(&ideal);
    let b = gain_sum(&noisy);
    assert!(
        b > a,
        "lossy noise should raise Grid's moderate-density gains: {a} -> {b}"
    );
}

/// §2.2: the centroid error bound under uniform placement — "for a range
/// overlap ratio of 1, the maximum error is bound by 0.5 d. This factor
/// falls off considerably (to 0.25 d) when the ratio increases to 4."
#[test]
fn overlap_bound_matches_section_2_2() {
    let points = overlap_bound::run(&overlap_bound::BoundConfig {
        step: 2.0,
        ratios: vec![1.0, 2.0, 3.0, 4.0],
        ..Default::default()
    });
    assert!(points[0].max_error_over_d <= 0.55);
    assert!(points[3].max_error_over_d <= 0.30);
    // Monotone non-increasing max error across the sweep.
    for w in points.windows(2) {
        assert!(
            w[1].max_error_over_d <= w[0].max_error_over_d + 0.02,
            "bound not monotone: {w:?}"
        );
    }
}
