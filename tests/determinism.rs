//! Reproducibility guarantees: the whole pipeline is a pure function of
//! its seed, regardless of parallelism.

use abp_sim::experiments::{density_error, improvement};
use abp_sim::{figures, AlgorithmKind, SimConfig};

fn small() -> SimConfig {
    SimConfig {
        step: 5.0,
        trials: 10,
        beacon_counts: vec![40, 160],
        ..SimConfig::paper()
    }
}

#[test]
fn figures_are_bit_identical_across_runs() {
    let cfg = small();
    let a = figures::fig4(&cfg);
    let b = figures::fig4(&cfg);
    assert_eq!(a.to_csv(), b.to_csv());

    let (a_mean, a_median) = figures::fig5(&cfg);
    let (b_mean, b_median) = figures::fig5(&cfg);
    assert_eq!(a_mean.to_csv(), b_mean.to_csv());
    assert_eq!(a_median.to_csv(), b_median.to_csv());
}

#[test]
fn thread_count_does_not_change_results() {
    let mut one = small();
    one.threads = 1;
    let mut three = small();
    three.threads = 3;
    let mut many = small();
    many.threads = 0; // all cores

    let r1 = density_error::run(&one, 0.3);
    let r3 = density_error::run(&three, 0.3);
    let rn = density_error::run(&many, 0.3);
    assert_eq!(r1, r3);
    assert_eq!(r1, rn);

    let i1 = improvement::run(&one, 0.3, &AlgorithmKind::PAPER);
    let i3 = improvement::run(&three, 0.3, &AlgorithmKind::PAPER);
    assert_eq!(i1, i3);
}

#[test]
fn different_seeds_different_results() {
    let a = small();
    let mut b = small();
    b.seed ^= 0xDEAD_BEEF;
    assert_ne!(density_error::run(&a, 0.0), density_error::run(&b, 0.0));
}

#[test]
fn algorithm_set_composition_does_not_leak_randomness() {
    // Each algorithm gets its own RNG stream keyed by its position, so
    // the deterministic algorithms' curves are identical whether run
    // alone or alongside others.
    let cfg = small();
    let together = improvement::run(&cfg, 0.0, &AlgorithmKind::PAPER);
    let max_alone = improvement::run(&cfg, 0.0, &[AlgorithmKind::Max]);
    let grid_alone = improvement::run(&cfg, 0.0, &[AlgorithmKind::Grid]);
    assert_eq!(together[1].points, max_alone[0].points);
    assert_eq!(together[2].points, grid_alone[0].points);
}

#[test]
fn heatmap_demo_is_reproducible() {
    let cfg = SimConfig::tiny();
    assert_eq!(abp_sim::heatmap_demo(&cfg), abp_sim::heatmap_demo(&cfg));
}
