//! End-to-end pipeline tests: substrates composed exactly the way the
//! paper's evaluation composes them.

use beaconplace::placement::greedy_batch;
use beaconplace::prelude::*;
use beaconplace::survey::snapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn terrain() -> Terrain {
    Terrain::square(100.0)
}

/// The full adaptive loop: deploy → survey → propose → deploy → re-survey,
/// across all three paper algorithms, checking invariants at each step.
#[test]
fn full_adaptive_placement_loop() {
    let lattice = Lattice::new(terrain(), 4.0);
    let model = PerBeaconNoise::new(15.0, 0.3, 77);
    let mut rng = StdRng::seed_from_u64(1);
    let field = BeaconField::random_uniform(40, terrain(), &mut rng);
    let before = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);

    let algorithms: Vec<Box<dyn PlacementAlgorithm>> = vec![
        Box::new(RandomPlacement::new(terrain())),
        Box::new(MaxPlacement::new()),
        Box::new(GridPlacement::paper(terrain(), 15.0)),
    ];
    for algo in &algorithms {
        let view = SurveyView {
            map: &before,
            field: &field,
            model: &model,
        };
        let spot = algo.propose(&view, &mut rng);
        assert!(terrain().contains(spot), "{}", algo.name());

        let mut extended = field.clone();
        let id = extended.add_beacon(spot);
        let mut incremental = before.clone();
        incremental.add_beacon(extended.get(id).unwrap(), &model);

        // The incremental re-survey equals a from-scratch survey.
        let fresh = ErrorMap::survey(&lattice, &extended, &model, UnheardPolicy::TerrainCenter);
        for ix in lattice.indices() {
            assert_eq!(incremental.heard_at(ix), fresh.heard_at(ix));
            let (a, b) = (
                incremental.error_at(ix).unwrap(),
                fresh.error_at(ix).unwrap(),
            );
            assert!((a - b).abs() < 1e-9, "{} at {ix}", algo.name());
        }
    }
}

/// A robot-driven version of the same loop produces the same decisions as
/// the direct sweep when its GPS is perfect.
#[test]
fn robot_and_direct_survey_agree_on_placement() {
    let model = IdealDisk::new(15.0);
    let mut rng = StdRng::seed_from_u64(3);
    let field = BeaconField::random_uniform(30, terrain(), &mut rng);
    let plan = SurveyPlan::new(terrain(), 4.0);

    let (robot_map, _) =
        Robot::new(0.0, 1, 9).survey(&plan, &field, &model, UnheardPolicy::TerrainCenter);
    let direct = ErrorMap::survey(plan.lattice(), &field, &model, UnheardPolicy::TerrainCenter);

    let grid = GridPlacement::paper(terrain(), 15.0);
    let from_robot = grid.propose(
        &SurveyView {
            map: &robot_map,
            field: &field,
            model: &model,
        },
        &mut rng,
    );
    let from_direct = grid.propose(
        &SurveyView {
            map: &direct,
            field: &field,
            model: &model,
        },
        &mut rng,
    );
    assert_eq!(from_robot, from_direct);
}

/// Snapshots round-trip through the placement pipeline: checkpoint the
/// before-map, restore it per algorithm, and get identical results.
#[test]
fn snapshot_checkpoint_restart_pipeline() {
    let lattice = Lattice::new(terrain(), 5.0);
    let model = PerBeaconNoise::new(15.0, 0.5, 13);
    let mut rng = StdRng::seed_from_u64(8);
    let field = BeaconField::random_uniform(50, terrain(), &mut rng);
    let before = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);

    let bytes = snapshot::encode(&before);
    let restored = snapshot::decode(&bytes).expect("snapshot round-trip");

    let grid = GridPlacement::paper(terrain(), 15.0);
    let view_orig = SurveyView {
        map: &before,
        field: &field,
        model: &model,
    };
    let view_restored = SurveyView {
        map: &restored,
        field: &field,
        model: &model,
    };
    assert_eq!(
        grid.propose(&view_orig, &mut StdRng::seed_from_u64(0)),
        grid.propose(&view_restored, &mut StdRng::seed_from_u64(0)),
    );
}

/// Greedy multi-beacon placement drives the error toward the saturation
/// floor.
#[test]
fn greedy_batch_converges_toward_saturation() {
    let lattice = Lattice::new(terrain(), 4.0);
    let model = IdealDisk::new(15.0);
    let mut rng = StdRng::seed_from_u64(4);
    let mut field = BeaconField::random_uniform(30, terrain(), &mut rng);
    let mut map = ErrorMap::survey(&lattice, &field, &model, UnheardPolicy::TerrainCenter);
    let start = map.mean_error();

    let algo = GridPlacement::paper(terrain(), 15.0);
    let outcome = greedy_batch(&algo, &mut map, &mut field, &model, 20, &mut rng);
    let end = *outcome.mean_after_each.last().unwrap();
    // Note the floor: Grid's candidate centers span [R, Side-R], so the
    // terrain's corners are never fully recovered — a real limitation of
    // the paper's algorithm, visible here.
    assert!(
        end < start * 0.8,
        "20 greedy beacons should clearly cut the error below {start}, got {end}"
    );
    // And the gains are front-loaded: the first half of the beacons buys
    // most of the improvement.
    let mid = outcome.mean_after_each[9];
    assert!(start - mid > (mid - end));
    assert_eq!(field.len(), 50);
}

/// The packet-level link procedure (§2.2) plugged into a full survey:
/// loss-free messaging reproduces the geometric survey.
#[test]
fn message_level_connectivity_reduces_to_geometric() {
    use beaconplace::localize::{ConnectivityOracle, Localizer};
    use beaconplace::radio::MessageLink;

    let model = IdealDisk::new(15.0);
    let mut rng = StdRng::seed_from_u64(5);
    let field = BeaconField::random_uniform(25, terrain(), &mut rng);
    let link = MessageLink::new(1.0, 10.0, 0.8, 0.0);
    let oracle = ConnectivityOracle::new(&field, &model);
    let localizer = CentroidLocalizer::new(UnheardPolicy::TerrainCenter);

    for k in 0..200 {
        let p = Point::new((k % 20) as f64 * 5.0, (k / 20) as f64 * 10.0);
        // Count beacons via the message procedure.
        let heard_msgs = field
            .iter()
            .filter(|b| link.connected(&model, b.tx(), b.pos(), p, &mut rng))
            .count();
        assert_eq!(heard_msgs, oracle.heard_count(p));
        assert_eq!(localizer.localize(&field, &model, p).heard, heard_msgs);
    }
}
